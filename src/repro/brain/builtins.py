"""The built-in brains: ``static``, ``throughput``, ``health-migrate``.

* ``static`` — the no-op.  Registered so configs can name it, but
  inactive: a run with ``brain: {"name": "static"}`` is byte-identical
  to a run with no brain section at all.
* ``throughput`` — model-driven rescale.  Grows a job when the marginal
  node's scaling efficiency (with the expected rollback cost of the
  target node priced in) clears ``grow_efficiency``; shrinks when the
  last node's marginal contribution falls below ``shrink_efficiency``
  — paying for nodes that barely move the iteration rate is what ruins
  $/kiter on contended clouds.
* ``health-migrate`` — health-signal-driven placement repair.  Walks
  running jobs most-critical-first and moves them off nodes trending
  toward quarantine *before* the crash: migrate to the cleanest free
  node when one exists, else pre-emptively shrink off the gray node
  (staying synchronous on one clean node beats dragging a whole gang at
  a straggler's pace).  Also applies the ``throughput`` shrink rule so
  clean-but-useless capacity is still returned.
"""

from __future__ import annotations

from repro.brain.base import Action, Autotuner, register_brain
from repro.brain.signals import BrainObservation, JobSignal


def _critical_order(job: JobSignal) -> tuple:
    """Most-critical jobs first: priority, then deadline, then name."""
    return (-job.priority, job.deadline_seconds is None, job.name)


def _worst_first(obs: BrainObservation, nodes) -> list[int]:
    """An allocation's nodes ordered most-suspect (then highest id) first."""
    return sorted(nodes, key=lambda n: (-obs.node(n).suspicion, -n))


@register_brain("static", aliases=("none", "noop"))
class StaticBrain(Autotuner):
    """Never decides anything; never even constructs a driver."""

    active = False

    def decide(self, obs: BrainObservation) -> list[Action]:
        return []


@register_brain("throughput", aliases=("rescale",))
class ThroughputBrain(Autotuner):
    """Grow when the marginal node pays for itself; shrink when it doesn't."""

    def decide(self, obs: BrainObservation) -> list[Action]:
        actions: list[Action] = []
        cutoff = self.config.migrate_suspicion * obs.quarantine_threshold
        for job in sorted(obs.jobs, key=_critical_order):
            actions.extend(self._rescale(obs, job, cutoff))
        return actions

    def _rescale(self, obs, job, cutoff) -> list[Action]:
        k = len(job.nodes)
        current = obs.throughput(job.name, k)
        if current <= 0:
            return []
        linear = current / k  # one node's share under perfect scaling
        if k < job.max_nodes:
            candidates = obs.clean_candidates(obs.job(job.name), obs.job_gpus(job.name), cutoff)
            if candidates:
                dst = candidates[0]
                gain = obs.throughput(job.name, k + 1) - current
                efficiency = gain / linear
                # Scale-up pricing: the suspicion-weighted rollback the
                # target node would cost, as a fraction of the gain.
                risk = self.config.rollback_weight * obs.suspicion_fraction(dst)
                if efficiency - risk >= self.config.grow_efficiency:
                    return [
                        Action(
                            "grow",
                            job.name,
                            dst=dst,
                            reason=(
                                f"marginal efficiency {efficiency:.3f} - risk "
                                f"{risk:.3f} >= {self.config.grow_efficiency}"
                            ),
                        )
                    ]
        if k > job.min_nodes:
            down = obs.throughput(job.name, k - 1)
            last_efficiency = (current - down) / linear
            if last_efficiency < self.config.shrink_efficiency:
                src = _worst_first(obs, job.nodes)[0]
                return [
                    Action(
                        "shrink",
                        job.name,
                        src=src,
                        reason=(
                            f"last node adds {last_efficiency:.3f} < "
                            f"{self.config.shrink_efficiency} of linear"
                        ),
                    )
                ]
        return []


@register_brain("health-migrate", aliases=("health", "migrate"))
class HealthMigrateBrain(Autotuner):
    """Move jobs off nodes trending toward quarantine before they crash."""

    def decide(self, obs: BrainObservation) -> list[Action]:
        # Without a health ledger nothing ever reads as gray (the
        # threshold is inf), so only the rescale pass below fires.
        cutoff = self.config.migrate_suspicion * obs.quarantine_threshold
        actions: list[Action] = []
        repaired: set[str] = set()  # jobs already given a health repair
        taken: set[int] = set()  # targets already promised this tick
        for job in sorted(obs.jobs, key=_critical_order):
            gray = [n for n in job.nodes if obs.is_gray(n, cutoff)]
            if not gray:
                continue
            gpus = obs.job_gpus(job.name)
            shrunk = 0
            for src in _worst_first(obs, gray):
                suspicion = obs.node(src).suspicion
                candidates = [
                    n
                    for n in obs.clean_candidates(job, gpus, cutoff)
                    if n not in taken
                ]
                if candidates:
                    dst = candidates[0]
                    taken.add(dst)
                    repaired.add(job.name)
                    actions.append(
                        Action(
                            "migrate",
                            job.name,
                            src=src,
                            dst=dst,
                            reason=(
                                f"node {src} suspicion {suspicion:.3f} >= "
                                f"{cutoff:.3f}; target {dst} suspicion "
                                f"{obs.node(dst).suspicion:.3f}"
                            ),
                        )
                    )
                elif len(job.nodes) - shrunk > job.min_nodes:
                    shrunk += 1
                    repaired.add(job.name)
                    actions.append(
                        Action(
                            "shrink",
                            job.name,
                            src=src,
                            reason=(
                                f"node {src} suspicion {suspicion:.3f} >= "
                                f"{cutoff:.3f}; no clean replacement — "
                                "pre-emptive shrink onto clean hardware"
                            ),
                        )
                    )
        # Second pass: model-driven rescale for the healthy gangs.  The
        # full Brain, not a one-trick migrator — a job that never saw a
        # gray node still sheds (or earns) its marginal node by the
        # ``throughput`` rules, rollback risk priced in.
        rescaler = ThroughputBrain(self.config)
        for job in sorted(obs.jobs, key=_critical_order):
            if job.name in repaired:
                continue
            actions.extend(rescaler._rescale(obs, job, cutoff))
        return actions


__all__ = ["StaticBrain", "ThroughputBrain", "HealthMigrateBrain"]
