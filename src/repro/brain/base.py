"""Registry-pluggable autotuning brains (``repro.brain``).

An *autotuner* ("Brain", after EasyDL/DLRover's resource-plan
optimizer) watches one :class:`~repro.sched.MultiTenantScheduler`
simulation from the inside and periodically re-plans per-job resources:
it observes per-job throughput, NIC contention, spot pricing, and the
:class:`~repro.faults.health.NodeHealthLedger` suspicion signals, and
answers with :class:`Action`\\ s — migrate a job off a node trending
toward quarantine, pre-emptively shrink onto clean hardware when no
replacement exists, or grow when the marginal node pays for itself with
the expected rollback cost priced in.

Brains register in the ``repro.api`` registry style::

    from repro.brain import Autotuner, register_brain

    @register_brain("my-brain")
    class MyBrain(Autotuner):
        def decide(self, obs):
            return []

Every decision flows through the existing scheduler machinery
(:class:`~repro.sched.policies.ClusterState` transitions +
:class:`~repro.elastic.membership.MembershipView` epochs), never around
it, and the whole layer is closed-form deterministic: no RNG, no wall
clock, decisions are pure functions of the observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.api.registry import Registry

#: Brain registry: name -> :class:`Autotuner` subclass.
BRAINS = Registry("brain")

#: The decision kinds a brain may issue.
ACTION_KINDS = ("migrate", "shrink", "grow")


def register_brain(name: str, *, aliases: Iterable[str] = (), overwrite: bool = False):
    """Register an :class:`Autotuner` subclass under ``name``."""
    return BRAINS.register(name, aliases=aliases, overwrite=overwrite)


def build_brain(config) -> "Autotuner":
    """Instantiate the brain a :class:`~repro.api.config.BrainConfig` names."""
    cls = BRAINS.get(config.name)
    return cls(config)


@dataclass(frozen=True)
class Action:
    """One resource-plan decision for one job.

    ``src`` is the node the job leaves (migrate / shrink), ``dst`` the
    node it takes (migrate / grow).  The :class:`~repro.brain.driver
    .BrainDriver` validates every action against live cluster state and
    the job's gang window before applying it — an infeasible action is
    declined and logged, never partially applied.
    """

    kind: str
    job: str
    src: int | None = None
    dst: int | None = None
    reason: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ACTION_KINDS:
            raise ValueError(
                f"unknown action kind {self.kind!r}; expected one of {ACTION_KINDS}"
            )


class Autotuner:
    """Base class of all brains.

    Subclasses override :meth:`decide`; the driver calls it once per
    decision tick with a :class:`~repro.brain.signals.BrainObservation`
    and applies the returned actions (bounded by ``max_actions`` and the
    per-job dwell window).
    """

    #: Inactive brains never construct a driver, so a run configured
    #: with one stays *byte-identical* to a run with no brain at all
    #: (same event count, same payload) — the ``static`` contract.
    active = True

    def __init__(self, config) -> None:
        self.config = config

    def decide(self, obs) -> list[Action]:  # pragma: no cover - interface
        raise NotImplementedError


__all__ = [
    "BRAINS",
    "ACTION_KINDS",
    "register_brain",
    "build_brain",
    "Action",
    "Autotuner",
]
