"""Structured, wall-clock-free brain decision log.

Mirrors :class:`~repro.faults.log.FaultLog` for the autotuner: every
decision tick and every applied/declined action appends one entry —

``{"seq", "t", "phase", "job", "detail"?}``

``t`` is *virtual* simulation seconds, ``seq`` the append index, and
``detail`` holds JSON scalars only, so the serialised log is
byte-identical across hosts, repeat runs, and any ``--jobs`` width.
:meth:`BrainLog.digest` pins that in the ``BENCH_brain.json`` payload.
"""

from __future__ import annotations

import hashlib
import json

#: The lifecycle phases a brain-log entry can record: ``tick`` opens a
#: decision round, the three action kinds record applied decisions, and
#: ``decline`` records an action the driver refused (dwell window,
#: gang constraint, infeasible target, or the per-tick action cap).
PHASES = ("tick", "migrate", "shrink", "grow", "decline")


class BrainLog:
    """Append-only decision log with deterministic serialisation."""

    def __init__(self) -> None:
        self._entries: list[dict] = []

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, phase: str, *, t: float, job: str, **detail) -> dict:
        """Record one decision step; returns the entry."""
        if phase not in PHASES:
            raise ValueError(f"unknown log phase {phase!r}; expected one of {PHASES}")
        entry = {
            "seq": len(self._entries),
            "t": round(float(t), 9),
            "phase": phase,
            "job": str(job),
        }
        if detail:
            entry["detail"] = {
                key: _jsonable(value) for key, value in sorted(detail.items())
            }
        self._entries.append(entry)
        return entry

    def to_dicts(self) -> list[dict]:
        """A deep-enough copy safe to embed in payloads."""
        return [
            {**entry, **({"detail": dict(entry["detail"])} if "detail" in entry else {})}
            for entry in self._entries
        ]

    def to_json(self) -> str:
        """Canonical serialisation (sorted keys, no whitespace)."""
        return json.dumps(self._entries, sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """Short stable hash of the canonical serialisation."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:16]

    def phase_counts(self) -> dict[str, int]:
        counts = {phase: 0 for phase in PHASES}
        for entry in self._entries:
            counts[entry["phase"]] += 1
        return {phase: n for phase, n in counts.items() if n}


def _jsonable(value):
    """Coerce a detail value to JSON scalars/lists (fail loudly otherwise)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(f"brain log detail values must be JSON scalars, got {value!r}")


__all__ = ["PHASES", "BrainLog"]
