"""What a brain sees: one deterministic snapshot per decision tick.

The :class:`~repro.brain.driver.BrainDriver` builds a
:class:`BrainObservation` from live scheduler state at every tick:
per-node occupancy and health-ledger suspicion, per-job allocation,
*live* throughput (contention, NIC degradation, straggler stretch and
gray-link jitter all priced in via the scheduler's memoized
:class:`~repro.perf.iteration_model.IterationModel` fast path), and
spot-billing rates.  The observation also acts as a closed-form pricing
oracle — :meth:`BrainObservation.throughput` and :meth:`hourly_usd`
price *hypothetical* allocation sizes, so a brain can weigh a rescale
before asking for it.

Everything here is pure arithmetic on the snapshot: no RNG, no wall
clock, no mutation — two identical scheduler states produce
byte-identical observations, which is what keeps brain decisions
bit-identical across repeat runs and ``--jobs`` widths.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NodeSignal:
    """One node's health and occupancy at the tick."""

    node: int
    up: bool
    free_gpus: int
    tenants: int
    #: Decayed health-ledger suspicion (0.0 without a fault plan).
    suspicion: float
    quarantined: bool


@dataclass(frozen=True)
class JobSignal:
    """One running job's allocation, progress, and live throughput."""

    name: str
    nodes: tuple
    min_nodes: int
    max_nodes: int
    priority: int
    deadline_seconds: float | None
    preference: str
    progress: float
    remaining: float
    #: Worst-case tenant count across the allocation (NIC contention).
    contention: int
    #: Live iterations/second — contention, NIC degradation, straggler
    #: stretch and gray-link jitter included.
    throughput_it_per_s: float
    #: Current spot/on-demand burn rate for the allocation.
    hourly_usd: float


class BrainObservation:
    """Snapshot + pricing oracle handed to :meth:`Autotuner.decide`."""

    def __init__(
        self,
        *,
        now: float,
        nodes: list,
        jobs: list,
        quarantine_threshold: float,
        checkpoint_iterations: int,
        spot_discount: float,
        queued: int,
        scheduler,
        specs: dict,
    ) -> None:
        self.now = now
        self.nodes = list(nodes)
        self.jobs = list(jobs)
        #: Ledger quarantine threshold (``inf`` without a fault plan, so
        #: nothing ever reads as gray on healthy clusters).
        self.quarantine_threshold = quarantine_threshold
        #: Iterations between the implied checkpoints a crash rolls back
        #: to — the unit of expected rollback cost.
        self.checkpoint_iterations = checkpoint_iterations
        self.spot_discount = spot_discount
        #: Jobs waiting in the admission queue at the tick.
        self.queued = queued
        self._scheduler = scheduler
        self._specs = dict(specs)
        self._by_node = {signal.node: signal for signal in self.nodes}
        self._by_job = {signal.name: signal for signal in self.jobs}

    # -- lookups ---------------------------------------------------------------
    def node(self, node: int) -> NodeSignal:
        return self._by_node[node]

    def job(self, name: str) -> JobSignal:
        return self._by_job[name]

    # -- health helpers --------------------------------------------------------
    def suspicion_fraction(self, node: int) -> float:
        """Suspicion as a fraction of the quarantine threshold, in [0, ...)."""
        signal = self._by_node.get(node)
        if signal is None or self.quarantine_threshold == float("inf"):
            return 0.0
        return signal.suspicion / self.quarantine_threshold

    def is_gray(self, node: int, cutoff: float) -> bool:
        """Whether a node is trending toward quarantine (or down/benched).

        ``cutoff`` is an absolute suspicion score (callers usually pass
        ``migrate_suspicion * quarantine_threshold``).
        """
        signal = self._by_node.get(node)
        if signal is None:
            return False
        return (not signal.up) or signal.quarantined or signal.suspicion >= cutoff

    def gray_nodes(self, cutoff: float) -> list[int]:
        return [s.node for s in self.nodes if self.is_gray(s.node, cutoff)]

    def clean_candidates(self, job: JobSignal, gpus: int, cutoff: float) -> list[int]:
        """Free, up, non-gray nodes the job could take, cleanest first.

        Ordered by (suspicion, tenants, -free GPUs, id) — the same
        cleanest-first shape the ``fault-aware`` policy uses, so brain
        targets and policy placements agree on what "clean" means.
        """
        pool = [
            s
            for s in self.nodes
            if s.up
            and not self.is_gray(s.node, cutoff)
            and s.node not in job.nodes
            and s.free_gpus >= gpus
        ]
        pool.sort(key=lambda s: (s.suspicion, s.tenants, -s.free_gpus, s.node))
        return [s.node for s in pool]

    # -- pricing oracle --------------------------------------------------------
    def job_gpus(self, name: str) -> int:
        """GPUs the job takes on each of its nodes."""
        return self._scheduler._job_gpus(self._specs[name])

    def throughput(self, name: str, node_count: int) -> float:
        """Model-driven solo iterations/second at a hypothetical size.

        Uncontended and fault-free by construction — the clean scaling
        curve a rescale decision is judged against (live degradation is
        what the per-job :attr:`JobSignal.throughput_it_per_s` carries).
        """
        if node_count < 1:
            return 0.0
        seconds = self._scheduler.iteration_seconds(
            self._specs[name], nodes=node_count, contention=1.0
        )
        return 1.0 / seconds if seconds > 0 else 0.0

    def hourly_usd(self, name: str, node_count: int) -> float:
        """Spot/on-demand burn rate at a hypothetical allocation size."""
        return self._scheduler._hourly_rate(self._specs[name], node_count)

    def expected_rollback_iterations(self, node: int) -> float:
        """Iterations a crash of ``node`` would cost, suspicion-weighted.

        An unwarned crash rolls a job back to its last implied
        checkpoint — half a checkpoint interval in expectation — and the
        ledger's suspicion fraction is the closed-form stand-in for the
        crash probability.  This is the rollback cost brains price into
        scale-up choices.
        """
        return self.suspicion_fraction(node) * self.checkpoint_iterations / 2.0


def build_observation(
    *, scheduler, now: float, state, running, queued, faults=None
) -> BrainObservation:
    """Snapshot live scheduler state for one decision tick."""
    ledger = state.health
    threshold = (
        ledger.policy.quarantine_threshold if ledger is not None else float("inf")
    )
    nodes = []
    for n in range(state.num_nodes):
        nodes.append(
            NodeSignal(
                node=n,
                up=state.is_up(n),
                free_gpus=state.free_gpus(n),
                tenants=state.tenants(n),
                suspicion=(
                    round(ledger.suspicion(n, now), 9) if ledger is not None else 0.0
                ),
                quarantined=(
                    ledger.is_quarantined(n) if ledger is not None else False
                ),
            )
        )
    nic_scale = faults.active_nic_scale() if faults is not None else 1.0
    jobs = []
    specs = {}
    for record in sorted(running, key=lambda r: r.spec.name):
        spec = record.spec
        specs[spec.name] = spec
        contention = state.contention_for(record.nodes)
        stretch = faults.stretch_for(record.nodes) if faults is not None else 1.0
        jitter = faults.jitter_for(record.nodes) if faults is not None else 1.0
        busy = scheduler.iteration_seconds(
            spec,
            nodes=len(record.nodes),
            contention=contention,
            nic_scale=nic_scale,
            stretch=stretch,
            jitter=jitter,
        )
        jobs.append(
            JobSignal(
                name=spec.name,
                nodes=tuple(record.nodes),
                min_nodes=spec.min_nodes,
                max_nodes=spec.max_nodes,
                priority=spec.priority,
                deadline_seconds=spec.deadline_seconds,
                preference=spec.preference,
                progress=record.progress,
                remaining=record.remaining,
                contention=contention,
                throughput_it_per_s=round(1.0 / busy, 9) if busy > 0 else 0.0,
                hourly_usd=round(
                    scheduler._hourly_rate(spec, len(record.nodes)), 9
                ),
            )
        )
    plan = getattr(scheduler, "faults", None)
    return BrainObservation(
        now=now,
        nodes=nodes,
        jobs=jobs,
        quarantine_threshold=threshold,
        checkpoint_iterations=(
            plan.checkpoint_iterations if plan is not None else 25
        ),
        spot_discount=scheduler.spot_profile.spot_discount,
        queued=queued,
        scheduler=scheduler,
        specs=specs,
    )


__all__ = ["NodeSignal", "JobSignal", "BrainObservation", "build_observation"]
