"""Autotuning "Brain": online resource-plan optimization (``repro.brain``).

The brain layer watches a :class:`~repro.sched.MultiTenantScheduler`
simulation from the inside — per-job throughput, NIC contention, spot
pricing, and the :class:`~repro.faults.health.NodeHealthLedger`'s
suspicion signals — and periodically re-plans per-job resources:
migrating jobs off nodes trending toward quarantine before they crash,
pre-emptively shrinking onto clean hardware when no replacement exists,
and pricing expected rollback cost into scale-up choices.

Enable it from a sched config::

    {"sched": {..., "brain": {"name": "health-migrate"}}}

or on the CLI with ``--set brain.name=health-migrate``.  ``repro list
brains`` shows the registry; ``brain: {"name": "static"}`` (or leaving
``brain`` unset) is byte-identical to a build without this package.
"""

from repro.brain.base import (
    ACTION_KINDS,
    BRAINS,
    Action,
    Autotuner,
    build_brain,
    register_brain,
)
from repro.brain.driver import BrainDriver
from repro.brain.log import PHASES, BrainLog
from repro.brain.signals import (
    BrainObservation,
    JobSignal,
    NodeSignal,
    build_observation,
)

# Importing the module registers the built-in brains.
from repro.brain import builtins as _builtins  # noqa: E402,F401  (side effect)

__all__ = [
    "BRAINS",
    "ACTION_KINDS",
    "Action",
    "Autotuner",
    "register_brain",
    "build_brain",
    "BrainDriver",
    "PHASES",
    "BrainLog",
    "NodeSignal",
    "JobSignal",
    "BrainObservation",
    "build_observation",
]
