"""Fig. 8: HiTopKComm per-step time breakdown vs density.

For the two training-relevant gradient sizes — 25M (ResNet-50) and 110M
(Transformer) parameters, FP32 elements — at densities
ρ ∈ {0.001, 0.002, 0.01, 0.02}.  The paper's observations: the
inter-node All-Gather dominates, MSTopK is negligible, and the two
intra-node steps are small thanks to NVLink.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cloud_presets import paper_testbed
from repro.cluster.network import NetworkModel
from repro.comm.breakdown import TimeBreakdown
from repro.comm.hitopkcomm import (
    HiTopKComm,
    STEP_INTER_ALLGATHER,
    STEP_INTRA_ALLGATHER,
    STEP_MSTOPK,
    STEP_REDUCE_SCATTER,
)
from repro.utils.tables import print_table

DENSITIES = (0.001, 0.002, 0.01, 0.02)
MODELS = (("ResNet-50", 25_000_000), ("Transformer", 110_000_000))
STEPS = (
    STEP_REDUCE_SCATTER,
    STEP_MSTOPK,
    STEP_INTER_ALLGATHER,
    STEP_INTRA_ALLGATHER,
)


@dataclass(frozen=True)
class BreakdownPoint:
    model: str
    d: int
    density: float
    breakdown: TimeBreakdown


def run(network: NetworkModel | None = None) -> list[BreakdownPoint]:
    network = network if network is not None else paper_testbed()
    points: list[BreakdownPoint] = []
    for model_name, d in MODELS:
        for density in DENSITIES:
            scheme = HiTopKComm(
                network,
                density=density,
                value_bytes=4,  # "both of which are with FP32 for each element"
                index_bytes=4,
                dense_wire_bytes=4,
                error_feedback=False,
            )
            points.append(
                BreakdownPoint(model_name, d, density, scheme.time_model(d))
            )
    return points


def main() -> None:
    points = run()
    for model_name, d in MODELS:
        rows = []
        for p in points:
            if p.model != model_name:
                continue
            rows.append(
                [p.density]
                + [round(p.breakdown.get(s) * 1000, 3) for s in STEPS]
                + [round(p.breakdown.total * 1000, 3)]
            )
        print_table(
            ["Density", "ReduceScatter (ms)", "MSTopK (ms)", "Inter-AllGather (ms)",
             "Intra-AllGather (ms)", "Total (ms)"],
            rows,
            title=f"Fig. 8: HiTopKComm breakdown, {model_name} ({d / 1e6:g}M params, FP32)",
        )


if __name__ == "__main__":
    main()
