"""Elastic churn: training under spot revocations, by comm scheme.

The paper's numbers assume 16 stable nodes; this experiment asks what
happens on the cluster you can actually afford — spot instances that
come and go.  It sweeps revocation rates x aggregation schemes (dense
TreeAR, gTop-k, HiTopKComm) with the elastic trainer: every scheme sees
the *same* churn schedule per rate, stragglers compose via the
variability model, and the cost layer prices each run against its
on-demand baseline.

The headline result mirrors the paper's steady-state one: the
hierarchical sparse scheme keeps its throughput advantage under churn —
its shorter iterations mean less work in flight per revocation, and the
goodput gap versus dense all-reduce *widens* as the revocation rate
rises.
"""

from __future__ import annotations

from repro.api import (
    ClusterConfig,
    CommConfig,
    ElasticConfig,
    RunConfig,
    TrainConfig,
)
from repro.api import run as run_config
from repro.elastic.elastic_trainer import ElasticRunReport
from repro.perf.elastic_cost import ElasticCostReport
from repro.utils.seeding import derive_seed
from repro.utils.tables import print_table

#: Schemes compared (registry names), paper-system last.
DEFAULT_SCHEMES = ("dense", "gtopk", "mstopk")
#: Revocations per node per iteration; 0.01 on the default 3-node
#: cluster averages ~3 revocations per 100 iterations.
DEFAULT_RATES = (0.0, 0.005, 0.02)

#: Fast defaults for the harness; the bench passes smaller settings.
DEFAULT_ITERATIONS = 120


def run(
    *,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    rates: tuple[float, ...] = DEFAULT_RATES,
    iterations: int = DEFAULT_ITERATIONS,
    num_nodes: int = 3,
    gpus_per_node: int = 2,
    local_batch: int = 8,
    num_samples: int = 512,
    density: float = 0.05,
    timing_d: int = 25_000_000,
    sigma: float = 0.1,
    rejoin_delay: int = 20,
    checkpoint_every: int = 20,
    compute_seconds: float = 0.3,
    checkpoint_seconds: float = 0.5,
    restart_seconds: float = 5.0,
    instance: str = "tencent",
    seed: int = 11,
) -> dict[tuple[str, float], tuple[ElasticRunReport, ElasticCostReport]]:
    """Sweep schemes x revocation rates; returns run + cost reports.

    Per rate, every scheme runs with the same trainer seed, so the
    Poisson churn schedule (and the straggler draw) is identical across
    schemes — differences are attributable to the aggregation scheme.
    ``timing_d`` sizes the analytic comm-time model (default: the
    paper's ~25M-parameter ResNet-50) while the convergence analogue
    trains a small MLP; ``compute_seconds`` defaults to a
    ResNet-50-like ~0.3 s forward+backward so recovery overheads
    amortise at a realistic scale.

    Every cell is one declarative :class:`~repro.api.RunConfig` driven
    through :func:`repro.api.run`; ``data_seed`` is pinned across cells
    so all runs see the same spiral dataset.
    """
    data_seed = derive_seed(seed, "data")
    results: dict[tuple[str, float], tuple[ElasticRunReport, ElasticCostReport]] = {}
    for rate in rates:
        for scheme in schemes:
            config = RunConfig(
                name=f"elastic-churn-{scheme}-{rate:g}",
                seed=derive_seed(seed, "rate", repr(rate)),
                cluster=ClusterConfig(
                    instance=instance,
                    num_nodes=num_nodes,
                    gpus_per_node=gpus_per_node,
                ),
                comm=CommConfig(scheme=scheme, density=density),
                train=TrainConfig(
                    model="mlp-tiny",
                    num_samples=num_samples,
                    local_batch=local_batch,
                    data_seed=data_seed,
                ),
                elastic=ElasticConfig(
                    iterations=iterations,
                    schedule="poisson" if rate > 0 else "none",
                    rate=rate,
                    warned_fraction=0.5,
                    rejoin_delay=rejoin_delay,
                    checkpoint_every=checkpoint_every,
                    compute_seconds=compute_seconds,
                    checkpoint_seconds=checkpoint_seconds,
                    restart_seconds=restart_seconds,
                    timing_d=timing_d,
                    sigma=sigma,
                ),
            )
            report = run_config(config)
            results[(scheme, rate)] = (report.elastic_run, report.cost)
    return results


def main(*, fast: bool = False) -> None:
    if fast:
        results = run(rates=(0.0, 0.02), iterations=40, num_samples=256)
    else:
        results = run()
    rates = sorted({rate for _, rate in results})
    schemes = list(dict.fromkeys(scheme for scheme, _ in results))
    for rate in rates:
        rows = []
        for scheme in schemes:
            report, cost = results[(scheme, rate)]
            rows.append(
                [
                    report.scheme,
                    round(report.goodput, 2),
                    round(report.raw_throughput, 2),
                    f"{100 * report.lost_fraction:.1f}%",
                    report.revocations,
                    report.joins,
                    round(cost.cost_per_kilo_iteration, 3),
                    f"{100 * cost.savings_fraction:.0f}%",
                    round(report.final_loss, 4),
                ]
            )
        print_table(
            [
                "Scheme",
                "goodput it/s",
                "raw it/s",
                "lost work",
                "revoked",
                "joined",
                "$ / 1k iters",
                "vs on-demand",
                "final loss",
            ],
            rows,
            title=(
                f"Elastic churn @ rate {rate}/node-iter "
                "(3x2 Tencent spot cluster, d=25M comm model)"
            ),
        )
        print()


if __name__ == "__main__":
    main()
