"""§5.4: PTO speedup on LARS computation.

The paper measures the layer-wise LARS learning-rate computation with
randomly generated weights/gradients: 11 ms → 7 ms on ResNet-50 and
30 ms → 14 ms on the Transformer (≈2× on 128 GPUs).  We report the
calibrated cost model's serial/PTO times for both inventories, and run
the *functional* PTO on real random tensors to verify bit-equality with
the serial computation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cloud_presets import paper_testbed
from repro.cluster.network import NetworkModel
from repro.models.profiles import ModelProfile, resnet50_profile, transformer_profile
from repro.optim.lars import lars_coefficients
from repro.pto.lars_pto import lars_learning_rates_pto
from repro.pto.operator import PTOCostModel
from repro.utils.seeding import new_rng
from repro.utils.tables import print_table

#: Paper §5.4 measurements (serial_ms, pto_ms).
PAPER_PTO = {"ResNet-50": (11.0, 7.0), "Transformer": (30.0, 14.0)}


@dataclass(frozen=True)
class PTORow:
    model: str
    serial_ms: float
    pto_ms: float
    speedup: float
    functional_match: bool


def _functional_check(network: NetworkModel, profile: ModelProfile) -> bool:
    """PTO result must equal the serial LARS rates exactly."""
    rng = new_rng(42)
    # Use a manageable stand-in tensor per layer (norms only need data,
    # not the full 25M parameters, to validate the computation path).
    sizes = [min(s, 256) for s in profile.layer_sizes[:32]]
    weights = [rng.normal(size=s) for s in sizes]
    grads = [rng.normal(size=s) for s in sizes]
    serial = lars_coefficients(weights, grads, eta=0.1)
    pto = lars_learning_rates_pto(network, weights, grads, eta=0.1)
    return bool(np.allclose(serial, pto.result))


def run(network: NetworkModel | None = None) -> list[PTORow]:
    network = network if network is not None else paper_testbed()
    rows: list[PTORow] = []
    for profile in (resnet50_profile(), transformer_profile()):
        cost = PTOCostModel(kernels_per_layer=profile.lars_kernels_per_layer)
        serial = cost.serial_time(profile.layer_sizes)
        pto = cost.pto_time(profile.layer_sizes, network)
        rows.append(
            PTORow(
                model=profile.name,
                serial_ms=serial * 1000,
                pto_ms=pto * 1000,
                speedup=serial / pto,
                functional_match=_functional_check(network, profile),
            )
        )
    return rows


def main() -> None:
    rows = run()
    table = []
    for r in rows:
        paper_serial, paper_pto = PAPER_PTO[r.model]
        table.append(
            [
                r.model,
                round(r.serial_ms, 1),
                paper_serial,
                round(r.pto_ms, 1),
                paper_pto,
                f"{r.speedup:.2f}x",
                "yes" if r.functional_match else "NO",
            ]
        )
    print_table(
        ["Model", "Serial (ms)", "paper", "PTO (ms)", "paper", "Speedup", "Exact match"],
        table,
        title="PTO speedup on LARS (128 GPUs) — paper §5.4",
    )


if __name__ == "__main__":
    main()
