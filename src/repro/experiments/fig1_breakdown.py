"""Fig. 1: per-iteration time breakdown of the existing training schemes.

Dense-SGD (TreeAR) and TopK-SGD (exact top-k + flat All-Gather) on
ResNet-50 at 224² and 96² input, 128 GPUs, the *un-optimised* system
(no DataCache, serial LARS).  The paper's observations to reproduce:

* I/O and communication dominate the Dense-SGD iteration;
* TopK-SGD shrinks communication but its exact top-k "Compression" bar
  (0.239 s) exceeds the whole FF&BP time (0.204 s);
* at 96² the LARS bar becomes relatively significant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cloud_presets import paper_testbed
from repro.cluster.network import NetworkModel
from repro.models.profiles import resnet50_profile
from repro.perf.calibration import CALIBRATION, Calibration
from repro.perf.iteration_model import IterationModel, SchemeKind
from repro.utils.tables import print_table

#: Fig. 1's bars, in legend order.
COMPONENTS = ("io", "ff_bp", "compression", "communication", "lars")


@dataclass(frozen=True)
class BreakdownBar:
    """One bar of Fig. 1."""

    scheme: str
    resolution: int
    components: dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.components.values())


def run(
    network: NetworkModel | None = None, *, cal: Calibration = CALIBRATION
) -> list[BreakdownBar]:
    network = network if network is not None else paper_testbed()
    profile = resnet50_profile()
    bars: list[BreakdownBar] = []
    for scheme_label, kind in (
        ("Dense-SGD", SchemeKind.DENSE_TREE),
        ("TopK-SGD", SchemeKind.TOPK_NAIVE),
    ):
        for resolution in (224, 96):
            model = IterationModel(
                network=network,
                profile=profile,
                scheme=kind,
                resolution=resolution,
                local_batch=256,
                density=cal.training_density,
                use_datacache=False,  # the "existing schemes" baseline
                use_pto=False,
                cal=cal,
            )
            breakdown = model.breakdown()
            bars.append(
                BreakdownBar(
                    scheme=scheme_label,
                    resolution=resolution,
                    components={c: breakdown.get(c) for c in COMPONENTS},
                )
            )
    return bars


def main() -> None:
    bars = run()
    rows = [
        [f"{b.scheme} {b.resolution}x{b.resolution}"]
        + [round(b.components[c], 4) for c in COMPONENTS]
        + [round(b.total, 4)]
        for b in bars
    ]
    print_table(
        ["Scheme", "I/O", "FF&BP", "Compression", "Communication", "LARS", "Total"],
        rows,
        title="Fig. 1: time breakdown of one iteration (seconds), ResNet-50, 128 GPUs",
    )


if __name__ == "__main__":
    main()
