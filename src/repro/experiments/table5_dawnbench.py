"""Table 5: time to 93% top-5 accuracy with 128 V100s (DAWNBench).

Simulates the paper's 28-epoch record run on the virtual 25GbE testbed
and places it on the published leaderboard, plus the two schedule
ablations the paper argues about in prose: all-dense (slower) and
all-sparse (faster but misses the accuracy bar).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.dawnbench import (
    DAWNBENCH_LEADERBOARD,
    DawnbenchResult,
    DawnbenchSimulator,
    PAPER_RECORD_SECONDS,
)
from repro.utils.tables import print_table


@dataclass(frozen=True)
class Table5Outcome:
    record: DawnbenchResult
    all_dense: DawnbenchResult
    all_sparse: DawnbenchResult


def run() -> Table5Outcome:
    sim = DawnbenchSimulator()
    return Table5Outcome(
        record=sim.run(),
        all_dense=sim.run_all_dense(),
        all_sparse=sim.run_all_sparse(),
    )


def main() -> None:
    outcome = run()
    rows = [
        [e.team, e.date, e.interconnect, round(e.seconds)]
        for e in DAWNBENCH_LEADERBOARD
    ]
    rows.append(
        ["Ours (simulated)", "Aug 2020", "25GbE", round(outcome.record.total_seconds)]
    )
    rows.append(["Ours (paper)", "Aug 2020", "25GbE", round(PAPER_RECORD_SECONDS)])
    print_table(
        ["Team", "Date", "Interconnect", "Time (s)"],
        rows,
        title="Table 5: time to 93% top-5 accuracy, 128 Tesla V100 GPUs",
    )
    rec = outcome.record
    print(
        f"record run: {rec.total_seconds:.1f}s over {rec.epochs} epochs, "
        f"final top-5 {100 * rec.final_top5:.2f}% (target reached: {rec.reached_target})"
    )
    print(
        f"ablation all-2DTAR: {outcome.all_dense.total_seconds:.1f}s "
        f"(top-5 {100 * outcome.all_dense.final_top5:.2f}%)"
    )
    print(
        f"ablation all-MSTopK: {outcome.all_sparse.total_seconds:.1f}s "
        f"(top-5 {100 * outcome.all_sparse.final_top5:.2f}%, "
        f"target reached: {outcome.all_sparse.reached_target})"
    )


if __name__ == "__main__":
    main()
