"""Brain autotuning: online re-planning vs static fault-aware placement.

PR 8's fault drills established that health-aware *placement* beats
fault-blind placement under the committed gray storm.  This experiment
asks the follow-up question from the EasyDL/DLRover line of work: once
placement is already fault-aware, does an online Brain that keeps
re-planning mid-run — migrating gangs off nodes trending toward
quarantine, pre-emptively shrinking onto clean hardware, and pricing
expected rollback cost into every scale-up — still pay?

It replays the same seeded gray storm once per registered brain
(``static`` is the no-brain baseline) and prints the scorecard: goodput
under the storm, mean JCT, finish-time fairness (Jain's index over
per-job completion times), $/kilo-iteration, and the applied decision
counts.  A second table dumps the winning brain's full decision log so
the "why" behind every migrate/shrink/grow is auditable.
"""

from __future__ import annotations

from repro.brain.drill import (
    BRAIN_DRILL_COLUMNS,
    BRAIN_DRILL_POLICY,
    run_brain_drills,
)
from repro.faults.drill import GRAY_STORM_EVENTS
from repro.utils.tables import print_table

#: Brains the trimmed (--fast) drill covers — the baseline and the
#: headline brain; the full run adds ``throughput``.
FAST_BRAINS = ("static", "health-migrate")


def main(fast: bool = False) -> None:
    brains = FAST_BRAINS if fast else None  # None = every drill brain
    print(
        f"Gray storm ({len(GRAY_STORM_EVENTS)} faults, seed 7) under "
        f"{BRAIN_DRILL_POLICY} placement, per brain:"
    )
    for event in GRAY_STORM_EVENTS:
        print(f"  {event}")
    results = run_brain_drills(brains, seed=7)
    rows = [[result[column] for column in BRAIN_DRILL_COLUMNS] for result in results]
    print_table(
        BRAIN_DRILL_COLUMNS,
        rows,
        title="Brain drill: online re-planning vs the static baseline",
    )

    # Goodput first; JCT breaks ties (throughput and health-migrate can
    # tie on goodput when both clear the same storm).
    winner = max(results, key=lambda r: (r["storm_goodput"], -r["mean_jct_s"]))
    entries = winner["entries"]
    decisions = [e for e in entries if e["phase"] != "tick"]
    print(
        f"\nDecision log for {winner['brain']!r} "
        f"({len(decisions)} decisions over {len(entries)} events):"
    )
    log_rows = [
        [
            entry["t"],
            entry["phase"],
            entry.get("job"),
            entry["detail"].get("src"),
            entry["detail"].get("dst"),
            entry["detail"].get("reason"),
        ]
        for entry in decisions
    ]
    print_table(
        ["t", "phase", "job", "src", "dst", "reason"],
        log_rows,
        title=f"{winner['brain']}: applied + declined decisions",
    )


if __name__ == "__main__":
    main()
