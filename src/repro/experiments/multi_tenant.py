"""Multi-tenant scheduling: placement policy shoot-out on a shared cluster.

The paper measures one job on sixteen dedicated nodes; real cloud
clusters are shared.  This experiment admits a mixed queue — a
comm-light MSTopK ResNet-50, a comm-heavy dense VGG-19, a
deadline-carrying on-demand Transformer that arrives late and preempts,
and a single-node top-k sweep — onto one virtual cluster under each
registered placement policy, and compares what placement alone changes:
co-location contention (co-located jobs split NIC bandwidth through the
Fig. 1 iteration model), queueing delay, makespan, utilization, and
dollars.

The headline mirrors the transient-server literature ("Speeding up Deep
Learning with Transient Servers", Li et al. 2019; MiCS, Zhang et al.
2022): on 25 Gbps clouds, *where* you put jobs moves throughput as much
as *how* you compress — bin-packing keeps nodes free but taxes
comm-heavy tenants with NIC sharing, while spreading (and, among busy
nodes, network-aware placement) buys the dense job its bandwidth back.
"""

from __future__ import annotations

from repro.api.config import ClusterConfig, JobConfig, SchedConfig
from repro.api.facade import run_sched
from repro.sched.scheduler import SchedReport
from repro.utils.tables import print_table

#: Policies compared (registry names), packing-first.
DEFAULT_POLICIES = ("bin-pack", "spread", "network-aware")


def scenario(
    *,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    num_nodes: int = 4,
    gpus_per_node: int = 8,
    instance: str = "tencent",
    seed: int = 7,
) -> SchedConfig:
    """The canonical mixed queue (mirrors ``examples/configs/multi_tenant.json``)."""
    return SchedConfig(
        name="multi-tenant",
        seed=seed,
        cluster=ClusterConfig(
            instance=instance, num_nodes=num_nodes, gpus_per_node=gpus_per_node
        ),
        policies=tuple(policies),
        jobs=(
            JobConfig(
                name="resnet-prod",
                profile="resnet50",
                scheme="mstopk",
                density=0.01,
                iterations=400,
                priority=1,
                min_nodes=1,
                max_nodes=2,
                gpus_per_node=4,
            ),
            JobConfig(
                name="vgg-batch",
                profile="vgg19",
                scheme="dense",
                iterations=150,
                priority=0,
                min_nodes=1,
                max_nodes=2,
                gpus_per_node=4,
            ),
            JobConfig(
                name="xfmr-deadline",
                profile="transformer",
                scheme="mstopk",
                density=0.02,
                iterations=120,
                priority=2,
                arrival_seconds=60.0,
                deadline_seconds=1200.0,
                preference="on-demand",
                min_nodes=2,
                max_nodes=2,
                gpus_per_node=8,
            ),
            JobConfig(
                name="topk-sweep",
                profile="resnet50",
                scheme="topk",
                density=0.005,
                iterations=250,
                priority=0,
                arrival_seconds=20.0,
                min_nodes=1,
                max_nodes=1,
                gpus_per_node=4,
            ),
        ),
    )


def run(
    *,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    num_nodes: int = 4,
    gpus_per_node: int = 8,
    instance: str = "tencent",
    seed: int = 7,
) -> dict[str, SchedReport]:
    """Simulate the canonical queue under each policy."""
    config = scenario(
        policies=policies,
        num_nodes=num_nodes,
        gpus_per_node=gpus_per_node,
        instance=instance,
        seed=seed,
    )
    return run_sched(config)


def main(*, fast: bool = False) -> None:
    # The simulation is closed-form; `fast` trims the policy set only.
    policies = DEFAULT_POLICIES[:2] if fast else DEFAULT_POLICIES
    reports = run(policies=policies)
    for policy, report in reports.items():
        rows = [
            [
                o.job,
                o.status,
                o.priority,
                o.nodes,
                round(o.queue_wait_s, 1),
                round(o.jct_s, 1) if o.jct_s is not None else "-",
                round(o.goodput_it_per_s, 2),
                round(o.contention_slowdown, 3),
                f"{o.grows}/{o.shrinks}",
                round(o.cost_usd, 3),
                {True: "yes", False: "MISSED", None: "-"}[o.deadline_met],
            ]
            for o in report.jobs
        ]
        print_table(
            [
                "Job",
                "status",
                "prio",
                "nodes",
                "wait s",
                "JCT s",
                "goodput it/s",
                "contention x",
                "grow/shrink",
                "cost $",
                "deadline",
            ],
            rows,
            title=(
                f"Policy {policy} ({report.num_nodes}x{report.gpus_per_node} "
                f"{report.instance}, shared NICs)"
            ),
        )
    summary_rows = [
        [
            policy,
            round(report.makespan_s, 1),
            round(report.cluster_goodput_it_per_s, 2),
            f"{100 * report.utilization:.0f}%",
            round(report.mean_queue_wait_s, 1),
            round(report.total_cost_usd, 3),
            (
                f"{100 * report.deadline_hit_rate:.0f}%"
                if report.deadline_hit_rate is not None
                else "-"
            ),
        ]
        for policy, report in reports.items()
    ]
    print_table(
        [
            "Policy",
            "makespan s",
            "goodput it/s",
            "utilization",
            "mean wait s",
            "total $",
            "deadlines",
        ],
        summary_rows,
        title="Placement policy comparison (same queue, same cluster)",
    )


if __name__ == "__main__":
    main()
