"""Experiment harnesses — one module per paper table / figure.

Each module exposes a ``run(...)`` returning structured rows/series and
a ``main()`` printing the same rows/series the paper reports, so the
benchmark logs are directly comparable with the publication.  The
mapping (see DESIGN.md §4):

========================  ==========================================
Paper artefact             Module
========================  ==========================================
Table 1 (cloud instances)  :mod:`repro.experiments.table1_instances`
Fig. 1 (time breakdown)    :mod:`repro.experiments.fig1_breakdown`
Fig. 6 (top-k operators)   :mod:`repro.experiments.fig6_topk_ops`
Fig. 7 (aggregation time)  :mod:`repro.experiments.fig7_aggregation`
Fig. 8 (HiTopKComm steps)  :mod:`repro.experiments.fig8_hitopk_breakdown`
Fig. 9 (DataCache)         :mod:`repro.experiments.fig9_datacache`
§5.4 (PTO speedup)         :mod:`repro.experiments.pto_speedup`
Fig. 10 (convergence)      :mod:`repro.experiments.fig10_convergence`
Table 2 (validation)       :mod:`repro.experiments.table2_validation`
Table 3 (throughput)       :mod:`repro.experiments.table3_throughput`
Table 4 (resolutions)      :mod:`repro.experiments.table4_resolutions`
Table 5 (DAWNBench)        :mod:`repro.experiments.table5_dawnbench`
========================  ==========================================
"""

__all__ = [
    "table1_instances",
    "fig1_breakdown",
    "fig6_topk_ops",
    "fig7_aggregation",
    "fig8_hitopk_breakdown",
    "fig9_datacache",
    "pto_speedup",
    "fig10_convergence",
    "table2_validation",
    "table3_throughput",
    "table4_resolutions",
    "table5_dawnbench",
]
