"""Table 1: 8-V100 computing instances on public clouds."""

from __future__ import annotations

from repro.cluster.cloud_presets import table1_rows
from repro.utils.tables import print_table


def run() -> list[tuple[str, str, int, str, int]]:
    """The three instance rows (cloud, instance, memory, storage, network)."""
    return table1_rows()


def main() -> None:
    print_table(
        ["Cloud", "Instance", "Memory (GiB)", "Storage", "Network (Gbps)"],
        run(),
        title="Table 1: 8 V100 GPUs computing instances on clouds",
    )


if __name__ == "__main__":
    main()
