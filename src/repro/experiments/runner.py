"""Run every experiment harness in paper order.

``python -m repro experiments`` (or ``python -m repro.experiments.runner``)
regenerates all tables/figures; ``--fast`` trims the expensive sweeps
(Fig. 6 CPU measurement, long convergence runs, the elastic churn sweep)
and ``--only`` substring-filters by experiment name.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    elastic_churn,
    fig1_breakdown,
    fig6_topk_ops,
    fig7_aggregation,
    fig8_hitopk_breakdown,
    fig9_datacache,
    fig10_convergence,
    multi_tenant,
    pto_speedup,
    table1_instances,
    table2_validation,
    table3_throughput,
    table4_resolutions,
    table5_dawnbench,
)

EXPERIMENTS = (
    ("Table 1", table1_instances.main),
    ("Fig. 1", fig1_breakdown.main),
    ("Fig. 6", fig6_topk_ops.main),
    ("Fig. 7", fig7_aggregation.main),
    ("Fig. 8", fig8_hitopk_breakdown.main),
    ("Fig. 9", fig9_datacache.main),
    ("PTO (§5.4)", pto_speedup.main),
    ("Fig. 10", fig10_convergence.main),
    ("Table 2", table2_validation.main),
    ("Table 3", table3_throughput.main),
    ("Table 4", table4_resolutions.main),
    ("Table 5", table5_dawnbench.main),
    ("Elastic churn", elastic_churn.main),
    ("Multi-tenant sched", multi_tenant.main),
)

#: Harnesses whose ``main`` accepts ``fast=True`` to trim expensive
#: sweeps; the rest already run in seconds.
FAST_AWARE = ("Fig. 6", "Fig. 10", "Elastic churn", "Multi-tenant sched")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--only",
        default=None,
        help="substring filter on experiment names (e.g. 'Fig. 7')",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="trim the expensive sweeps (Fig. 6 CPU measurement, "
        "long convergence runs, the elastic churn sweep)",
    )
    args = parser.parse_args(argv)

    for name, entry in EXPERIMENTS:
        if args.only and args.only.lower() not in name.lower():
            continue
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
        start = time.perf_counter()
        if args.fast and name in FAST_AWARE:
            entry(fast=True)
        else:
            entry()
        print(f"[{name} done in {time.perf_counter() - start:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
