"""Run every experiment harness in paper order.

``python -m repro experiments`` (or ``python -m repro.experiments.runner``)
regenerates all tables/figures; ``--fast`` trims the expensive sweeps
(Fig. 6 CPU measurement, long convergence runs, the elastic churn sweep)
and ``--only`` substring-filters by experiment name.

``--backend process --jobs N`` fans the selected harnesses across a
:mod:`repro.exec` worker pool — each harness is independent and seeded,
so outputs are identical to the serial run; stdout is captured per
harness and printed in paper order, so the transcript is deterministic
too (only the per-harness timings move).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    brain_autotune,
    elastic_churn,
    fault_drills,
    fig1_breakdown,
    fig6_topk_ops,
    fig7_aggregation,
    fig8_hitopk_breakdown,
    fig9_datacache,
    fig10_convergence,
    multi_tenant,
    pto_speedup,
    table1_instances,
    table2_validation,
    table3_throughput,
    table4_resolutions,
    table5_dawnbench,
)

EXPERIMENTS = (
    ("Table 1", table1_instances.main),
    ("Fig. 1", fig1_breakdown.main),
    ("Fig. 6", fig6_topk_ops.main),
    ("Fig. 7", fig7_aggregation.main),
    ("Fig. 8", fig8_hitopk_breakdown.main),
    ("Fig. 9", fig9_datacache.main),
    ("PTO (§5.4)", pto_speedup.main),
    ("Fig. 10", fig10_convergence.main),
    ("Table 2", table2_validation.main),
    ("Table 3", table3_throughput.main),
    ("Table 4", table4_resolutions.main),
    ("Table 5", table5_dawnbench.main),
    ("Elastic churn", elastic_churn.main),
    ("Multi-tenant sched", multi_tenant.main),
    ("Fault drills", fault_drills.main),
    ("Brain autotune", brain_autotune.main),
)

#: Harnesses whose ``main`` accepts ``fast=True`` to trim expensive
#: sweeps; the rest already run in seconds.
FAST_AWARE = (
    "Fig. 6",
    "Fig. 10",
    "Elastic churn",
    "Multi-tenant sched",
    "Fault drills",
    "Brain autotune",
)


def _selected(only: str | None) -> list[tuple[str, object]]:
    return [
        (name, entry)
        for name, entry in EXPERIMENTS
        if not only or only.lower() in name.lower()
    ]


def _run_serial(selected, fast: bool) -> None:
    for name, entry in selected:
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
        start = time.perf_counter()
        if fast and name in FAST_AWARE:
            entry(fast=True)
        else:
            entry()
        print(f"[{name} done in {time.perf_counter() - start:.1f}s]")


def _run_parallel(selected, fast: bool, backend: str, jobs: int) -> None:
    from repro.exec.sweeper import ParallelSweeper

    sweeper = ParallelSweeper(backend, jobs=jobs)
    entries = [
        (name, entry.__module__, fast and name in FAST_AWARE)
        for name, entry in selected
    ]
    start = time.perf_counter()
    outputs = sweeper.run_experiments(entries)
    elapsed = time.perf_counter() - start
    for name, text in outputs:
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
        print(text, end="" if text.endswith("\n") else "\n")
    print(
        f"[{len(outputs)} experiments done in {elapsed:.1f}s "
        f"on backend {backend!r}, jobs={jobs}]"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--only",
        default=None,
        help="substring filter on experiment names (e.g. 'Fig. 7')",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="trim the expensive sweeps (Fig. 6 CPU measurement, "
        "long convergence runs, the elastic churn sweep)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="execution backend for the harness fan-out (serial runs "
        "in-process and streams output live; --jobs alone implies "
        "process, but a named backend always wins)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for parallel backends (0 = all cores)",
    )
    args = parser.parse_args(argv)

    selected = _selected(args.only)
    if not selected:
        print(f"no experiment matches --only {args.only!r}", file=sys.stderr)
        return 2
    from repro.exec.backend import BACKENDS

    # Same rule as `repro run`/`sched`: --jobs alone implies the process
    # backend, but an explicitly named backend always wins.
    name = args.backend
    if name is None:
        name = "serial" if args.jobs == 1 else "process"
    canonical = BACKENDS.canonical(name)
    if canonical is None:
        print(
            f"error: unknown exec backend {name!r}; "
            f"registered: {', '.join(BACKENDS.available())}",
            file=sys.stderr,
        )
        return 2
    if canonical == "serial":
        _run_serial(selected, args.fast)
    else:
        _run_parallel(selected, args.fast, canonical, args.jobs)
    return 0


if __name__ == "__main__":
    sys.exit(main())
