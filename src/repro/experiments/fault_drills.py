"""Fault drills: recovery scorecard under a composed fault storm.

The paper's evaluation assumes sixteen healthy dedicated nodes; public
cloud fleets crash, flap, straggle, go gray, and lose whole
availability zones.  This experiment replays one seeded seven-fault
storm — NIC flap, fail-slow disk, persistent straggler, gray link,
*unwarned* node crash, checkpoint corruption, and a correlated AZ-wide
spot reclaim — against every registered aggregation scheme through the
elastic trainer, and scores detection-to-recovery latency, goodput
under the storm vs the no-fault baseline, lost work, and
$/kilo-iteration.  A second act drives the same fault kinds through
the multi-tenant scheduler, where a crash shrinks or requeues tenants
and a ``duration`` schedules node repair.  A third act replays the
gray-failure storm once per placement policy: the ``fault-aware``
policy reads the node-health ledger and keeps production jobs off the
flapping/straggling/gray hardware every fault-blind built-in keeps
re-placing them onto.

The headline: compressed schemes don't just communicate cheaper — they
*recover* cheaper, because the rollback-replay tax after an unwarned
crash is priced in iteration time, and MSTopK iterations are the
shortest in the storm too.
"""

from __future__ import annotations

from repro.api.config import ClusterConfig, FaultConfig, FaultsConfig, JobConfig, SchedConfig
from repro.api.facade import run_sched
from repro.faults.drill import (
    DRILL_COLUMNS,
    GRAY_STORM_EVENTS,
    POLICY_DRILL_COLUMNS,
    STORM_EVENTS,
    run_drills,
    run_policy_drills,
)
from repro.utils.tables import print_table

#: Schemes the trimmed (--fast) drill covers.
FAST_SCHEMES = ("dense", "topk", "mstopk")


def sched_storm_scenario(*, seed: int = 7) -> SchedConfig:
    """Two tenants on six nodes through a crash + reclaim + flap storm."""
    return SchedConfig(
        name="fault-storm-sched",
        seed=seed,
        cluster=ClusterConfig(instance="tencent", num_nodes=6, gpus_per_node=2),
        policies=("bin-pack", "spread", "fault-aware"),
        jobs=(
            JobConfig(
                name="resnet-prod",
                profile="resnet50",
                scheme="mstopk",
                density=0.01,
                iterations=300,
                min_nodes=1,
                max_nodes=3,
            ),
            JobConfig(
                name="vgg-batch",
                profile="vgg19",
                scheme="dense",
                iterations=200,
                arrival_seconds=5.0,
                min_nodes=2,
                max_nodes=4,
            ),
        ),
        faults=FaultsConfig(
            events=(
                FaultConfig(kind="nic-degrade", at=30, duration=40, scale=0.4),
                FaultConfig(kind="node-crash", at=60, duration=120),
                FaultConfig(kind="straggler", at=40, duration=50, stretch=2.0),
                FaultConfig(kind="az-reclaim", at=90, duration=200, fraction=0.5),
            )
        ),
    )


def main(fast: bool = False) -> None:
    schemes = FAST_SCHEMES if fast else None  # None = every registered scheme
    print(f"Fault storm ({len(STORM_EVENTS)} composed faults, seed 7):")
    for event in STORM_EVENTS:
        print(f"  {event}")
    results = run_drills(schemes, seed=7)
    rows = [[result[column] for column in DRILL_COLUMNS] for result in results]
    print_table(
        DRILL_COLUMNS,
        rows,
        title="Recovery drill: storm vs no-fault baseline, per scheme",
    )

    print("\nScheduler under the same fault kinds (crash repairs after 120 s):")
    reports = run_sched(sched_storm_scenario())
    sched_rows = []
    for policy, report in reports.items():
        log = report.fault_log
        sched_rows.append(
            [
                policy,
                log["injected"],
                log["recovered"],
                log["requeues"],
                round(log["lost_iterations"], 1),
                len(log["nodes_down_end"]),
                round(report.makespan_s, 1),
                log["digest"],
            ]
        )
    print_table(
        [
            "policy",
            "injected",
            "recovered",
            "requeues",
            "lost_iters",
            "down_at_end",
            "makespan_s",
            "log_digest",
        ],
        sched_rows,
        title="Sched fault storm: recovery by placement policy",
    )

    print(f"\nGray-failure storm ({len(GRAY_STORM_EVENTS)} faults, seed 7) "
          "by placement policy:")
    for event in GRAY_STORM_EVENTS:
        print(f"  {event}")
    policy_results = run_policy_drills(seed=7)
    policy_rows = [
        [result[column] for column in POLICY_DRILL_COLUMNS]
        for result in policy_results
    ]
    print_table(
        POLICY_DRILL_COLUMNS,
        policy_rows,
        title="Policy drill: goodput under the gray storm, per policy",
    )


if __name__ == "__main__":
    main()
