"""Fig. 6: top-k operator comparison (nn.topk vs DGC vs MSTopK).

The paper measures selection time on a V100 for vector lengths 256K to
128M at ``k = 0.001 d`` with 30 MSTopK samplings, averaging 100
iterations after 5 warmups.  We report two views:

* **Measured (CPU)** — wall-clock of the real NumPy implementations
  (full-sort exact top-k, DGC double sampling, MSTopK's threshold
  passes).  CPU sort/scan cost ratios differ from CUDA's, so only the
  "MSTopK ≪ naive sort" part of the ordering is expected to transfer.
* **GPU projection** — the calibrated V100 kernel model
  (:mod:`repro.cluster.gpu`), which reproduces the paper's full
  ordering MSTopK < DGC < nn.topk and the curve shapes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.cluster.gpu import (
    V100,
    dgc_topk_gpu_time,
    exact_topk_gpu_time,
    mstopk_gpu_time,
)
from repro.compression.dgc import DGCTopK
from repro.compression.exact_topk import naive_topk_sort
from repro.compression.mstopk import mstopk_select
from repro.utils.seeding import new_rng
from repro.utils.stats import RunningStat
from repro.utils.tables import print_table

#: Paper sweep: "different length of vectors from 256 thousand to 128
#: million".  The default harness sweep stops at 8M to keep CI fast; the
#: benchmark passes larger sizes explicitly.
SMALL_SIZES = (256_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000)
LARGE_SIZES = (16_000_000, 32_000_000, 64_000_000, 128_000_000)

DENSITY = 0.001  # "k = 0.001 × d"
N_SAMPLINGS = 30  # "The number of samplings for MSTopK is 30"


@dataclass(frozen=True)
class OperatorTiming:
    """One (operator, size) point of Fig. 6."""

    operator: str
    d: int
    cpu_seconds: float | None
    gpu_projected: float


def _measure(fn, x: np.ndarray, *, warmup: int, repeats: int) -> float:
    for _ in range(warmup):
        fn(x)
    stat = RunningStat()
    for _ in range(repeats):
        start = time.perf_counter()
        fn(x)
        stat.add(time.perf_counter() - start)
    return stat.mean


def run(
    sizes: tuple[int, ...] = SMALL_SIZES,
    *,
    measure_cpu: bool = True,
    warmup: int = 1,
    repeats: int = 3,
    seed: int = 0,
) -> list[OperatorTiming]:
    rng = new_rng(seed)
    dgc = DGCTopK(sample_fraction=0.01)
    rows: list[OperatorTiming] = []
    for d in sizes:
        k = max(1, int(DENSITY * d))
        x = rng.normal(size=d) if measure_cpu else None
        ops = (
            ("nn.topk", lambda v: naive_topk_sort(v, k), exact_topk_gpu_time(d)),
            ("DGC", lambda v: dgc.select(v, k, rng=rng), dgc_topk_gpu_time(d)),
            (
                "MSTopK",
                lambda v: mstopk_select(v, k, n_samplings=N_SAMPLINGS, rng=rng),
                mstopk_gpu_time(d, n_samplings=N_SAMPLINGS),
            ),
        )
        for name, fn, gpu_time in ops:
            cpu = _measure(fn, x, warmup=warmup, repeats=repeats) if measure_cpu else None
            rows.append(OperatorTiming(name, d, cpu, gpu_time))
    return rows


def main(*, fast: bool = False) -> None:
    """Render the Fig. 6 table; ``fast`` skips the CPU wall-clock
    measurement and trims the sweep to the two smallest sizes."""
    if fast:
        rows = run(sizes=SMALL_SIZES[:2], measure_cpu=False)
    else:
        rows = run()
    table = [
        [
            r.operator,
            f"{r.d / 1e6:g}M",
            "-" if r.cpu_seconds is None else round(r.cpu_seconds, 4),
            round(r.gpu_projected, 5),
        ]
        for r in rows
    ]
    print_table(
        ["Operator", "Elements", "CPU measured (s)", "V100 projected (s)"],
        table,
        title=(
            "Fig. 6: top-k operator time, k = 0.001 d, 30 samplings "
            f"(GPU model: {V100.name})"
        ),
    )


if __name__ == "__main__":
    main()
