"""Table 2: final validation performance of the three algorithms.

Paper values (top-5 accuracy for CNNs, BLEU for Transformer):

=============  ==========  =========  ===========
Model          2DTAR-SGD   TopK-SGD   MSTopK-SGD
=============  ==========  =========  ===========
ResNet-50      93.31%      92.68%     93.12%
VGG-19         92.19%      91.55%     91.94%
Transformer    26.74       24.42      24.16
=============  ==========  =========  ===========

The qualitative claims our runs must reproduce: the sparsified
algorithms land slightly below dense, the gap is small (a fraction of a
point of accuracy at the paper's scale), and MSTopK-SGD is not worse
than TopK-SGD on the CNN workloads (dense intra-node aggregation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.train.convergence import ConvergenceRunner
from repro.utils.tables import print_table

#: Paper Table 2: model -> algorithm -> metric.
PAPER_TABLE2 = {
    "ResNet-50": {"dense": 93.31, "topk": 92.68, "mstopk": 93.12},
    "VGG-19": {"dense": 92.19, "topk": 91.55, "mstopk": 91.94},
    "Transformer": {"dense": 26.74, "topk": 24.42, "mstopk": 24.16},
}

#: Workload analogue used for each paper model.
ANALOGUES = {"ResNet-50": "mlp", "VGG-19": "cnn", "Transformer": "transformer"}


@dataclass(frozen=True)
class ValidationRow:
    model: str
    workload: str
    metric_name: str
    dense: float
    topk: float
    mstopk: float


def run(
    *, epochs: int = 15, num_samples: int = 1024, seed: int = 7
) -> list[ValidationRow]:
    runner = ConvergenceRunner(epochs=epochs, num_samples=num_samples, seed=seed)
    rows: list[ValidationRow] = []
    for model, workload in ANALOGUES.items():
        result = runner.run(workload)
        rows.append(
            ValidationRow(
                model=model,
                workload=workload,
                metric_name=result.metric_name,
                dense=result.final("dense"),
                topk=result.final("topk"),
                mstopk=result.final("mstopk"),
            )
        )
    return rows


def main() -> None:
    rows = run()
    table = []
    for r in rows:
        paper = PAPER_TABLE2[r.model]
        table.append(
            [
                f"{r.model} ({r.workload})",
                round(r.dense, 4),
                paper["dense"],
                round(r.topk, 4),
                paper["topk"],
                round(r.mstopk, 4),
                paper["mstopk"],
            ]
        )
    print_table(
        ["Model", "Dense", "paper", "TopK", "paper", "MSTopK", "paper"],
        table,
        title="Table 2: final validation metric (ours: small-model analogue; paper: full-scale)",
    )


if __name__ == "__main__":
    main()
