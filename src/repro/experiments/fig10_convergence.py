"""Fig. 10: convergence comparison of Dense-SGD, TopK-SGD and MSTopK-SGD.

The paper trains ResNet-50 and VGG-19 for 90 epochs at 32K global batch
and plots top-5 accuracy per epoch; the finding is that both sparsified
variants track Dense-SGD closely.  Our laptop-scale analogue trains the
MLP (ResNet stand-in) and the small CNN (VGG stand-in) on 8 virtual
workers with real error-feedback pipelines; curves are per-epoch top-1
validation accuracy.
"""

from __future__ import annotations

from repro.train.convergence import ConvergenceResult, ConvergenceRunner
from repro.utils.tables import print_table

#: Fast defaults for the harness; the bench can pass larger settings.
DEFAULT_EPOCHS = 15
DEFAULT_SAMPLES = 1024


def run(
    *,
    workloads: tuple[str, ...] = ("mlp", "cnn"),
    epochs: int = DEFAULT_EPOCHS,
    num_samples: int = DEFAULT_SAMPLES,
    seed: int = 7,
) -> dict[str, ConvergenceResult]:
    runner = ConvergenceRunner(
        epochs=epochs, num_samples=num_samples, seed=seed
    )
    return {w: runner.run(w) for w in workloads}


#: ``--fast`` trim: enough epochs for the curves to separate, small data.
FAST_EPOCHS = 4
FAST_SAMPLES = 512


def main(*, fast: bool = False) -> None:
    if fast:
        results = run(epochs=FAST_EPOCHS, num_samples=FAST_SAMPLES)
    else:
        results = run()
    for workload, result in results.items():
        algorithms = list(result.reports)
        epochs = len(result.reports[algorithms[0]].val_metrics)
        rows = []
        for epoch in range(epochs):
            rows.append(
                [epoch]
                + [round(result.reports[a].val_metrics[epoch], 4) for a in algorithms]
            )
        print_table(
            ["Epoch"] + [a for a in algorithms],
            rows,
            title=f"Fig. 10 ({workload}): validation {result.metric_name} per epoch",
        )
        finals = ", ".join(
            f"{a}={result.final(a):.4f}" for a in algorithms
        )
        print(f"final: {finals}\n")


if __name__ == "__main__":
    main()
