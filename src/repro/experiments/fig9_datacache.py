"""Fig. 9: training iteration time without vs with DataCache.

Single V100, ResNet-50, 96×96 input (paper caption).  Two views:

* the calibrated iteration model's Naive vs DataCache bars (I/O +
  everything else), reproducing the paper's ">10× I/O reduction, ~2×
  end-to-end" claim;
* a *functional* run of the real multi-level cache on a small synthetic
  dataset, showing the epoch-1 (NFS + decode) → epoch-2 (memory) virtual
  time collapse and the hit counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.cache import DataCache
from repro.data.dataset import SyntheticImageDataset
from repro.data.loader import CachedDataLoader
from repro.perf.calibration import CALIBRATION, Calibration
from repro.perf.iteration_model import io_visible_time
from repro.utils.seeding import new_rng
from repro.utils.tables import print_table

RESOLUTION = 96
LOCAL_BATCH = 256


@dataclass(frozen=True)
class Fig9Bar:
    """One bar of Fig. 9: visible I/O and everything else."""

    label: str
    io_seconds: float
    other_seconds: float

    @property
    def total(self) -> float:
        return self.io_seconds + self.other_seconds


@dataclass(frozen=True)
class FunctionalCacheRun:
    """Measured virtual epoch times of the real DataCache."""

    epoch1_io: float
    epoch2_io: float
    memory_hits: int
    nfs_reads: int

    @property
    def speedup(self) -> float:
        if self.epoch2_io == 0:
            return float("inf")
        return self.epoch1_io / self.epoch2_io


def run_model(*, cal: Calibration = CALIBRATION) -> list[Fig9Bar]:
    """The calibrated single-GPU bars (Fig. 9's actual content)."""
    from repro.models.profiles import resnet50_profile

    profile = resnet50_profile()
    t_compute = LOCAL_BATCH / profile.single_gpu_throughput(RESOLUTION)
    # "Others": FF&BP plus the update step; on one GPU there is no
    # gradient communication.
    others = t_compute + cal.sync_overhead
    naive_io = io_visible_time(
        RESOLUTION, LOCAL_BATCH, t_compute,
        cached=False, workers=cal.pipeline_workers_single, cal=cal,
    )
    cached_io = io_visible_time(
        RESOLUTION, LOCAL_BATCH, t_compute,
        cached=True, workers=cal.pipeline_workers_single, cal=cal,
    )
    return [
        Fig9Bar("Naive", naive_io, others),
        Fig9Bar("DataCache", cached_io, others),
    ]


def run_functional(
    *, num_samples: int = 96, batch_size: int = 16, seed: int = 0
) -> FunctionalCacheRun:
    """Drive the real cache for two epochs and compare virtual I/O."""
    dataset = SyntheticImageDataset(num_samples, resolution=32, num_classes=4, seed=seed)
    cache = DataCache(dataset)
    loader = CachedDataLoader(
        cache, batch_size, pipelined=False, seed=seed
    )
    rng = new_rng(seed + 1)
    epoch1 = loader.run_epoch(0, rng=rng)
    epoch2 = loader.run_epoch(1, rng=rng)
    return FunctionalCacheRun(
        epoch1_io=epoch1.io_seconds,
        epoch2_io=epoch2.io_seconds,
        memory_hits=cache.stats.memory_hits,
        nfs_reads=cache.stats.nfs_reads,
    )


def main() -> None:
    bars = run_model()
    print_table(
        ["Scheme", "I/O (s)", "Others (s)", "Total (s)"],
        [[b.label, round(b.io_seconds, 4), round(b.other_seconds, 4), round(b.total, 4)]
         for b in bars],
        title=f"Fig. 9: iteration time w/o and w/ DataCache (1 V100, ResNet-50 {RESOLUTION}x{RESOLUTION})",
    )
    naive, cached = bars
    print(f"I/O reduction: {naive.io_seconds / max(cached.io_seconds, 1e-9):.1f}x, "
          f"end-to-end speedup: {naive.total / cached.total:.2f}x\n")

    functional = run_functional()
    print("Functional cache run (virtual time):")
    print(f"  epoch 1 I/O: {functional.epoch1_io:.4f}s  (NFS reads: {functional.nfs_reads})")
    print(f"  epoch 2 I/O: {functional.epoch2_io:.4f}s  (memory hits: {functional.memory_hits})")
    print(f"  epoch-over-epoch I/O speedup: {functional.speedup:.1f}x")


if __name__ == "__main__":
    main()
