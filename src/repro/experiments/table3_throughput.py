"""Table 3: system throughput and scaling efficiency (128 GPUs)."""

from __future__ import annotations

from repro.perf.throughput import PAPER_TABLE3, ThroughputRow, table3_rows
from repro.utils.tables import print_table


def run() -> list[ThroughputRow]:
    return table3_rows()


def main() -> None:
    rows = run()
    table = []
    for r in rows:
        paper_t, paper_se = PAPER_TABLE3[r.workload][r.scheme]
        table.append(
            [
                r.workload,
                r.scheme,
                round(r.throughput),
                round(paper_t),
                round(100 * r.scaling_efficiency, 1),
                paper_se,
            ]
        )
    print_table(
        ["Model", "Scheme", "Throughput", "paper", "SE %", "paper"],
        table,
        title="Table 3: throughput (samples/s) and scaling efficiency, 128 V100s, 25GbE",
    )


if __name__ == "__main__":
    main()
