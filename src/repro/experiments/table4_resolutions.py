"""Table 4: DAWNBench-schedule throughput per input resolution."""

from __future__ import annotations

from repro.perf.dawnbench import PAPER_TABLE4, DawnbenchSimulator, PhaseResult


def run() -> list[PhaseResult]:
    sim = DawnbenchSimulator()
    return [sim.phase_result(p) for p in sim.schedule.phases]


def main() -> None:
    from repro.utils.tables import print_table

    rows = []
    for r in run():
        res = r.phase.resolution
        paper_single, paper_sys, paper_se = PAPER_TABLE4[res]
        rows.append(
            [
                r.phase.epochs,
                f"{res}x{res}",
                r.phase.local_batch,
                round(r.single_gpu_throughput),
                round(paper_single),
                round(r.system_throughput),
                round(paper_sys),
                round(100 * r.scaling_efficiency, 1),
                paper_se,
            ]
        )
    print_table(
        ["Epochs", "Input", "BS", "1-GPU", "paper", "128-GPU", "paper", "SE %", "paper"],
        rows,
        title="Table 4: system throughput (samples/s) per input resolution",
    )


if __name__ == "__main__":
    main()
