"""Fig. 7: gradient aggregation time of four schemes on 16×8 V100s.

NaiveAG (flat sparse All-Gather), TreeAR (NCCL double binary tree),
2DTAR (2D-torus) and HiTopKComm, over tensor sizes 1M–256M elements with
FP16 wire format and ρ = 0.01 for the sparse schemes (paper caption).
The ordering to reproduce: NaiveAG ≫ TreeAR > 2DTAR ≫ HiTopKComm, with
NaiveAG worst at scale despite moving less raw data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cloud_presets import paper_testbed
from repro.cluster.network import NetworkModel
from repro.comm.dense import Torus2DAllReduce, TreeAllReduce
from repro.comm.hitopkcomm import HiTopKComm
from repro.comm.naive_allgather import NaiveAllGather
from repro.utils.tables import print_table

SMALL_SIZES = (1_000_000, 2_500_000, 5_000_000, 10_000_000, 15_000_000)
LARGE_SIZES = (50_000_000, 100_000_000, 150_000_000, 200_000_000, 250_000_000)

DENSITY = 0.01  # "we use the density ρ = 0.01"
WIRE_BYTES = 2  # "we use the 16-bit floating point (FP16) for each element"


@dataclass(frozen=True)
class AggregationPoint:
    scheme: str
    d: int
    seconds: float


def make_schemes(network: NetworkModel):
    """The four Fig. 7 schemes with the paper's wire formats."""
    return (
        NaiveAllGather(
            network,
            density=DENSITY,
            value_bytes=WIRE_BYTES,
            index_bytes=4,
            error_feedback=False,
        ),
        TreeAllReduce(network, wire_bytes=WIRE_BYTES),
        Torus2DAllReduce(network, wire_bytes=WIRE_BYTES),
        HiTopKComm(
            network,
            density=DENSITY,
            value_bytes=WIRE_BYTES,
            index_bytes=4,
            dense_wire_bytes=WIRE_BYTES,
            error_feedback=False,
        ),
    )


def run(
    sizes: tuple[int, ...] = SMALL_SIZES + LARGE_SIZES,
    network: NetworkModel | None = None,
) -> list[AggregationPoint]:
    network = network if network is not None else paper_testbed()
    schemes = make_schemes(network)
    points: list[AggregationPoint] = []
    for d in sizes:
        for scheme in schemes:
            points.append(
                AggregationPoint(scheme.name, d, scheme.time_model(d).total)
            )
    return points


def main() -> None:
    points = run()
    by_size: dict[int, dict[str, float]] = {}
    for p in points:
        by_size.setdefault(p.d, {})[p.scheme] = p.seconds
    scheme_names = ["NaiveAG", "TreeAR", "2DTAR", "HiTopKComm"]
    rows = [
        [f"{d / 1e6:g}M"] + [round(by_size[d][s], 4) for s in scheme_names]
        for d in sorted(by_size)
    ]
    print_table(
        ["Elements"] + scheme_names,
        rows,
        title=(
            "Fig. 7: data aggregation time (s), 16 nodes x 8 V100, 25GbE, "
            f"FP16, rho={DENSITY}"
        ),
    )


if __name__ == "__main__":
    main()
