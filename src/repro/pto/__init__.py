"""PTO — parallel tensor operators (paper §4.2).

After gradient aggregation every GPU holds the same gradients and
weights, so post-aggregation computations (LARS/LAMB learning rates,
norm clipping, ...) are traditionally replicated ``P`` times.  PTO
partitions such a computation across the GPUs (Eq. 13) and re-assembles
the results with an All-Gather (Eq. 14), trading ``P``-fold compute for
one cheap collective.
"""

from repro.pto.operator import PTOCostModel, PTOResult, ParallelTensorOperator
from repro.pto.lars_pto import lamb_trust_ratios_pto, lars_learning_rates_pto

__all__ = [
    "ParallelTensorOperator",
    "PTOResult",
    "PTOCostModel",
    "lars_learning_rates_pto",
    "lamb_trust_ratios_pto",
]
