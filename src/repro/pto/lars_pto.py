"""PTO applied to LARS / LAMB learning-rate computation (§4.2).

"We partition the workload in terms of the layer for different GPUs ...
Finally, the layer-wise learning rates on the GPUs are all-gathered,
which is with very low communication traffic as each layer's learning
rate is a scalar."
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cluster.network import NetworkModel
from repro.optim.lars import lars_coefficient
from repro.pto.operator import ParallelTensorOperator, PTOResult


def lars_learning_rates_pto(
    network: NetworkModel,
    weights: Sequence[np.ndarray],
    grads: Sequence[np.ndarray],
    *,
    eta: float,
    trust_coefficient: float = 0.001,
    weight_decay: float = 1e-4,
    balanced: bool = False,
) -> PTOResult:
    """Layer-wise LARS rates (paper Eq. 11) computed with PTO.

    Returns a :class:`PTOResult` whose ``result`` is the per-layer
    learning-rate vector, identical on every worker and equal to the
    serial computation (tested).
    """
    if len(weights) != len(grads):
        raise ValueError(
            f"weights ({len(weights)}) and grads ({len(grads)}) must align"
        )
    layers = list(zip(weights, grads))
    sizes = [np.asarray(w).size for w in weights]

    def op(layer: tuple[np.ndarray, np.ndarray]) -> float:
        w, g = layer
        return lars_coefficient(
            w,
            g,
            eta=eta,
            trust_coefficient=trust_coefficient,
            weight_decay=weight_decay,
        )

    pto = ParallelTensorOperator(network, op, balanced=balanced)
    return pto.run(layers, layer_sizes=sizes)


def lamb_trust_ratios_pto(
    network: NetworkModel,
    weights: Sequence[np.ndarray],
    updates: Sequence[np.ndarray],
    *,
    balanced: bool = False,
) -> PTOResult:
    """LAMB trust ratios ``||w|| / ||update||`` computed with PTO.

    "It would be similar to handle the case of LAMB using PTO" (§4.2).
    """
    if len(weights) != len(updates):
        raise ValueError(
            f"weights ({len(weights)}) and updates ({len(updates)}) must align"
        )
    layers = list(zip(weights, updates))
    sizes = [np.asarray(w).size for w in weights]

    def op(layer: tuple[np.ndarray, np.ndarray]) -> float:
        w, u = layer
        w_norm = float(np.linalg.norm(w))
        u_norm = float(np.linalg.norm(u))
        if w_norm == 0.0 or u_norm == 0.0:
            return 1.0
        return w_norm / u_norm

    pto = ParallelTensorOperator(network, op, balanced=balanced)
    return pto.run(layers, layer_sizes=sizes)


__all__ = ["lars_learning_rates_pto", "lamb_trust_ratios_pto"]
