"""The generic parallel tensor operator (paper §4.2, Eqs. 12–14).

For an operation ``r = OP(g)`` whose input ``g`` is replicated on all
``P`` workers and whose output is identical everywhere, PTO partitions
``g`` into ``P`` pieces, has worker ``p`` compute ``r[p] = OP(g[p])``
(Eq. 13), and re-assembles ``r = All-Gather(r[p])`` (Eq. 14).

"if the time cost of the All-Gather operation is smaller than the time
reduction of computing, PTO can accelerate the computation" — the
:class:`PTOCostModel` captures exactly that trade-off, calibrated to the
paper's §5.4 measurements (LARS on ResNet-50: 11 ms → 7 ms; on
Transformer: 30 ms → 14 ms, both ≈ 2× on 128 GPUs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.cluster.network import NetworkModel
from repro.utils.partition import partition_layers, partition_layers_balanced


@dataclass
class PTOResult:
    """Functional output of a PTO execution."""

    outputs: list[np.ndarray]  # per-worker copy of the assembled result
    per_worker_pieces: list[np.ndarray]  # what each worker computed locally
    assignment: list[list[int]]  # layer indices per worker

    @property
    def result(self) -> np.ndarray:
        return self.outputs[0]


class ParallelTensorOperator:
    """Partition a per-layer computation across the cluster's workers.

    Parameters
    ----------
    network:
        Cluster model; supplies ``P`` and the All-Gather cost.
    op:
        The per-layer function; receives one layer's payload and returns
        a scalar or small array.
    balanced:
        Use size-balanced layer assignment instead of the paper's
        contiguous split (ablation knob).
    """

    def __init__(
        self,
        network: NetworkModel,
        op: Callable[[object], np.ndarray | float],
        *,
        balanced: bool = False,
    ) -> None:
        self.network = network
        self.op = op
        self.balanced = balanced

    def run_serial(self, layers: Sequence[object]) -> np.ndarray:
        """Reference execution: every layer computed in order (Eq. 12)."""
        return np.asarray([np.asarray(self.op(layer)) for layer in layers]).ravel()

    def run(self, layers: Sequence[object], layer_sizes: Sequence[int] | None = None) -> PTOResult:
        """Partitioned execution (Eqs. 13–14) over ``P`` virtual workers."""
        p = self.network.world_size
        if layer_sizes is None:
            layer_sizes = [1] * len(layers)
        if len(layer_sizes) != len(layers):
            raise ValueError("layer_sizes must align with layers")
        split = partition_layers_balanced if self.balanced else partition_layers
        assignment = split(list(layer_sizes), p)

        pieces: list[np.ndarray] = []
        for worker_layers in assignment:
            piece = np.asarray(
                [np.asarray(self.op(layers[i])) for i in worker_layers]
            ).ravel()
            pieces.append(piece)

        # All-Gather (Eq. 14): reassemble in layer order.  With the
        # contiguous split, concatenating worker pieces already yields
        # layer order; the balanced split needs a permutation.
        flat_order = [i for worker_layers in assignment for i in worker_layers]
        gathered = np.concatenate([p_ for p_ in pieces if p_.size > 0])
        result = np.empty_like(gathered)
        result[np.asarray(flat_order, dtype=np.int64)] = gathered
        return PTOResult(
            outputs=[result.copy() for _ in range(p)],
            per_worker_pieces=pieces,
            assignment=assignment,
        )


@dataclass(frozen=True)
class PTOCostModel:
    """Virtual-time model of serial vs PTO execution of a layer-wise op.

    The serial cost is dominated by per-layer kernel-dispatch overhead
    (each LARS layer launches ~8 small kernels through the framework at
    ~9 µs apiece — norms, divisions, scalings) plus a memory-bound term
    over the parameter bytes.  The PTO cost replaces ``L`` layers with
    ``ceil(L / P)`` per worker, but pays a small per-layer result-gather
    overhead — the paper's measured 11→7 ms / 30→14 ms (§5.4) implies the
    gather path costs ~35 µs per layer on their 128-GPU Horovod setup,
    which is what bounds PTO's speedup to ~2× rather than ~P×.
    """

    kernels_per_layer: float = 8.0
    op_overhead: float = 9e-6  # seconds per small kernel through the framework
    memory_bandwidth: float = 800e9  # bytes/s effective for the norm reductions
    gather_overhead_per_layer: float = 45e-6  # seconds per gathered result

    def serial_time(self, layer_sizes: Sequence[int], bytes_per_element: int = 4) -> float:
        n_layers = len(layer_sizes)
        total_bytes = sum(layer_sizes) * bytes_per_element
        launch = n_layers * self.kernels_per_layer * self.op_overhead
        # Each norm reads the layer twice (weights and gradients).
        return launch + 2.0 * total_bytes / self.memory_bandwidth

    def pto_time(
        self,
        layer_sizes: Sequence[int],
        network: NetworkModel,
        bytes_per_element: int = 4,
    ) -> float:
        p = network.world_size
        n_layers = len(layer_sizes)
        assignment = partition_layers(list(layer_sizes), p)
        # The slowest worker bounds the compute phase.
        worst_layers = max((len(a) for a in assignment), default=0)
        worst_bytes = max(
            (sum(layer_sizes[i] for i in a) for a in assignment), default=0
        ) * bytes_per_element
        compute = (
            worst_layers * self.kernels_per_layer * self.op_overhead
            + 2.0 * worst_bytes / self.memory_bandwidth
        )
        # All-Gather of the per-layer scalars across nodes: latency-bound.
        allgather = network.inter.alpha * math.log2(max(2, network.num_nodes))
        gather = n_layers * self.gather_overhead_per_layer
        return compute + allgather + gather

    def speedup(self, layer_sizes: Sequence[int], network: NetworkModel) -> float:
        return self.serial_time(layer_sizes) / self.pto_time(layer_sizes, network)

    def worthwhile(self, layer_sizes: Sequence[int], network: NetworkModel) -> bool:
        """The paper's adoption criterion: PTO wins iff gather < compute saved."""
        return self.pto_time(layer_sizes, network) < self.serial_time(layer_sizes)


__all__ = ["ParallelTensorOperator", "PTOResult", "PTOCostModel"]
