"""Momentum SGD over named parameter dictionaries.

Parameters and gradients are ``dict[str, np.ndarray]``; the optimizer
mutates parameters in place (like framework optimizers) and keeps its
momentum state keyed by parameter name.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np


class SGD:
    """Synchronous SGD with momentum and (decoupled) weight decay.

    Implements the update of paper Eq. (1) plus the standard momentum
    buffer:  ``v ← μ v + g + λ w``;  ``w ← w − η v``.
    """

    def __init__(
        self,
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0 <= momentum < 1:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: dict[str, np.ndarray] = {}

    def step(
        self,
        params: dict[str, np.ndarray],
        grads: Mapping[str, np.ndarray],
        *,
        lr: float | None = None,
    ) -> None:
        """Apply one update in place.  ``lr`` overrides the stored rate."""
        lr = self.lr if lr is None else lr
        for name, w in params.items():
            if name not in grads:
                raise KeyError(f"missing gradient for parameter {name!r}")
            g = np.asarray(grads[name])
            if g.shape != w.shape:
                raise ValueError(
                    f"gradient shape {g.shape} != parameter shape {w.shape} "
                    f"for {name!r}"
                )
            if self.weight_decay:
                g = g + self.weight_decay * w
            if self.momentum:
                v = self._velocity.get(name)
                if v is None:
                    v = np.zeros_like(w)
                v = self.momentum * v + g
                self._velocity[name] = v
                g = g + self.momentum * v if self.nesterov else v
            w -= lr * g

    def state_size(self) -> int:
        """Total momentum-state elements (for memory accounting)."""
        return sum(v.size for v in self._velocity.values())

    def reset(self) -> None:
        self._velocity.clear()


__all__ = ["SGD"]
