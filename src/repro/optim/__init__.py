"""Optimizers and learning-rate schedules.

Large-batch training (global batch 32K in the paper's §5.5) needs
layer-wise adaptive scaling to converge — LARS (You et al. 2018) for
CNNs, LAMB (You et al. 2020) for attention models.  Plain momentum SGD
is the within-layer update rule underneath both.
"""

from repro.optim.lars import LARS, lars_coefficient, lars_coefficients
from repro.optim.lamb import LAMB
from repro.optim.schedules import (
    LRSchedule,
    PolynomialDecay,
    ProgressiveResizeSchedule,
    ResolutionPhase,
    StepDecay,
    WarmupSchedule,
)
from repro.optim.sgd import SGD

__all__ = [
    "SGD",
    "LARS",
    "LAMB",
    "lars_coefficient",
    "lars_coefficients",
    "LRSchedule",
    "WarmupSchedule",
    "StepDecay",
    "PolynomialDecay",
    "ProgressiveResizeSchedule",
    "ResolutionPhase",
]
