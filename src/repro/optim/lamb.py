"""LAMB — layer-wise adaptive moments (You et al. 2020).

The paper cites LAMB as the large-batch optimizer for attention models
("LARS ... or LAMB is required to preserve the model generalization
ability", §2.2) and notes PTO applies to it the same way (§4.2).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np


class LAMB:
    """LAMB: Adam moments with a per-layer trust ratio."""

    def __init__(
        self,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-6,
        weight_decay: float = 0.01,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        beta1, beta2 = betas
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._step_count = 0

    def trust_ratio(self, weight: np.ndarray, update: np.ndarray) -> float:
        """The per-layer ||w|| / ||u|| ratio (what PTO parallelises)."""
        w_norm = float(np.linalg.norm(weight))
        u_norm = float(np.linalg.norm(update))
        if w_norm == 0.0 or u_norm == 0.0:
            return 1.0
        return w_norm / u_norm

    def step(
        self,
        params: dict[str, np.ndarray],
        grads: Mapping[str, np.ndarray],
        *,
        lr: float | None = None,
        precomputed_ratios: Mapping[str, float] | None = None,
    ) -> None:
        """One LAMB update in place."""
        lr = self.lr if lr is None else lr
        self._step_count += 1
        t = self._step_count
        for name, w in params.items():
            g = np.asarray(grads[name])
            if g.shape != w.shape:
                raise ValueError(
                    f"gradient shape {g.shape} != parameter shape {w.shape} for {name!r}"
                )
            m = self._m.get(name)
            v = self._v.get(name)
            if m is None:
                m = np.zeros_like(w)
                v = np.zeros_like(w)
            m = self.beta1 * m + (1 - self.beta1) * g
            v = self.beta2 * v + (1 - self.beta2) * g * g
            self._m[name] = m
            self._v[name] = v
            m_hat = m / (1 - self.beta1**t)
            v_hat = v / (1 - self.beta2**t)
            update = m_hat / (np.sqrt(v_hat) + self.eps) + self.weight_decay * w
            if precomputed_ratios is not None and name in precomputed_ratios:
                ratio = precomputed_ratios[name]
            else:
                ratio = self.trust_ratio(w, update)
            w -= lr * ratio * update

    def updates(
        self, params: dict[str, np.ndarray], grads: Mapping[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        """The pre-trust-ratio update directions (input to PTO's ratios).

        Pure (does not advance optimizer state); mirrors what the real
        system hands to :func:`repro.pto.lamb_trust_ratios_pto`.
        """
        out: dict[str, np.ndarray] = {}
        t = self._step_count + 1
        for name, w in params.items():
            g = np.asarray(grads[name])
            m = self._m.get(name, np.zeros_like(w))
            v = self._v.get(name, np.zeros_like(w))
            m = self.beta1 * m + (1 - self.beta1) * g
            v = self.beta2 * v + (1 - self.beta2) * g * g
            m_hat = m / (1 - self.beta1**t)
            v_hat = v / (1 - self.beta2**t)
            out[name] = m_hat / (np.sqrt(v_hat) + self.eps) + self.weight_decay * w
        return out


__all__ = ["LAMB"]
