"""LARS — layer-wise adaptive rate scaling (You et al. 2018; paper Eq. 11).

The layer-wise learning rate is

    λ(l) = γ · η · ||w(l)|| / (||g(l)|| + ε ||w(l)||),

where γ is the trust coefficient, η the global rate and ε the weight
decay.  The paper's PTO (§4.2) parallelises exactly this computation;
:func:`lars_coefficient` is the per-layer kernel both the serial and the
PTO paths share, so their results are bit-identical.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.optim.sgd import SGD


def lars_coefficient(
    weight: np.ndarray,
    grad: np.ndarray,
    *,
    eta: float,
    trust_coefficient: float = 0.001,
    weight_decay: float = 1e-4,
) -> float:
    """The layer-wise learning rate λ(l) of paper Eq. (11)."""
    w_norm = float(np.linalg.norm(weight))
    g_norm = float(np.linalg.norm(grad))
    if w_norm == 0.0 or g_norm == 0.0:
        # Convention (also used by reference implementations): fall back
        # to the global rate when norms are degenerate (e.g. at init of
        # zero-initialised biases).
        return eta
    return trust_coefficient * eta * w_norm / (g_norm + weight_decay * w_norm)


def lars_coefficients(
    weights: Sequence[np.ndarray],
    grads: Sequence[np.ndarray],
    *,
    eta: float,
    trust_coefficient: float = 0.001,
    weight_decay: float = 1e-4,
) -> np.ndarray:
    """Vector of λ(l) for all layers (the serial reference for PTO)."""
    if len(weights) != len(grads):
        raise ValueError(f"weights ({len(weights)}) and grads ({len(grads)}) must align")
    return np.asarray(
        [
            lars_coefficient(
                w,
                g,
                eta=eta,
                trust_coefficient=trust_coefficient,
                weight_decay=weight_decay,
            )
            for w, g in zip(weights, grads)
        ]
    )


class LARS:
    """LARS optimizer: per-layer trust ratio on top of momentum SGD.

    Biases and normalisation parameters are conventionally excluded from
    LARS scaling (they use the global rate); parameters whose name
    contains any of ``skip_keywords`` are excluded.
    """

    def __init__(
        self,
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 1e-4,
        trust_coefficient: float = 0.001,
        skip_keywords: tuple[str, ...] = ("bias", "bn", "norm"),
    ) -> None:
        self.lr = lr
        self.trust_coefficient = trust_coefficient
        self.weight_decay = weight_decay
        self.skip_keywords = skip_keywords
        self._sgd = SGD(lr=lr, momentum=momentum, weight_decay=weight_decay)

    def _scaled(self, name: str) -> bool:
        lowered = name.lower()
        return not any(kw in lowered for kw in self.skip_keywords)

    def learning_rates(
        self, params: dict[str, np.ndarray], grads: Mapping[str, np.ndarray], *,
        lr: float | None = None,
    ) -> dict[str, float]:
        """λ per parameter (global rate for skipped parameters)."""
        eta = self.lr if lr is None else lr
        rates: dict[str, float] = {}
        for name, w in params.items():
            if self._scaled(name):
                rates[name] = lars_coefficient(
                    w,
                    np.asarray(grads[name]),
                    eta=eta,
                    trust_coefficient=self.trust_coefficient,
                    weight_decay=self.weight_decay,
                )
            else:
                rates[name] = eta
        return rates

    def step(
        self,
        params: dict[str, np.ndarray],
        grads: Mapping[str, np.ndarray],
        *,
        lr: float | None = None,
        precomputed_rates: Mapping[str, float] | None = None,
    ) -> None:
        """One LARS update.  ``precomputed_rates`` lets the PTO path inject
        the all-gathered layer rates instead of recomputing them."""
        rates = (
            dict(precomputed_rates)
            if precomputed_rates is not None
            else self.learning_rates(params, grads, lr=lr)
        )
        for name, w in params.items():
            single = {name: w}
            self._sgd.step(single, {name: np.asarray(grads[name])}, lr=rates[name])


__all__ = ["LARS", "lars_coefficient", "lars_coefficients"]
