"""Learning-rate and input-resolution schedules.

Two schedule families matter for the reproduction:

* **Warmup + decay** — "the warmup process is necessary to preserve the
  model accuracy" (§5.6, citing Goyal et al. 2017);
* **Progressive resizing** — the DAWNBench recipe (§5.6): 13 epochs at
  96², 11 at 128², 3 at 224², 1 at 288² with halved batch size.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence


class LRSchedule(abc.ABC):
    """Learning rate as a function of (fractional) epoch."""

    @abc.abstractmethod
    def lr(self, epoch: float) -> float:
        ...

    def __call__(self, epoch: float) -> float:
        return self.lr(epoch)


@dataclass(frozen=True)
class WarmupSchedule(LRSchedule):
    """Linear warmup from ``initial`` to ``peak``, then delegate."""

    peak: float
    warmup_epochs: float
    after: LRSchedule | None = None
    initial: float = 0.0

    def lr(self, epoch: float) -> float:
        if epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {epoch}")
        if self.warmup_epochs > 0 and epoch < self.warmup_epochs:
            frac = epoch / self.warmup_epochs
            return self.initial + frac * (self.peak - self.initial)
        if self.after is None:
            return self.peak
        return self.after.lr(epoch - self.warmup_epochs)


@dataclass(frozen=True)
class StepDecay(LRSchedule):
    """Multiply by ``factor`` at each milestone epoch (ResNet recipe)."""

    base: float
    milestones: tuple[float, ...] = (30.0, 60.0, 80.0)
    factor: float = 0.1

    def lr(self, epoch: float) -> float:
        if epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {epoch}")
        rate = self.base
        for milestone in self.milestones:
            if epoch >= milestone:
                rate *= self.factor
        return rate


@dataclass(frozen=True)
class PolynomialDecay(LRSchedule):
    """``base * (1 - epoch/total)^power`` (the LARS-paper decay)."""

    base: float
    total_epochs: float
    power: float = 2.0
    floor: float = 0.0

    def lr(self, epoch: float) -> float:
        if epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {epoch}")
        frac = min(1.0, epoch / self.total_epochs)
        return self.floor + (self.base - self.floor) * (1.0 - frac) ** self.power


@dataclass(frozen=True)
class ResolutionPhase:
    """One phase of a progressive-resizing schedule (one Table 4 row)."""

    epochs: int
    resolution: int
    local_batch: int
    comm_scheme: str  # "mstopk" or "2dtar" — §5.6 switches mid-run

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {self.resolution}")
        if self.local_batch < 1:
            raise ValueError(f"local_batch must be >= 1, got {self.local_batch}")


@dataclass(frozen=True)
class ProgressiveResizeSchedule:
    """The DAWNBench 28-epoch recipe (§5.6, Table 4).

    "we use MSTopK-SGD to train the model in the first 13 epochs ...
    After that, we switch to use 2DTAR-SGD to balance the convergence
    speed and the system throughput."
    """

    phases: tuple[ResolutionPhase, ...]

    @property
    def total_epochs(self) -> int:
        return sum(p.epochs for p in self.phases)

    def phase_at(self, epoch: int) -> ResolutionPhase:
        if epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {epoch}")
        remaining = epoch
        for phase in self.phases:
            if remaining < phase.epochs:
                return phase
            remaining -= phase.epochs
        raise IndexError(
            f"epoch {epoch} beyond schedule of {self.total_epochs} epochs"
        )

    @staticmethod
    def dawnbench_28_epoch() -> "ProgressiveResizeSchedule":
        """The paper's record run schedule (Table 4)."""
        return ProgressiveResizeSchedule(
            phases=(
                ResolutionPhase(13, 96, 256, "mstopk"),
                ResolutionPhase(11, 128, 256, "2dtar"),
                ResolutionPhase(3, 224, 256, "2dtar"),
                ResolutionPhase(1, 288, 128, "2dtar"),
            )
        )


__all__ = [
    "LRSchedule",
    "WarmupSchedule",
    "StepDecay",
    "PolynomialDecay",
    "ResolutionPhase",
    "ProgressiveResizeSchedule",
]
