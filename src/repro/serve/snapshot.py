"""Double-buffered, CRC32-verified engine snapshots for ``repro serve``.

Snapshots bound recovery time: restart cost is *load newest good
snapshot + replay the journal tail*, not *replay everything since
genesis*.  The on-disk discipline is borrowed from the training
checkpoint format v3 (:mod:`repro.train.checkpoint`): an explicit
format version in the magic, CRC32 checksums verified **before** any
state is touched, a typed corrupt error
(:class:`SnapshotCorruptError` subclasses
:class:`~repro.train.checkpoint.CheckpointCorruptError`, so callers
that already handle corrupt checkpoints handle corrupt snapshots for
free), and double-buffered slots with fallback — exactly the
``rollback-a``/``rollback-b`` alternation the elastic trainer uses.

File layout (little-endian)::

    magic:   8 bytes  b"RPSNAP01"
    header:  u32 CRC32(meta || body) | u32 meta length | u64 body length
    meta:    canonical JSON (applied_seq, virtual now, counters, ...)
    body:    pickled engine state (one object graph, shared refs intact)

The store always writes into the slot **not** holding the newest good
snapshot, so a kill mid-write can only tear the *older* snapshot — the
newest good one survives by construction.  ``load()`` prefers the valid
slot with the highest ``applied_seq``, falls back to the other slot
when the first is corrupt, and returns ``None`` when neither is usable
(the caller then replays the journal from genesis).
"""

from __future__ import annotations

import json
import os
import pathlib
import pickle
import struct
import zlib
from dataclasses import dataclass

from repro.serve.journal import canonical_json
from repro.train.checkpoint import CheckpointCorruptError

#: Magic + format version; bump the trailing digits on layout changes.
SNAPSHOT_MAGIC = b"RPSNAP01"

_HEAD = struct.Struct("<IIQ")  # CRC32(meta||body), meta length, body length

#: The two slot file names, alternated between saves.
SLOT_NAMES = ("snap-a.bin", "snap-b.bin")


class SnapshotCorruptError(CheckpointCorruptError):
    """A snapshot file that fails its integrity checks."""


def write_snapshot(
    path: str | pathlib.Path,
    state: object,
    meta: dict,
    *,
    tear_after: int | float | None = None,
) -> dict:
    """Write one snapshot file; returns the meta actually written.

    ``tear_after`` (drill-only) persists just the first *n* bytes — or,
    as a float in (0, 1), that fraction of the blob — and stops: the
    exact artefact a kill mid-``write`` leaves in the slot, so recovery
    tests exercise the fallback path with real torn files.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta_bytes = canonical_json(meta).encode("utf-8")
    body = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    crc = zlib.crc32(meta_bytes + body)
    blob = SNAPSHOT_MAGIC + _HEAD.pack(crc, len(meta_bytes), len(body)) + meta_bytes + body
    if tear_after is not None:
        if isinstance(tear_after, float) and 0 < tear_after < 1:
            tear_after = int(len(blob) * tear_after)
        blob = blob[: max(1, min(int(tear_after), len(blob) - 1))]
    with open(path, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    return meta


def read_snapshot(path: str | pathlib.Path) -> tuple[dict, object]:
    """Verify and load ``(meta, state)``; raises :class:`SnapshotCorruptError`."""
    path = pathlib.Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise SnapshotCorruptError(f"snapshot {path} is unreadable: {exc}") from exc
    if not data.startswith(SNAPSHOT_MAGIC):
        raise SnapshotCorruptError(
            f"snapshot {path} has a bad or missing {SNAPSHOT_MAGIC!r} header"
        )
    head_end = len(SNAPSHOT_MAGIC) + _HEAD.size
    if len(data) < head_end:
        raise SnapshotCorruptError(f"snapshot {path} is truncated mid-header")
    crc, meta_len, body_len = _HEAD.unpack_from(data, len(SNAPSHOT_MAGIC))
    if len(data) != head_end + meta_len + body_len:
        raise SnapshotCorruptError(
            f"snapshot {path} is truncated: {len(data)} bytes, "
            f"expected {head_end + meta_len + body_len}"
        )
    meta_bytes = data[head_end : head_end + meta_len]
    body = data[head_end + meta_len :]
    if zlib.crc32(meta_bytes + body) != crc:
        raise SnapshotCorruptError(f"snapshot {path} failed its CRC32 check")
    try:
        meta = json.loads(meta_bytes.decode("utf-8"))
        state = pickle.loads(body)
    except Exception as exc:  # torn pickle / mangled JSON both land here
        raise SnapshotCorruptError(f"snapshot {path} failed to decode: {exc}") from exc
    return meta, state


@dataclass
class SnapshotLoad:
    """Result of :meth:`SnapshotStore.load`."""

    meta: dict
    state: object
    slot: str
    #: Slots that existed but failed verification before this one loaded.
    corrupt_slots: int = 0


class SnapshotStore:
    """The daemon's two snapshot slots under one state directory."""

    def __init__(self, state_dir: str | pathlib.Path) -> None:
        self.state_dir = pathlib.Path(state_dir)
        self.slots = tuple(self.state_dir / name for name in SLOT_NAMES)

    def _slot_seq(self, path: pathlib.Path) -> int | None:
        """``applied_seq`` of a slot's snapshot, or ``None`` if unusable."""
        if not path.exists():
            return None
        try:
            meta, _ = read_snapshot(path)
        except SnapshotCorruptError:
            return None
        return int(meta.get("applied_seq", 0))

    def target_slot(self) -> pathlib.Path:
        """The slot the next save must overwrite.

        Always the one *not* holding the newest good snapshot: a kill
        mid-write then tears only the stale slot, never the newest good
        state.  Missing or corrupt slots are overwritten first.
        """
        seqs = [self._slot_seq(path) for path in self.slots]
        if seqs[0] is None:
            return self.slots[0]
        if seqs[1] is None:
            return self.slots[1]
        return self.slots[0] if seqs[0] <= seqs[1] else self.slots[1]

    def save(
        self, state: object, meta: dict, *, tear_after: int | None = None
    ) -> pathlib.Path:
        path = self.target_slot()
        write_snapshot(path, state, meta, tear_after=tear_after)
        return path

    def load(self) -> SnapshotLoad | None:
        """The newest verifiable snapshot, falling back across slots.

        ``corrupt_slots`` on the result counts slot files that exist but
        failed verification — e.g. the newest snapshot torn mid-write —
        so recovery can log that it *fell back* rather than silently
        loading older state.
        """
        good: list[tuple[int, pathlib.Path]] = []
        corrupt = 0
        for path in self.slots:
            if not path.exists():
                continue
            seq = self._slot_seq(path)
            if seq is None:
                corrupt += 1
            else:
                good.append((seq, path))
        # Newest first; _slot_seq already verified, but a read can still
        # fail (e.g. the file changed underneath us) — fall through.
        for _, path in sorted(good, key=lambda c: -c[0]):
            try:
                meta, state = read_snapshot(path)
            except SnapshotCorruptError:
                corrupt += 1
                continue
            return SnapshotLoad(
                meta=meta, state=state, slot=path.name, corrupt_slots=corrupt
            )
        return None


__all__ = [
    "SNAPSHOT_MAGIC",
    "SLOT_NAMES",
    "SnapshotCorruptError",
    "SnapshotLoad",
    "SnapshotStore",
    "write_snapshot",
    "read_snapshot",
]
