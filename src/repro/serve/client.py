"""``repro submit``: the daemon's JSON-lines unix-socket client.

Transport policy lives here — connect retries with exponential backoff
plus seeded jitter, per-op socket timeouts, and a typed
:class:`SubmitError` when the budget runs out — so callers (the CLI,
the drills, tests) get one consistent at-least-once sender: resend
everything unacknowledged; the daemon's op-id dedup turns that into
exactly-once apply.
"""

from __future__ import annotations

import json
import pathlib
import random
import socket as socketlib

from repro.serve.journal import canonical_json


class SubmitError(ValueError):
    """The client could not deliver ops (a user-facing, exit-2 error)."""


def connect(
    socket_path: str | pathlib.Path,
    *,
    retries: int = 5,
    backoff: float = 0.05,
    timeout: float = 5.0,
    seed: int = 0,
) -> socketlib.socket:
    """Connect with exponential backoff + jitter; raises :class:`SubmitError`.

    Attempt *k* sleeps ``backoff * 2**k * (1 + U[0,1))`` — the classic
    decorrelation so a herd of clients retrying against a restarting
    daemon does not stampede it on the same schedule.
    """
    rng = random.Random(seed)
    last_error: Exception | None = None
    for attempt in range(max(1, retries)):
        sock = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        sock.settimeout(timeout)
        try:
            sock.connect(str(socket_path))
            return sock
        except OSError as exc:
            last_error = exc
            sock.close()
            if attempt + 1 < max(1, retries):
                delay = backoff * (2**attempt) * (1.0 + rng.random())
                import time

                time.sleep(delay)
    raise SubmitError(
        f"could not connect to daemon socket {socket_path} after "
        f"{max(1, retries)} attempt(s): {last_error}"
    )


def send_ops(
    socket_path: str | pathlib.Path,
    ops: list[dict],
    *,
    retries: int = 5,
    backoff: float = 0.05,
    timeout: float = 5.0,
    seed: int = 0,
) -> list[dict]:
    """Send ops, one JSON line each; returns the daemon's acks in order.

    A dropped connection mid-stream raises :class:`SubmitError` naming
    the first unacknowledged op, so the caller knows exactly where an
    at-least-once resend must restart.
    """
    sock = connect(
        socket_path, retries=retries, backoff=backoff, timeout=timeout, seed=seed
    )
    acks: list[dict] = []
    try:
        with sock, sock.makefile("rwb") as stream:
            for op in ops:
                stream.write((canonical_json(op) + "\n").encode("utf-8"))
                stream.flush()
                raw = stream.readline()
                if not raw:
                    raise SubmitError(
                        f"daemon closed the connection before acknowledging op "
                        f"{len(acks) + 1} of {len(ops)}"
                    )
                acks.append(json.loads(raw.decode("utf-8")))
    except OSError as exc:
        raise SubmitError(
            f"lost the daemon connection after {len(acks)} of {len(ops)} "
            f"ack(s): {exc}"
        ) from exc
    return acks


__all__ = ["SubmitError", "connect", "send_ops"]
