"""Kill-anywhere recovery drills for the ``repro serve`` daemon.

A :class:`RecoveryDrill` is the always-on analogue of the fault-drill
discipline used everywhere else in this repo: run the op stream once
*uninterrupted* and pin its final BENCH payload bytes; then, for each
seeded injection point (mid-tick, mid-snapshot, mid-journal-append),
run again with a kill plan, crash, **restart against the same state
directory**, resend every op the client never got an ack for, finish
the stream — and require the recovered payload to be *byte-identical*
to the uninterrupted one with **zero acknowledged submissions lost**.

The client model is deliberately at-least-once: after a crash it
resends from the first unacknowledged op.  The daemon's op-id dedup
(exactly-once apply) is what makes the resend safe, and the drill is
the continuous proof that the pair composes correctly.
"""

from __future__ import annotations

import dataclasses
import pathlib
import shutil
import time

from repro.serve.daemon import ServeRuntime, SimulatedCrash, parse_kill_spec
from repro.serve.journal import canonical_json

#: One injection point per kill-plan kind: crash the daemon mid-tick,
#: mid-snapshot-write, and mid-journal-append.
DEFAULT_POINTS = ("tick:2", "snapshot:1", "append:3")


def ops_from_trace(
    trace_path: str | pathlib.Path, *, limit: int | None = None
) -> list[dict]:
    """A deterministic op stream from a cluster trace.

    Jobs arrive in submit order; before each arrival the clock ticks to
    its arrival time, and the stream ends with a ``drain``.  Op ids are
    positional (1..N), so two loads of the same trace produce the same
    exactly-once stream.
    """
    from repro.sched.traces import load_trace, trace_to_specs

    specs = trace_to_specs(load_trace(trace_path))
    if limit is not None:
        specs = specs[:limit]
    ops: list[dict] = []
    for spec in sorted(specs, key=lambda s: (s.arrival_seconds, s.name)):
        if not ops or ops[-1].get("op") != "tick" or ops[-1]["until"] < spec.arrival_seconds:
            ops.append({"op": "tick", "until": spec.arrival_seconds})
        job = dataclasses.asdict(spec)
        ops.append({"op": "submit", "job": job})
    ops.append({"op": "drain"})
    for index, op in enumerate(ops):
        op["id"] = index + 1
    return ops


def ops_from_script(lines) -> list[dict]:
    """Parse a JSON-lines op script into a drill-ready op list with ids."""
    import json

    ops = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            ops.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"ops line {lineno}: invalid JSON: {exc}") from exc
    for index, op in enumerate(ops):
        op.setdefault("id", index + 1)
    return ops


@dataclasses.dataclass
class DrillOutcome:
    """One injection point's verdict."""

    point: str
    #: Ops acknowledged before the crash.
    acked_before_crash: int
    #: Ops resent by the at-least-once client after restart.
    resent: int
    #: Of the resent ops, how many the daemon deduplicated (already
    #: applied — journaled before the crash).
    deduplicated: int
    #: Acknowledged submissions missing from the recovered state (the
    #: durability contract says this is always 0).
    lost_acked: int
    #: Final payload bytes match the uninterrupted run.
    payload_match: bool
    #: Recovery wall time (repair + snapshot load + replay), seconds.
    recovery_s: float
    replayed: int
    torn_bytes_dropped: int
    snapshot_slot: str | None


class RecoveryDrill:
    """Run an op stream with crashes at seeded points; verify recovery."""

    def __init__(
        self,
        config,
        ops: list[dict],
        *,
        work_dir: str | pathlib.Path,
        points: tuple = DEFAULT_POINTS,
    ) -> None:
        for point in points:
            parse_kill_spec(point)  # fail fast on junk specs
        self.config = config
        self.ops = ops
        self.work_dir = pathlib.Path(work_dir)
        self.points = tuple(points)
        self.reference_payload: dict | None = None
        self.reference_bytes: bytes | None = None

    def _finalize(self, runtime: ServeRuntime) -> bytes:
        payload = runtime.finalize()
        runtime.close()
        return canonical_json(payload).encode("utf-8")

    def run_reference(self) -> dict:
        """The uninterrupted run whose payload bytes every drill must hit."""
        state_dir = self.work_dir / "reference"
        shutil.rmtree(state_dir, ignore_errors=True)
        runtime = ServeRuntime(self.config, state_dir)
        acked_jobs = []
        for op in self.ops:
            ack = runtime.handle(op)
            if not ack.get("ok"):
                raise ValueError(
                    f"reference run rejected op {op.get('id')}: {ack.get('error')}"
                )
            if op.get("op") == "submit":
                acked_jobs.append(op["job"]["name"])
        payload = runtime.finalize()
        self.reference_bytes = canonical_json(payload).encode("utf-8")
        self.reference_payload = payload
        runtime.close()
        self._acked_job_names = acked_jobs
        return payload

    def run_point(self, point: str) -> DrillOutcome:
        """Crash at one injection point, restart, resend, compare bytes."""
        if self.reference_bytes is None:
            self.run_reference()
        state_dir = self.work_dir / point.replace(":", "-")
        shutil.rmtree(state_dir, ignore_errors=True)
        runtime = ServeRuntime(self.config, state_dir, kill_plan=point)
        acked = 0
        acked_submits: list[str] = []
        crashed = False
        for op in self.ops:
            try:
                ack = runtime.handle(op)
            except SimulatedCrash:
                crashed = True
                break
            if not ack.get("ok"):
                raise ValueError(
                    f"drill {point}: op {op.get('id')} rejected: {ack.get('error')}"
                )
            acked += 1
            if op.get("op") == "submit":
                acked_submits.append(op["job"]["name"])
        if not crashed:
            raise ValueError(
                f"drill {point}: the op stream finished before the injection "
                "point fired — use a longer stream or an earlier point"
            )
        runtime.close()

        # Restart against the same state dir: repair + snapshot + replay.
        t0 = time.perf_counter()
        recovered = ServeRuntime(self.config, state_dir)
        recovery_s = time.perf_counter() - t0
        # At-least-once client: resend everything not acknowledged.
        resent = 0
        deduplicated = 0
        for op in self.ops[acked:]:
            ack = recovered.handle(op)
            resent += 1
            if ack.get("duplicate"):
                deduplicated += 1
            elif not ack.get("ok"):
                raise ValueError(
                    f"drill {point}: resent op {op.get('id')} rejected: "
                    f"{ack.get('error')}"
                )
        # Every acknowledged submission must exist in recovered state.
        lost = sum(
            1
            for name in acked_submits
            if name not in recovered.engine.records
        )
        final_bytes = self._finalize(recovered)
        return DrillOutcome(
            point=point,
            acked_before_crash=acked,
            resent=resent,
            deduplicated=deduplicated,
            lost_acked=lost,
            payload_match=final_bytes == self.reference_bytes,
            recovery_s=recovery_s,
            replayed=recovered.recovery["replayed"],
            torn_bytes_dropped=recovered.recovery["torn_bytes_dropped"],
            snapshot_slot=recovered.recovery["snapshot_slot"],
        )

    def run(self) -> dict:
        """Reference + every injection point; returns the drill report."""
        self.run_reference()
        outcomes = [self.run_point(point) for point in self.points]
        return {
            "points": [dataclasses.asdict(o) for o in outcomes],
            "all_match": all(o.payload_match for o in outcomes),
            "lost_acked_total": sum(o.lost_acked for o in outcomes),
            "max_recovery_s": max(o.recovery_s for o in outcomes),
            "ops": len(self.ops),
            "reference_digest": (
                self.reference_payload["meta"]["serve"]["digest"]
                if self.reference_payload
                else None
            ),
        }


__all__ = [
    "DEFAULT_POINTS",
    "DrillOutcome",
    "RecoveryDrill",
    "ops_from_script",
    "ops_from_trace",
]
