"""The ``repro serve`` daemon runtime: durability around the engine.

:class:`ServeRuntime` wraps one :class:`~repro.serve.engine.ServeEngine`
with the crash-safety contract:

1. **WAL before apply** — every mutating op is appended to the
   CRC-framed journal (fsynced) *before* the engine applies it, and only
   then acknowledged.  An acknowledged op therefore survives any kill.
2. **Audit after apply** — each applied op's acknowledgement and the
   engine's post-apply state digest are appended as an *audit* record.
   Audits are never needed to recover (the inputs alone rebuild the
   state) but they are *verified* during replay: a digest mismatch means
   the engine stopped being deterministic, which is a real bug and
   fails recovery loudly rather than silently diverging.
3. **Snapshot every N ops** — double-buffered slots
   (:class:`~repro.serve.snapshot.SnapshotStore`) bound replay length;
   a corrupt newest slot falls back to the other slot, then to
   journal-only replay from genesis.

Recovery on construction is: repair the torn journal tail → load the
newest good snapshot → replay input records past its ``applied_seq``,
checking audit digests → append a ``recovered`` note.  The whole
procedure is exercised continuously by the kill-anywhere drills
(:mod:`repro.serve.drill`), which crash the runtime at seeded injection
points — mid-tick, mid-snapshot, mid-journal-append — via ``kill_plan``.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import socket as socketlib
import time
from typing import Iterable

from repro.serve.engine import ServeEngine
from repro.serve.journal import Journal, canonical_json, repair_journal
from repro.serve.snapshot import SnapshotStore

#: Op kinds that mutate state and therefore get journaled.
MUTATING_OPS = ("submit", "tick", "drain", "snapshot", "stop")
#: Read-only op kinds, answered from live state without journaling.
READONLY_OPS = ("status", "payload")

#: Injection-point kinds accepted by ``--kill-at`` / kill plans.
KILL_POINTS = ("tick", "snapshot", "append")


class SimulatedCrash(Exception):
    """Raised (kill_mode="raise") when a kill-plan injection point fires.

    In-process drills catch this where a real crash would have killed
    the interpreter; ``kill_mode="sigkill"`` sends an actual ``SIGKILL``
    instead, for subprocess drills (the CI ``serve-smoke`` job).
    """


def parse_kill_spec(spec: str) -> tuple[str, int]:
    """``"tick:2"`` -> ``("tick", 2)``; raises ``ValueError`` on junk."""
    point, _, count = spec.partition(":")
    if point not in KILL_POINTS or not count.isdigit() or int(count) < 1:
        raise ValueError(
            f"bad kill point {spec!r}; expected <kind>:<n> with kind one of "
            f"{', '.join(KILL_POINTS)} and n >= 1"
        )
    return point, int(count)


class ServeRuntime:
    """One daemon process: engine + journal + snapshots + recovery."""

    def __init__(
        self,
        config,
        state_dir: str | pathlib.Path,
        *,
        kill_plan: str | None = None,
        kill_mode: str = "raise",
    ) -> None:
        self.config = config
        self.state_dir = pathlib.Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.state_dir / "journal.bin"
        self.store = SnapshotStore(self.state_dir)
        self._kill = parse_kill_spec(kill_plan) if kill_plan else None
        if kill_mode not in ("raise", "sigkill"):
            raise ValueError(f"kill_mode must be 'raise' or 'sigkill', got {kill_mode!r}")
        self.kill_mode = kill_mode
        # Occurrence counters the kill plan indexes into.
        self._input_no = 0
        self._tick_no = 0
        self._snapshot_no = 0
        self._ops_since_snapshot = 0
        self.stopped = False
        self.drain_requested = False
        self.recovery = {
            "recovered": False,
            "snapshot_slot": None,
            "snapshot_seq": 0,
            "corrupt_snapshots": 0,
            "replayed": 0,
            "torn_bytes_dropped": 0,
            "recovery_s": 0.0,
        }
        t0 = time.perf_counter()
        self._applied_seq = 0
        self._next_seq = 1
        if self.journal_path.exists():
            self._recover()
        else:
            self.engine = ServeEngine(config)
        self.journal = Journal(self.journal_path)
        self.recovery["recovery_s"] = time.perf_counter() - t0
        if self.recovery["recovered"]:
            self._note(
                event="recovered",
                replayed=self.recovery["replayed"],
                torn_bytes_dropped=self.recovery["torn_bytes_dropped"],
                snapshot_slot=self.recovery["snapshot_slot"],
                corrupt_snapshots=self.recovery["corrupt_snapshots"],
                digest=self.engine.state_digest(),
            )

    # -- recovery -------------------------------------------------------------
    def _recover(self) -> None:
        scan = repair_journal(self.journal_path)
        self.recovery["torn_bytes_dropped"] = scan.torn_bytes
        loaded = self.store.load()
        if loaded is not None:
            self.engine = ServeEngine.from_snapshot_state(self.config, loaded.state)
            self._applied_seq = int(loaded.meta.get("applied_seq", 0))
            self.recovery["snapshot_slot"] = loaded.slot
            self.recovery["snapshot_seq"] = self._applied_seq
            self.recovery["corrupt_snapshots"] = loaded.corrupt_slots
        else:
            self.engine = ServeEngine(self.config)
        audits = {
            r.get("of"): r for r in scan.records if r.get("kind") == "audit"
        }
        for record in scan.records:
            if record.get("kind") != "input":
                continue
            seq = record.get("seq", 0)
            if seq <= self._applied_seq:
                continue
            ack = self.engine.apply_op(record["op"])
            self._applied_seq = seq
            self.recovery["replayed"] += 1
            audit = audits.get(seq)
            if audit is None:
                continue  # crashed between input append and audit append
            digest = self.engine.state_digest()
            if audit.get("digest") != digest:
                raise RuntimeError(
                    f"journal replay diverged at seq {seq}: state digest "
                    f"{digest} != journaled {audit.get('digest')} — the engine "
                    "is no longer deterministic in its inputs"
                )
            if audit.get("ack") != ack:
                raise RuntimeError(
                    f"journal replay diverged at seq {seq}: ack {ack} != "
                    f"journaled {audit.get('ack')}"
                )
        self._next_seq = scan.last_seq + 1
        self.recovery["recovered"] = bool(scan.records) or loaded is not None

    # -- the one front door ---------------------------------------------------
    def handle(self, op: dict) -> dict:
        """Journal, apply, audit, snapshot; returns the acknowledgement.

        User-level problems (malformed op, unknown kind, rejected
        submission) come back as ``{"ok": False, "error": ...}`` acks;
        malformed *framing* (op not an object, bad id type) raises
        ``ValueError`` for the caller to turn into a transport error.
        """
        if not isinstance(op, dict):
            raise ValueError(
                f"each op must be a JSON object, got {type(op).__name__}"
            )
        kind = op.get("op")
        if kind in READONLY_OPS:
            if kind == "status":
                return {"ok": True, "op": "status", **self.status()}
            return {
                "ok": True,
                "op": "payload",
                "payload": self.engine.payload(
                    bench=f"serve_{self.config.name}"
                ),
            }
        if not isinstance(kind, str) or kind not in MUTATING_OPS:
            raise ValueError(
                f"unknown op {kind!r}; accepted: "
                f"{', '.join(MUTATING_OPS + READONLY_OPS)}"
            )
        op_id = op.get("id")
        if op_id is None:
            op = {**op, "id": self.engine.last_op_id + 1}
        elif not isinstance(op_id, int) or isinstance(op_id, bool) or op_id < 1:
            raise ValueError(f"op 'id' must be a positive integer, got {op_id!r}")
        elif op_id <= self.engine.last_op_id:
            # Exactly-once apply: this id was already consumed (the
            # at-least-once client resent after losing our ack).
            return {"ok": True, "id": op_id, "duplicate": True}

        seq = self._next_seq
        record = {"kind": "input", "seq": seq, "op": op}
        self._input_no += 1
        if self._kill == ("append", self._input_no):
            # Die mid-append: persist a deliberately torn frame — the op
            # is NOT acknowledged, so losing it loses nothing promised.
            self.journal.append_torn(record)
            self._crash(f"append:{self._input_no}")
        self.journal.append(record)
        self._next_seq += 1
        if kind in ("tick", "drain"):
            self._tick_no += 1
            if self._kill == ("tick", self._tick_no):
                # Die mid-tick: journaled but not applied, not acked.
                self._crash(f"tick:{self._tick_no}")
        ack = self.engine.apply_op(op)
        self._applied_seq = seq
        self._audit(seq, ack)
        self._ops_since_snapshot += 1
        if (kind == "snapshot" and ack.get("ok")) or (
            self._ops_since_snapshot >= self.config.snapshot_every
        ):
            self.take_snapshot()
        if kind == "stop" and ack.get("ok"):
            self.stopped = True
        return ack

    def _audit(self, of_seq: int, ack: dict) -> None:
        self.journal.append(
            {
                "kind": "audit",
                "seq": self._next_seq,
                "of": of_seq,
                "ack": ack,
                "digest": self.engine.state_digest(),
            }
        )
        self._next_seq += 1

    def _note(self, **fields) -> None:
        self.journal.append({"kind": "note", "seq": self._next_seq, **fields})
        self._next_seq += 1

    def take_snapshot(self) -> pathlib.Path:
        """Persist engine state into the stale slot; resets the cadence."""
        self._snapshot_no += 1
        tear_after = None
        torn = self._kill == ("snapshot", self._snapshot_no)
        if torn:
            # Die mid-snapshot-write: persist roughly half the blob into
            # the (stale) target slot — the newest good slot survives.
            tear_after = 0.5
        meta = {
            "applied_seq": self._applied_seq,
            "last_op_id": self.engine.last_op_id,
            "now": self.engine.now,
            "digest": self.engine.state_digest(),
            "name": self.config.name,
        }
        path = self.store.save(
            self.engine.snapshot_state(), meta, tear_after=tear_after
        )
        if torn:
            self._crash(f"snapshot:{self._snapshot_no}")
        self._ops_since_snapshot = 0
        return path

    def _crash(self, point: str):
        if self.kill_mode == "sigkill":  # pragma: no cover - subprocess drills
            os.kill(os.getpid(), signal.SIGKILL)
        raise SimulatedCrash(point)

    # -- lifecycle ------------------------------------------------------------
    def status(self) -> dict:
        return {
            "name": self.config.name,
            "state_dir": str(self.state_dir),
            "applied_seq": self._applied_seq,
            "snapshots": self._snapshot_no,
            "stopped": self.stopped,
            "recovery": dict(self.recovery),
            **self.engine.stats(),
        }

    def finalize(self, *, bench: str | None = None) -> dict:
        """The deterministic BENCH payload + a final durable snapshot."""
        payload = self.engine.payload(bench=bench or f"serve_{self.config.name}")
        self.take_snapshot()
        return payload

    def request_drain(self, *args) -> None:
        """SIGTERM handler: finish the in-flight op, snapshot, exit 0."""
        self.drain_requested = True

    def close(self) -> None:
        self.journal.close()


def run_script(runtime: ServeRuntime, lines: Iterable[str]) -> list[dict]:
    """Drive the runtime from JSON-lines ops (a file or stdin).

    Scripted mode is strict: the first failed op aborts with
    ``ValueError`` (the CLI's one-line ``error:`` exit 2), because a
    script that half-applied is a debugging session, not a service.
    """
    acks: list[dict] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            op = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"ops line {lineno}: invalid JSON: {exc}") from exc
        try:
            ack = runtime.handle(op)
        except ValueError as exc:
            raise ValueError(f"ops line {lineno}: {exc}") from exc
        acks.append(ack)
        if not ack.get("ok"):
            raise ValueError(f"ops line {lineno}: {ack.get('error')}")
        if runtime.stopped or runtime.drain_requested:
            break
    return acks


def serve_socket(runtime: ServeRuntime, socket_path: str | pathlib.Path) -> int:
    """Accept JSON-lines ops over a unix socket until stop/SIGTERM.

    One line in, one canonical-JSON ack out.  Unlike scripted mode a bad
    op only fails its own ack — a live service stays up when one client
    sends garbage.  Returns the number of connections served.
    """
    socket_path = pathlib.Path(socket_path)
    if socket_path.exists():
        socket_path.unlink()
    server = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
    connections = 0
    try:
        server.bind(str(socket_path))
        server.listen(8)
        server.settimeout(0.2)  # poll stop/drain flags between accepts
        while not runtime.stopped and not runtime.drain_requested:
            try:
                conn, _ = server.accept()
            except socketlib.timeout:
                continue
            connections += 1
            with conn, conn.makefile("rwb") as stream:
                for raw in stream:
                    try:
                        op = json.loads(raw.decode("utf-8"))
                        ack = runtime.handle(op)
                    except (ValueError, KeyError) as exc:
                        ack = {"ok": False, "error": str(exc)}
                    stream.write((canonical_json(ack) + "\n").encode("utf-8"))
                    stream.flush()
                    if runtime.stopped or runtime.drain_requested:
                        break
    finally:
        server.close()
        if socket_path.exists():
            socket_path.unlink()
    return connections


__all__ = [
    "KILL_POINTS",
    "MUTATING_OPS",
    "READONLY_OPS",
    "ServeRuntime",
    "SimulatedCrash",
    "parse_kill_spec",
    "run_script",
    "serve_socket",
]
