"""The live scheduler engine behind ``repro serve``.

:class:`ServeEngine` is the existing
:class:`~repro.sched.MultiTenantScheduler` (placement, contention,
preemption, autoscale), :class:`~repro.faults.sched_driver
.SchedFaultDriver` and :class:`~repro.brain.driver.BrainDriver` turned
into an *incremental* service: instead of one pre-declared batch driven
to completion by :meth:`~repro.sched.MultiTenantScheduler.run`, jobs
are **submitted while the clock runs** and virtual time advances in
bounded :meth:`tick`\\ s.  Each tick replays the exact event-loop body
the batch path uses — arrivals, fault/brain boundaries,
``_schedule``, piecewise-constant rate accrual, completion sweep — so a
drained engine fed the same jobs at once is *bit-identical* to a batch
``run()`` (payload rows, makespan, event counts; the test suite pins
this equivalence).

Everything here is deterministic in the op sequence: no wall clock, no
RNG outside the seeded fault plan.  That is what makes the write-ahead
journal (:mod:`repro.serve.journal`) a complete crash-recovery story —
replaying the journaled ops against a fresh (or snapshotted) engine
reconstructs the live state bit for bit, witnessed by
:meth:`state_digest`.

Exactly-once apply: every mutating op carries a client-assigned,
strictly increasing integer ``id``.  An op whose id the engine has
already consumed is acknowledged as a duplicate without applying —
so an at-least-once client (resend everything unacknowledged after a
crash) composes into exactly-once admission.
"""

from __future__ import annotations

import bisect
import dataclasses
import hashlib
from typing import Any

from repro.sched.job import DONE, JobRecord
from repro.sched.policies import ClusterState
from repro.sched.scheduler import (
    MultiTenantScheduler,
    SchedReport,
    _AdmitQueue,
    payload_for_reports,
)
from repro.serve.journal import canonical_json

_EPS = 1e-12


class QueueFullError(ValueError):
    """Structured backpressure: the admission backlog is at its limit.

    The daemon *sheds* the submission — a one-line structured rejection,
    never silent loss and never unbounded queue growth.  ``detail``
    carries the machine-readable shape for acks and logs.
    """

    def __init__(self, job: str, backlog: int, limit: int) -> None:
        self.detail = {"job": job, "backlog": backlog, "queue_limit": limit}
        super().__init__(
            f"queue full: job {job!r} shed ({backlog} jobs already "
            f"waiting, queue_limit={limit})"
        )


def _pending_key(record: JobRecord) -> tuple:
    """Arrival order, matching the batch path's ``pending`` sort."""
    return (record.spec.arrival_seconds, -record.spec.priority, record.spec.name)


class ServeEngine:
    """One live multi-tenant scheduler, advanced op by op."""

    def __init__(self, config) -> None:
        self.config = config
        self.scheduler = MultiTenantScheduler(
            num_nodes=config.cluster.num_nodes,
            instance=config.cluster.instance,
            gpus_per_node=config.cluster.gpus_per_node,
            policy=config.policy,
            seed=config.seed,
            name=config.name,
        )
        self.state = ClusterState(self.scheduler.num_nodes, self.scheduler.gpus_per_node)
        self.driver = None
        if config.faults is not None:
            from repro.faults.plan import FaultPlan
            from repro.faults.sched_driver import SchedFaultDriver

            plan = FaultPlan.from_config(
                config.faults, seed=config.seed, target="sched"
            )
            self.driver = SchedFaultDriver(plan)
            self.state.health = self.driver.health
        self.brain_driver = None
        if config.brain is not None:
            from repro.brain.base import build_brain
            from repro.brain.driver import BrainDriver

            autotuner = build_brain(config.brain)
            if autotuner.active:
                self.brain_driver = BrainDriver(config.brain, autotuner, self.scheduler)
        self.scheduler._brain_driver = self.brain_driver
        #: name -> JobRecord, every job ever accepted.
        self.records: dict[str, JobRecord] = {}
        #: Accepted but not yet arrived, sorted by :func:`_pending_key`.
        self.pending: list[JobRecord] = []
        self.queued = _AdmitQueue()
        self.running: list[JobRecord] = []
        self.done: list[JobRecord] = []
        self.now = 0.0
        self.events = 0
        self.occupied_node_seconds = 0.0
        #: Highest op id consumed (exactly-once apply watermark).
        self.last_op_id = 0
        self.submitted = 0
        self.rejected = 0
        self.ticks = 0
        #: Incremental trajectory: one ``[now, jobs_done, iterations]``
        #: row per tick/drain — the daemon's continuously emitted
        #: goodput curve (virtual clock, so bit-stable across replays).
        self.series: list[list[float]] = []

    # -- op dispatch ----------------------------------------------------------
    def apply_op(self, op: dict) -> dict:
        """Apply one journaled op; returns its acknowledgement.

        Deterministic in (current state, op) — including rejections,
        which advance the id watermark and the ``rejected`` counter just
        like successes, so a journal replay reproduces every counter.
        User-level problems come back as ``{"ok": False, "error": ...}``
        acks; anything raising past here is a real bug.
        """
        if not isinstance(op, dict):
            raise ValueError(f"op must be a mapping, got {type(op).__name__}")
        kind = op.get("op")
        op_id = op.get("id")
        if op_id is not None and op_id <= self.last_op_id:
            return {"ok": True, "id": op_id, "duplicate": True}
        try:
            if kind == "submit":
                result = self._submit(op.get("job"))
            elif kind == "tick":
                result = self._tick(op.get("until"))
            elif kind == "drain":
                result = self._drain()
            elif kind == "snapshot":
                # The runtime persists the snapshot; the engine only
                # consumes the op id so replays stay aligned.
                result = {"snapshot": True}
            elif kind == "stop":
                result = {"stopped": True}
            else:
                raise ValueError(
                    f"unknown op {kind!r}; accepted: submit, tick, drain, "
                    "snapshot, status, payload, stop"
                )
        except (ValueError, KeyError) as exc:
            if op_id is not None:
                self.last_op_id = op_id
            self.rejected += 1
            return {"ok": False, "id": op_id, "error": str(exc)}
        if op_id is not None:
            self.last_op_id = op_id
        return {"ok": True, "id": op_id, **result}

    # -- submissions ----------------------------------------------------------
    def _submit(self, job: Any) -> dict:
        from repro.api.config import JobConfig, _from_dict

        if not isinstance(job, dict):
            raise ValueError(
                f"submit needs a 'job' mapping, got {type(job).__name__}"
            )
        spec = _from_dict("job", job, JobConfig).to_spec()
        if spec.name in self.records:
            raise ValueError(f"job name {spec.name!r} was already submitted")
        gpus = self.scheduler._job_gpus(spec)
        if gpus > self.scheduler.gpus_per_node:
            raise ValueError(
                f"job {spec.name!r} wants {gpus} GPUs/node on "
                f"{self.scheduler.gpus_per_node}-GPU nodes"
            )
        if spec.min_nodes > self.scheduler.num_nodes:
            raise ValueError(
                f"job {spec.name!r} needs {spec.min_nodes} nodes, cluster has "
                f"{self.scheduler.num_nodes}"
            )
        backlog = len(self.pending) + len(self.queued)
        if backlog >= self.config.queue_limit:
            raise QueueFullError(spec.name, backlog, self.config.queue_limit)
        if spec.arrival_seconds < self.now - _EPS:
            # The virtual clock never rewinds: late submissions arrive now.
            spec = dataclasses.replace(spec, arrival_seconds=self.now)
        record = JobRecord(spec=spec)
        self.records[spec.name] = record
        bisect.insort(self.pending, record, key=_pending_key)
        self.submitted += 1
        return {
            "job": spec.name,
            "arrival": spec.arrival_seconds,
            "backlog": backlog + 1,
        }

    # -- the event loop, one bounded slice at a time --------------------------
    def _advance(self, until: float | None) -> list[str] | None:
        """One event-loop iteration, never past ``until``.

        The body is the batch :meth:`MultiTenantScheduler.run` loop,
        verbatim in structure and float order, with ``until`` as one
        extra horizon bound.  Returns the jobs completed this iteration;
        returns ``None`` (only possible with ``until=None``) when
        nothing can ever progress again — the batch path's terminal
        ``break``.
        """
        scheduler = self.scheduler
        state = self.state
        driver = self.driver
        brain_driver = self.brain_driver
        self.events += 1
        while (
            self.pending
            and self.pending[0].spec.arrival_seconds <= self.now + _EPS
        ):
            record = self.pending.pop(0)
            self.queued.add(record, scheduler._job_gpus(record.spec))
        if driver is not None:
            from repro.faults.sched_driver import SchedContext

            state.now = self.now
            driver.apply_due(
                SchedContext(
                    scheduler=scheduler, now=self.now, state=state,
                    queued=self.queued, running=self.running,
                )
            )
        if brain_driver is not None:
            state.now = self.now
            brain_driver.apply_due(
                now=self.now, state=state, queued=self.queued,
                running=self.running, faults=driver,
            )
        scheduler._schedule(self.queued, self.running, state, self.now)
        if driver is not None:
            from repro.faults.sched_driver import SchedContext

            driver.note_replacements(
                SchedContext(
                    scheduler=scheduler, now=self.now, state=state,
                    queued=self.queued, running=self.running,
                )
            )
        if not self.running:
            next_arrival = (
                self.pending[0].spec.arrival_seconds if self.pending else None
            )
            boundary = driver.next_boundary(self.now) if driver is not None else None
            waits = [t for t in (next_arrival, boundary) if t is not None]
            if not waits:
                if until is None:
                    return None  # nothing placeable remains, no repair coming
                self.now = until  # the daemon idles; virtual time still passes
                return []
            self.now = min(waits) if until is None else min(min(waits), until)
            return []

        nic_scale = driver.active_nic_scale() if driver is not None else 1.0
        rates: dict[str, tuple[float, float]] = {}
        for record in self.running:
            contention = state.contention_for(record.nodes)
            stretch = driver.stretch_for(record.nodes) if driver is not None else 1.0
            jitter = driver.jitter_for(record.nodes) if driver is not None else 1.0
            busy = scheduler.iteration_seconds(
                record.spec,
                nodes=len(record.nodes),
                contention=contention,
                nic_scale=nic_scale,
                stretch=stretch,
                jitter=jitter,
            )
            solo = (
                busy
                if contention <= 1 and nic_scale >= 1 and stretch <= 1
                and jitter <= 1
                else scheduler.iteration_seconds(
                    record.spec, nodes=len(record.nodes), contention=1.0
                )
            )
            rates[record.spec.name] = (1.0 / busy, 1.0 / solo)

        next_completion = min(
            self.now + record.remaining / rates[record.spec.name][0]
            for record in self.running
        )
        next_arrival = (
            self.pending[0].spec.arrival_seconds if self.pending else None
        )
        horizon = next_completion
        if next_arrival is not None and next_arrival < horizon:
            horizon = next_arrival
        if driver is not None:
            boundary = driver.next_boundary(self.now)
            if boundary is not None and boundary < horizon:
                horizon = boundary
        if brain_driver is not None:
            boundary = brain_driver.next_boundary(self.now)
            if boundary is not None and boundary < horizon:
                horizon = boundary
        if until is not None and until < horizon:
            horizon = until
        dt = max(0.0, horizon - self.now)

        for record in self.running:
            rate, solo_rate = rates[record.spec.name]
            record.progress = min(
                record.spec.iterations, record.progress + rate * dt
            )
            record.solo_equivalent += solo_rate * dt
            record.running_seconds += dt
            record.cost_usd += (
                scheduler._hourly_rate(record.spec, len(record.nodes)) * dt / 3600.0
            )
        self.occupied_node_seconds += state.busy_nodes() * dt
        self.now = horizon

        completed: list[str] = []
        for record in list(self.running):
            if record.remaining <= 1e-9:
                state.release(record.spec.name)
                record.status = DONE
                record.completion = self.now
                self.running.remove(record)
                self.done.append(record)
                completed.append(record.spec.name)
        return completed

    def _tick(self, until: Any = None) -> dict:
        """Advance the virtual clock to ``until`` (default: one tick_seconds)."""
        if until is None:
            until = self.now + self.config.tick_seconds
        if not isinstance(until, (int, float)) or isinstance(until, bool):
            raise ValueError(f"tick 'until' must be a number, got {until!r}")
        until = float(until)
        if until < self.now - 1e-9:
            raise ValueError(
                f"tick until={until} is behind the virtual clock ({self.now})"
            )
        t0 = self.now
        completed: list[str] = []
        for _ in range(self.config.max_events_per_tick):
            completed.extend(self._advance(until) or ())
            if self.now >= until - 1e-9:
                break
        else:  # pragma: no cover - runaway-loop backstop
            raise RuntimeError(
                f"tick exceeded max_events_per_tick={self.config.max_events_per_tick}"
            )
        self.ticks += 1
        self._mark_series()
        return {
            "t0": t0,
            "now": self.now,
            "completed": completed,
            "running": len(self.running),
            "queued": len(self.queued) + len(self.pending),
            "done": len(self.done),
        }

    def _drain(self) -> dict:
        """Run the backlog to completion — the batch path's terminal state."""
        t0 = self.now
        completed: list[str] = []
        cap = max(10_000, 16 * max(1, len(self.records)), self.config.max_events_per_tick)
        for _ in range(cap):
            if not (self.pending or len(self.queued) or self.running):
                break
            out = self._advance(None)
            if out is None:
                break  # unplaceable remainder; identical to the batch break
            completed.extend(out)
        else:  # pragma: no cover - runaway-loop backstop
            raise RuntimeError(f"drain exceeded its event cap ({cap})")
        self.ticks += 1
        self._mark_series()
        return {
            "t0": t0,
            "now": self.now,
            "completed": completed,
            "done": len(self.done),
            "drained": True,
        }

    def _mark_series(self) -> None:
        self.series.append(
            [
                round(self.now, 6),
                len(self.done),
                round(sum(r.progress for r in self.records.values()), 6),
            ]
        )

    # -- reporting ------------------------------------------------------------
    def report(self) -> SchedReport:
        """The live :class:`SchedReport` at the current virtual time."""
        if not self.records:
            # A daemon drained before any submission still reports.
            return SchedReport(
                name=self.scheduler.name,
                policy=self.scheduler.policy_name,
                instance=self.scheduler.instance,
                num_nodes=self.scheduler.num_nodes,
                gpus_per_node=self.scheduler.gpus_per_node,
                seed=self.scheduler.seed,
                makespan_s=self.now,
                events=self.events,
            )
        report = self.scheduler._report(
            self.records, self.now, self.occupied_node_seconds, self.events
        )
        if self.driver is not None:
            report.fault_log = self.driver.summary()
        if self.brain_driver is not None:
            report.brain_log = self.brain_driver.summary()
        return report

    def payload(self, *, bench: str | None = None, replay: bool = True) -> dict:
        """The BENCH payload of the service so far (+ serve trajectory).

        ``replay=True`` trains completed payload jobs' allocation
        histories through the real ElasticTrainer (cached per record, so
        repeated calls never retrain); interim status probes pass
        ``replay=False`` to stay cheap.
        """
        if replay:
            for record in self.records.values():
                if (
                    record.spec.payload is not None
                    and record.waypoints
                    and record.train_summary is None
                ):
                    record.train_summary = self.scheduler._replay_payload(record)
        payload = payload_for_reports(
            [self.report()], bench=bench or f"serve_{self.config.name}"
        )
        payload["meta"]["serve"] = self.stats()
        return payload

    def stats(self) -> dict:
        """Virtual-clock service counters (all journal-replay stable)."""
        return {
            "now": self.now,
            "events": self.events,
            "ticks": self.ticks,
            "submitted": self.submitted,
            "rejected": self.rejected,
            "completed": len(self.done),
            "running": len(self.running),
            "backlog": len(self.pending) + len(self.queued),
            "last_op_id": self.last_op_id,
            "digest": self.state_digest(),
            "series": [list(row) for row in self.series],
        }

    def state_digest(self) -> str:
        """sha256-16 over the canonical JSON of the full mutable state.

        The determinism witness: two engines that applied the same op
        sequence — live, journal-replayed, or snapshot-plus-tail — must
        agree on this digest, and the recovery path verifies it against
        the journaled audit records.
        """
        doc = {
            "now": self.now,
            "events": self.events,
            "occupied": self.occupied_node_seconds,
            "last_op_id": self.last_op_id,
            "submitted": self.submitted,
            "rejected": self.rejected,
            "ticks": self.ticks,
            "pending": [r.spec.name for r in self.pending],
            "queued": sorted(
                r.spec.name for rs in self.queued.by_sig.values() for r in rs
            ),
            "running": [r.spec.name for r in self.running],
            "done": [r.spec.name for r in self.done],
            "jobs": {
                name: [
                    record.status,
                    record.progress,
                    sorted(record.nodes),
                    record.grows,
                    record.shrinks,
                    record.cost_usd,
                    record.running_seconds,
                    record.solo_equivalent,
                    record.membership.epoch if record.membership is not None else 0,
                    record.waypoints,
                ]
                for name, record in self.records.items()
            },
            "faults": self.driver.log.digest() if self.driver is not None else None,
            "brain": (
                self.brain_driver.log.digest()
                if self.brain_driver is not None
                else None
            ),
        }
        blob = canonical_json(doc).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:16]

    # -- snapshot state extraction / restore ----------------------------------
    def snapshot_state(self) -> dict:
        """Every mutable piece, as one object graph (shared refs intact).

        The scheduler itself (policy closure, memo caches) and the brain
        driver's back-reference to it are deliberately *excluded*: both
        are rebuilt from config on restore — the caches are pure
        memoization, so an empty cache changes wall-clock only, never a
        result.  Everything else (records, cluster state, fault driver
        with its RNG and health ledger, brain decision state) pickles in
        one ``dumps`` so cross-references survive exactly.
        """
        brain_state = None
        if self.brain_driver is not None:
            bd = self.brain_driver
            brain_state = {
                "autotuner": bd.autotuner,
                "log": bd.log,
                "next_tick": bd._next_tick,
                "job_hold": bd._job_hold,
                "avoid": bd._avoid,
                "ticks": bd.ticks,
                "migrations": bd.migrations,
                "grows": bd.grows,
                "shrinks": bd.shrinks,
                "declined": bd.declined,
            }
        return {
            "records": self.records,
            "pending": self.pending,
            "queued": self.queued,
            "running": self.running,
            "done": self.done,
            "state": self.state,
            "driver": self.driver,
            "brain": brain_state,
            "now": self.now,
            "events": self.events,
            "occupied_node_seconds": self.occupied_node_seconds,
            "last_op_id": self.last_op_id,
            "submitted": self.submitted,
            "rejected": self.rejected,
            "ticks": self.ticks,
            "series": self.series,
            "digest": self.state_digest(),
        }

    @classmethod
    def from_snapshot_state(cls, config, state: dict) -> "ServeEngine":
        """Rebuild a live engine from :meth:`snapshot_state` output."""
        engine = cls(config)
        engine.records = state["records"]
        engine.pending = state["pending"]
        engine.queued = state["queued"]
        engine.running = state["running"]
        engine.done = state["done"]
        engine.state = state["state"]
        engine.driver = state["driver"]
        if engine.driver is not None:
            engine.state.health = engine.driver.health
        brain_state = state["brain"]
        if brain_state is not None:
            from repro.brain.driver import BrainDriver

            bd = BrainDriver(config.brain, brain_state["autotuner"], engine.scheduler)
            bd.log = brain_state["log"]
            bd._next_tick = brain_state["next_tick"]
            bd._job_hold = brain_state["job_hold"]
            bd._avoid = brain_state["avoid"]
            bd.ticks = brain_state["ticks"]
            bd.migrations = brain_state["migrations"]
            bd.grows = brain_state["grows"]
            bd.shrinks = brain_state["shrinks"]
            bd.declined = brain_state["declined"]
            engine.brain_driver = bd
        else:
            engine.brain_driver = None
        engine.scheduler._brain_driver = engine.brain_driver
        engine.now = state["now"]
        engine.events = state["events"]
        engine.occupied_node_seconds = state["occupied_node_seconds"]
        engine.last_op_id = state["last_op_id"]
        engine.submitted = state["submitted"]
        engine.rejected = state["rejected"]
        engine.ticks = state["ticks"]
        engine.series = state["series"]
        restored = engine.state_digest()
        if restored != state["digest"]:
            raise RuntimeError(
                "snapshot state digest mismatch after restore: "
                f"{restored} != {state['digest']}"
            )
        return engine


__all__ = ["ServeEngine", "QueueFullError"]
