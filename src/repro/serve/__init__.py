"""Always-on service mode: the crash-safe scheduler daemon.

``repro.serve`` turns the batch simulation stack into a long-running
service: a write-ahead journal (:mod:`~repro.serve.journal`) and
double-buffered snapshots (:mod:`~repro.serve.snapshot`) make the live
:class:`~repro.serve.engine.ServeEngine` durable, the
:class:`~repro.serve.daemon.ServeRuntime` enforces the
journal-before-apply / fsync-before-ack contract, and
:class:`~repro.serve.drill.RecoveryDrill` kills the daemon at seeded
injection points to prove recovery is byte-identical.  See
``docs/serve.md``.
"""

from repro.serve.client import SubmitError, send_ops
from repro.serve.daemon import (
    ServeRuntime,
    SimulatedCrash,
    parse_kill_spec,
    run_script,
    serve_socket,
)
from repro.serve.drill import (
    DEFAULT_POINTS,
    DrillOutcome,
    RecoveryDrill,
    ops_from_script,
    ops_from_trace,
)
from repro.serve.engine import QueueFullError, ServeEngine
from repro.serve.journal import (
    Journal,
    JournalError,
    JournalScan,
    canonical_json,
    repair_journal,
    scan_journal,
)
from repro.serve.snapshot import (
    SnapshotCorruptError,
    SnapshotLoad,
    SnapshotStore,
    read_snapshot,
    write_snapshot,
)

__all__ = [
    "DEFAULT_POINTS",
    "DrillOutcome",
    "Journal",
    "JournalError",
    "JournalScan",
    "QueueFullError",
    "RecoveryDrill",
    "ServeEngine",
    "ServeRuntime",
    "SimulatedCrash",
    "SnapshotCorruptError",
    "SnapshotLoad",
    "SnapshotStore",
    "SubmitError",
    "canonical_json",
    "ops_from_script",
    "ops_from_trace",
    "parse_kill_spec",
    "read_snapshot",
    "repair_journal",
    "run_script",
    "scan_journal",
    "send_ops",
    "serve_socket",
    "write_snapshot",
]
