"""CRC-framed write-ahead journal for the always-on scheduler daemon.

The journal is the daemon's source of truth: every *input* event
(submission, tick, drain, snapshot marker, stop) is appended — length-
and CRC32-framed, flushed and fsynced — **before** it is applied to the
live :class:`~repro.serve.engine.ServeEngine`, and only then
acknowledged to the client.  Replaying the journal therefore
reconstructs the exact engine state: the engine is deterministic in its
inputs (the whole repo's virtual-clock discipline), so the journal of
inputs *is* the state.

Frame layout (all little-endian)::

    header:  8 bytes  b"RPJRNL01" (magic + format version)
    frame:   u32 payload length | u32 CRC32(payload) | payload bytes
    payload: canonical JSON (sorted keys, compact separators)

A process killed mid-append leaves a *torn tail*: a partial or
CRC-mismatching final frame.  That is the only corruption a crash can
produce (frames are append-only and never rewritten), and recovery
handles it by truncating the journal back to the last good frame —
:func:`repair_journal` — and logging the dropped bytes as a recovery
step.  A corrupt frame *before* the last good one is not a crash
artefact but real damage, and :func:`scan_journal` reports it the same
way: the scan stops at the first bad frame, so replay never applies
records that follow a hole.
"""

from __future__ import annotations

import json
import os
import pathlib
import struct
import zlib
from dataclasses import dataclass, field

#: Magic + format version; bump the trailing digits on layout changes.
JOURNAL_MAGIC = b"RPJRNL01"

_FRAME_HEAD = struct.Struct("<II")  # payload length, CRC32(payload)

#: Refuse absurd frame lengths so a corrupt length field cannot make the
#: scanner allocate gigabytes: no legitimate daemon record gets close.
MAX_FRAME_BYTES = 16 * 1024 * 1024


class JournalError(RuntimeError):
    """A journal file that cannot be opened or appended to."""


def canonical_json(record: dict) -> str:
    """The one spelling a record ever has (digest- and CRC-stable)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def encode_frame(record: dict) -> bytes:
    """One CRC-framed journal frame for ``record``."""
    payload = canonical_json(record).encode("utf-8")
    return _FRAME_HEAD.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class JournalScan:
    """What :func:`scan_journal` found on disk."""

    path: pathlib.Path
    #: Records decoded from good frames, in append order.
    records: list = field(default_factory=list)
    #: Byte offset just past the last good frame (header-only = 8).
    good_bytes: int = 0
    #: Trailing bytes past ``good_bytes`` (torn/corrupt tail; 0 = clean).
    torn_bytes: int = 0

    @property
    def torn(self) -> bool:
        return self.torn_bytes > 0

    @property
    def last_seq(self) -> int:
        """Highest ``seq`` among the good records (0 = empty journal)."""
        return max((r.get("seq", 0) for r in self.records), default=0)


class Journal:
    """Append-only CRC-framed record log with fsync-before-ack.

    ``append`` writes the full frame, flushes and fsyncs before
    returning — the WAL contract: once the caller sees the new offset,
    the record survives any subsequent kill.  ``append_torn`` exists for
    the recovery drills only: it persists a deliberate *partial* frame
    (exactly what a kill mid-``write`` leaves behind) so the torn-tail
    repair path is exercised by real bytes, not a simulation of them.
    """

    def __init__(self, path: str | pathlib.Path, *, sync: bool = True) -> None:
        self.path = pathlib.Path(path)
        self.sync = sync
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        if fresh:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "ab")
        if fresh:
            self._file.write(JOURNAL_MAGIC)
            self._flush()
        elif self.path.stat().st_size < len(JOURNAL_MAGIC):
            raise JournalError(f"journal {self.path} is shorter than its header")

    def _flush(self) -> None:
        self._file.flush()
        if self.sync:
            os.fsync(self._file.fileno())

    def append(self, record: dict) -> int:
        """Durably append one record; returns the new end offset."""
        self._file.write(encode_frame(record))
        self._flush()
        return self._file.tell()

    def append_torn(self, record: dict) -> int:
        """Persist the *front half* of a frame (drill-only torn tail)."""
        frame = encode_frame(record)
        self._file.write(frame[: max(1, len(frame) // 2)])
        self._flush()
        return self._file.tell()

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def scan_journal(path: str | pathlib.Path) -> JournalScan:
    """Read every good frame; stop (and measure the tail) at the first bad one."""
    path = pathlib.Path(path)
    data = path.read_bytes()
    if len(data) < len(JOURNAL_MAGIC) or not data.startswith(JOURNAL_MAGIC):
        raise JournalError(
            f"{path} is not a journal (bad or missing {JOURNAL_MAGIC!r} header)"
        )
    scan = JournalScan(path=path, good_bytes=len(JOURNAL_MAGIC))
    offset = len(JOURNAL_MAGIC)
    while offset < len(data):
        if offset + _FRAME_HEAD.size > len(data):
            break  # torn mid-header
        length, crc = _FRAME_HEAD.unpack_from(data, offset)
        if length > MAX_FRAME_BYTES:
            break  # corrupt length field
        start = offset + _FRAME_HEAD.size
        end = start + length
        if end > len(data):
            break  # torn mid-payload
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break  # bit rot or torn rewrite
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        scan.records.append(record)
        offset = end
        scan.good_bytes = offset
    scan.torn_bytes = len(data) - scan.good_bytes
    return scan


def repair_journal(path: str | pathlib.Path) -> JournalScan:
    """Scan and, if the tail is torn, truncate back to the last good frame.

    Returns the scan (``torn_bytes`` reports what was dropped).  After
    repair the file ends exactly at ``good_bytes``, so a reopened
    :class:`Journal` appends cleanly where the good history ends.
    """
    scan = scan_journal(path)
    if scan.torn:
        with open(scan.path, "r+b") as handle:
            handle.truncate(scan.good_bytes)
            handle.flush()
            os.fsync(handle.fileno())
    return scan


__all__ = [
    "JOURNAL_MAGIC",
    "MAX_FRAME_BYTES",
    "JournalError",
    "JournalScan",
    "Journal",
    "canonical_json",
    "encode_frame",
    "scan_journal",
    "repair_journal",
]
