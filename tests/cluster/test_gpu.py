"""GPU kernel cost model and its Fig. 6 calibration anchors."""

import pytest

from repro.cluster.gpu import (
    V100,
    GpuSpec,
    dgc_topk_gpu_time,
    exact_topk_gpu_time,
    mstopk_gpu_time,
)


class TestGpuSpec:
    def test_scan_time_linear_in_passes(self):
        one = V100.scan_time(1e9, passes=1)
        ten = V100.scan_time(1e9, passes=10)
        assert ten == pytest.approx(10 * one)

    def test_sort_time_superlinear(self):
        # n log n: doubling n more than doubles time.
        assert V100.sort_time(2_000_000) > 2 * V100.sort_time(1_000_000)

    def test_sort_time_tiny_input(self):
        assert V100.sort_time(0) == V100.kernel_launch_overhead
        assert V100.sort_time(1) == V100.kernel_launch_overhead

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            V100.scan_time(-1)
        with pytest.raises(ValueError):
            V100.sort_time(-1)
        with pytest.raises(ValueError):
            V100.elementwise_time(-1)


class TestFig6Anchors:
    """The projections must match the paper's measured curve shapes."""

    def test_nn_topk_128m_near_paper(self):
        # Fig. 6b: nn.topk ≈ 1.2 s at 128M elements.
        t = exact_topk_gpu_time(128_000_000)
        assert 0.6 < t < 2.4

    def test_nn_topk_25m_near_paper(self):
        # Fig. 1 / Fig. 6: exact top-k on the ResNet-50 gradient ≈ 0.239 s.
        t = exact_topk_gpu_time(25_560_000)
        assert 0.12 < t < 0.48

    def test_mstopk_is_negligible(self):
        # "our MSTopK only requires a negligible computing time".
        t = mstopk_gpu_time(128_000_000)
        assert t < 0.05

    def test_paper_ordering_holds_across_sizes(self):
        # MSTopK < DGC < nn.topk for every size in the paper's sweep.
        for d in (256_000, 1_000_000, 8_000_000, 64_000_000, 128_000_000):
            ms = mstopk_gpu_time(d)
            dgc = dgc_topk_gpu_time(d)
            exact = exact_topk_gpu_time(d)
            assert ms < dgc < exact, f"ordering broken at d={d}"

    def test_mstopk_scales_with_samplings(self):
        assert mstopk_gpu_time(10_000_000, n_samplings=60) > mstopk_gpu_time(
            10_000_000, n_samplings=30
        )

    def test_dgc_sample_fraction_validation(self):
        with pytest.raises(ValueError):
            dgc_topk_gpu_time(1000, sample_fraction=0.0)


class TestCustomGpu:
    def test_faster_memory_means_faster_scan(self):
        fast = GpuSpec("fast", 2e12, 1e13, 1e14, 1e-6)
        assert fast.scan_time(1e9) < V100.scan_time(1e9)
