"""Rank arithmetic of the m x n topology."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.topology import ClusterTopology


class TestTopology:
    def test_world_size(self):
        assert ClusterTopology(16, 8).world_size == 128

    def test_rank_node_major(self):
        topo = ClusterTopology(3, 4)
        assert topo.rank(0, 0) == 0
        assert topo.rank(1, 0) == 4
        assert topo.rank(2, 3) == 11

    @given(m=st.integers(1, 20), n=st.integers(1, 16))
    def test_rank_roundtrip(self, m, n):
        topo = ClusterTopology(m, n)
        for rank in range(topo.world_size):
            node = topo.node_of(rank)
            local = topo.local_rank_of(rank)
            assert topo.rank(node, local) == rank

    def test_node_ranks(self):
        topo = ClusterTopology(2, 4)
        assert topo.node_ranks(1) == [4, 5, 6, 7]

    def test_stream_ranks(self):
        topo = ClusterTopology(3, 4)
        assert topo.stream_ranks(2) == [2, 6, 10]

    @given(m=st.integers(1, 8), n=st.integers(1, 8))
    def test_node_and_stream_groups_partition_world(self, m, n):
        topo = ClusterTopology(m, n)
        from_nodes = sorted(r for group in topo.iter_node_groups() for r in group)
        from_streams = sorted(r for group in topo.iter_stream_groups() for r in group)
        assert from_nodes == list(range(topo.world_size))
        assert from_streams == list(range(topo.world_size))

    def test_same_node(self):
        topo = ClusterTopology(2, 4)
        assert topo.same_node(0, 3)
        assert not topo.same_node(3, 4)

    def test_devices(self):
        topo = ClusterTopology(2, 2)
        devices = topo.devices()
        assert len(devices) == 4
        assert devices[3].name == "node1/gpu1"

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterTopology(0, 8)
        with pytest.raises(ValueError):
            ClusterTopology(2, 0)
        topo = ClusterTopology(2, 2)
        with pytest.raises(IndexError):
            topo.node_of(4)
        with pytest.raises(IndexError):
            topo.rank(2, 0)
        with pytest.raises(IndexError):
            topo.stream_ranks(2)
