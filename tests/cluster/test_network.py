"""The alpha-beta collective cost closed forms (paper Eqs. 3, 7, 9, 10)."""

import math

import pytest

from repro.cluster.links import LinkSpec
from repro.cluster.network import NetworkModel
from repro.cluster.topology import ClusterTopology

LINK = LinkSpec("test", alpha=1e-4, bandwidth=1e9, efficiency=1.0)


def make_net(m=2, n=4):
    return NetworkModel(ClusterTopology(m, n), intra=LINK, inter=LINK)


class TestClosedForms:
    def test_allgather_eq3(self):
        # alpha * log2(P) + (P - 1) * beta * bytes (paper Eq. 3).
        t = NetworkModel.allgather_time(8, 1e6, LINK)
        expected = 1e-4 * 3 + 7 * 1e-9 * 1e6
        assert t == pytest.approx(expected)

    def test_reduce_scatter_eq7(self):
        # (n-1) alpha + (n-1) (D/n) beta (paper Eq. 7).
        t = NetworkModel.reduce_scatter_time(4, 8e6, LINK)
        expected = 3 * 1e-4 + 3 * 2e6 * 1e-9
        assert t == pytest.approx(expected)

    def test_ring_allreduce_bandwidth_term(self):
        t = NetworkModel.allreduce_ring_time(4, 8e6, LINK)
        expected = 2 * 3 * 1e-4 + 2 * 3 * 2e6 * 1e-9
        assert t == pytest.approx(expected)

    def test_tree_allreduce_log_latency(self):
        t = NetworkModel.allreduce_tree_time(16, 0.0, LINK, traffic_factor=3.0)
        assert t == pytest.approx(2 * 4 * 1e-4)

    def test_single_participant_is_free(self):
        assert NetworkModel.allgather_time(1, 1e9, LINK) == 0.0
        assert NetworkModel.reduce_scatter_time(1, 1e9, LINK) == 0.0
        assert NetworkModel.allreduce_ring_time(1, 1e9, LINK) == 0.0
        assert NetworkModel.allreduce_tree_time(1, 1e9, LINK) == 0.0

    def test_invalid_participants(self):
        with pytest.raises(ValueError):
            NetworkModel.allgather_time(0, 1.0, LINK)
        with pytest.raises(ValueError):
            NetworkModel.reduce_scatter_time(0, 1.0, LINK)


class TestNicSharing:
    def test_shared_link_beta_scales_with_streams(self):
        net = make_net(2, 4)
        shared = net.inter_link_shared(4)
        assert shared.beta == pytest.approx(4 * net.inter.beta)

    def test_inter_allgather_default_streams(self):
        net = make_net(m=4, n=8)
        # Default streams = n: per-stream bandwidth is 1/8 of the NIC.
        t_default = net.inter_allgather_time(1e6)
        t_single = net.inter_allgather_time(1e6, streams=1)
        bandwidth_default = t_default - net.inter.alpha * math.log2(4)
        bandwidth_single = t_single - net.inter.alpha * math.log2(4)
        assert bandwidth_default == pytest.approx(8 * bandwidth_single)

    def test_invalid_streams(self):
        with pytest.raises(ValueError):
            make_net().inter_link_shared(0)


class TestP2P:
    def test_same_rank_free(self):
        assert make_net().p2p_time(0, 0, 1e6) == 0.0

    def test_intra_vs_inter_selection(self):
        fast = LinkSpec("fast", alpha=0, bandwidth=1e12)
        slow = LinkSpec("slow", alpha=0, bandwidth=1e6)
        net = NetworkModel(ClusterTopology(2, 2), intra=fast, inter=slow)
        assert net.p2p_time(0, 1, 1e6) < net.p2p_time(0, 2, 1e6)


class TestMonotonicity:
    @pytest.mark.parametrize("p", [2, 4, 8, 16])
    def test_allgather_grows_with_message(self, p):
        small = NetworkModel.allgather_time(p, 1e3, LINK)
        large = NetworkModel.allgather_time(p, 1e6, LINK)
        assert large > small

    def test_hierarchical_helpers_positive(self):
        net = make_net(4, 8)
        assert net.intra_reduce_scatter_time(1e6) > 0
        assert net.intra_allgather_time(1e6) > 0
        assert net.inter_allgather_time(1e6) > 0
