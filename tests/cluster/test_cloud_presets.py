"""Cloud instance presets (paper Table 1) and cluster factories."""

import pytest

from repro.cluster.cloud_presets import (
    ALIYUN_GN10X,
    AWS_P3_16XLARGE,
    StorageTier,
    TENCENT_18XLARGE320,
    make_cluster,
    paper_testbed,
    table1_rows,
)


class TestTable1:
    def test_rows_match_paper(self):
        rows = table1_rows()
        assert rows == [
            ("AWS", "p3.16xlarge", 488, "EBS", 25),
            ("Aliyun", "c10g1.20xlarge", 336, "OSS", 32),
            ("Tencent", "18XLARGE320", 320, "CFS", 25),
        ]

    def test_instance_gpu_count(self):
        for inst in (AWS_P3_16XLARGE, ALIYUN_GN10X, TENCENT_18XLARGE320):
            assert inst.gpus == 8
            assert "V100" in inst.gpu_model

    def test_inter_link_matches_network_column(self):
        assert ALIYUN_GN10X.inter_link.bandwidth == pytest.approx(32e9 / 8)
        assert TENCENT_18XLARGE320.inter_link.bandwidth == pytest.approx(25e9 / 8)


class TestStorageTier:
    def test_read_time(self):
        tier = StorageTier("t", bandwidth=100e6, latency=1e-3)
        assert tier.read_time(100e6) == pytest.approx(1.001)

    def test_zero_read_free(self):
        assert StorageTier("t", 1e9, 1e-3).read_time(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            StorageTier("t", 1e9, 1e-3).read_time(-1)


class TestFactories:
    def test_paper_testbed_shape(self):
        net = paper_testbed()
        assert net.num_nodes == 16
        assert net.gpus_per_node == 8
        assert net.world_size == 128

    def test_make_cluster_by_name(self):
        net = make_cluster(4, "aws")
        assert net.world_size == 32

    def test_make_cluster_gpu_override(self):
        net = make_cluster(2, "tencent", gpus_per_node=2)
        assert net.world_size == 4

    def test_make_cluster_unknown(self):
        with pytest.raises(KeyError):
            make_cluster(4, "oracle")

    def test_testbed_links_are_hierarchical(self):
        net = paper_testbed()
        assert net.beta_intra * 4 < net.beta_inter
