"""Straggler/jitter model."""

import numpy as np
import pytest

from repro.cluster.cloud_presets import paper_testbed
from repro.cluster.variability import (
    VariabilityModel,
    expected_slowdown,
    straggled_flat_time,
    straggled_hierarchical_time,
)
from repro.utils.seeding import new_rng


class TestModel:
    def test_factors_at_least_one(self, rng):
        factors = VariabilityModel(sigma=0.3).sample_node_factors(100, rng)
        assert np.all(factors >= 1.0)

    def test_zero_sigma_is_deterministic(self, rng):
        factors = VariabilityModel(sigma=0.0).sample_node_factors(8, rng)
        np.testing.assert_array_equal(factors, np.ones(8))

    def test_more_sigma_more_spread(self):
        low = VariabilityModel(sigma=0.05).sample_node_factors(500, new_rng(0))
        high = VariabilityModel(sigma=0.4).sample_node_factors(500, new_rng(0))
        assert high.max() > low.max()

    def test_validation(self):
        with pytest.raises(ValueError):
            VariabilityModel(sigma=-0.1)
        with pytest.raises(ValueError):
            VariabilityModel().sample_node_factors(0, new_rng(0))


class TestStraggledTimes:
    def test_flat_stretched_by_worst(self):
        factors = np.array([1.0, 1.5, 1.2])
        assert straggled_flat_time(2.0, factors) == pytest.approx(3.0)

    def test_hierarchical_composition(self):
        factors = np.array([1.0, 2.0])
        t = straggled_hierarchical_time(0.5, 0.1, factors)
        assert t == pytest.approx(0.5 * 2.0 + 0.1 * 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            straggled_flat_time(-1.0, np.ones(2))
        with pytest.raises(ValueError):
            straggled_hierarchical_time(-0.1, 0.1, np.ones(2))


class TestExpectedSlowdown:
    def test_more_nodes_means_worse_tail(self):
        # max of more log-normals is larger: the flat scheme degrades
        # with cluster size — one more reason hierarchy wins at scale.
        from repro.cluster.cloud_presets import make_cluster

        small = make_cluster(2, "tencent")
        large = make_cluster(32, "tencent")
        flat_small, _ = expected_slowdown(small, 0.5, sigma=0.2, trials=300)
        flat_large, _ = expected_slowdown(large, 0.5, sigma=0.2, trials=300)
        assert flat_large > flat_small

    def test_schemes_equal_when_fraction_one(self):
        net = paper_testbed()
        flat, hier = expected_slowdown(net, 1.0, sigma=0.2, trials=100)
        assert flat == pytest.approx(hier)

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            expected_slowdown(paper_testbed(), 1.5)
