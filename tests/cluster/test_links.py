"""LinkSpec alpha-beta semantics."""

import pytest

from repro.cluster.links import (
    ETHERNET_25G,
    LinkSpec,
    NVLINK_V100,
    get_link,
)


class TestLinkSpec:
    def test_beta_is_inverse_effective_bandwidth(self):
        link = LinkSpec("t", alpha=1e-5, bandwidth=1e9, efficiency=0.5)
        assert link.beta == pytest.approx(2e-9)

    def test_transfer_time_alpha_beta(self):
        link = LinkSpec("t", alpha=1e-5, bandwidth=1e9)
        assert link.transfer_time(1e6) == pytest.approx(1e-5 + 1e-3)

    def test_zero_bytes_is_free(self):
        assert ETHERNET_25G.transfer_time(0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            ETHERNET_25G.transfer_time(-1)

    def test_scaled_shares_bandwidth(self):
        shared = ETHERNET_25G.scaled(0.25)
        assert shared.beta == pytest.approx(4 * ETHERNET_25G.beta)
        assert shared.alpha == ETHERNET_25G.alpha

    def test_scaled_invalid_share(self):
        with pytest.raises(ValueError):
            ETHERNET_25G.scaled(0.0)
        with pytest.raises(ValueError):
            ETHERNET_25G.scaled(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSpec("t", alpha=-1, bandwidth=1)
        with pytest.raises(ValueError):
            LinkSpec("t", alpha=0, bandwidth=0)
        with pytest.raises(ValueError):
            LinkSpec("t", alpha=0, bandwidth=1, efficiency=0)


class TestPresets:
    def test_hierarchy_gap(self):
        # NVLink must be much faster than 25GbE — the asymmetry the whole
        # paper is about.
        assert NVLINK_V100.beta * 4 < ETHERNET_25G.beta

    def test_get_link(self):
        assert get_link("25GbE").bandwidth == pytest.approx(25e9 / 8)

    def test_get_link_unknown(self):
        with pytest.raises(KeyError):
            get_link("teleport")
