"""End-to-end elastic training: rollback, rescale, residual carry-over."""

import numpy as np
import pytest

from repro.cluster.variability import VariabilityModel
from repro.elastic.elastic_trainer import ElasticTrainer
from repro.elastic.events import ChurnEvent, PoissonChurn, TraceSchedule
from repro.models.nn.mlp import MLPClassifier
from repro.train.synthetic import make_spiral_classification
from repro.utils.seeding import new_rng


def make_elastic(tmp_path, **overrides):
    defaults = dict(
        scheme="mstopk",
        density=0.1,
        num_nodes=3,
        gpus_per_node=2,
        checkpoint_every=10,
        checkpoint_dir=tmp_path,
        compute_seconds=0.05,
        checkpoint_seconds=0.5,
        restart_seconds=2.0,
        seed=4,
    )
    defaults.update(overrides)
    return ElasticTrainer(
        MLPClassifier(input_dim=2, hidden=(12,), num_classes=4), **defaults
    )


@pytest.fixture
def data():
    return make_spiral_classification(512, num_classes=4, rng=new_rng(3))


class TestStaticRun:
    def test_trains_to_target(self, tmp_path, data):
        x, y = data
        report = make_elastic(tmp_path).run(x, y, iterations=30, local_batch=8)
        assert report.useful_iterations == 30
        assert report.wall_iterations == 30
        assert report.lost_iterations == 0
        assert len(report.losses) == 30
        assert report.losses[-1] < report.losses[0]  # it actually learns
        assert report.goodput > 0
        assert report.node_seconds > 0

    def test_periodic_checkpoints_counted(self, tmp_path, data):
        x, y = data
        report = make_elastic(tmp_path).run(x, y, iterations=30, local_batch=8)
        # Initial + iterations 10 and 20 (not 30: the run ends there).
        assert report.checkpoints == 3


class TestRevocation:
    def test_surprise_revocation_rolls_back(self, tmp_path, data):
        x, y = data
        trace = TraceSchedule([ChurnEvent(14, "revoke", warned=False)])
        report = make_elastic(tmp_path).run(
            x, y, iterations=30, local_batch=8, schedule=trace
        )
        assert report.revocations == 1
        assert report.rollbacks == 1
        # Checkpointed at 10, revoked at 14 -> 4 iterations replayed.
        assert report.lost_iterations == 4
        assert report.useful_iterations == 30
        assert report.wall_iterations == 34
        assert report.world_sizes == [6, 4]
        assert len(report.losses) == 30

    def test_warned_revocation_loses_nothing(self, tmp_path, data):
        x, y = data
        trace = TraceSchedule([ChurnEvent(14, "revoke", warned=True)])
        report = make_elastic(tmp_path).run(
            x, y, iterations=30, local_batch=8, schedule=trace
        )
        assert report.warned_revocations == 1
        assert report.rollbacks == 0
        assert report.lost_iterations == 0
        assert report.wall_iterations == 30

    def test_warning_too_short_for_checkpoint_degrades_to_surprise(
        self, tmp_path, data
    ):
        x, y = data
        trace = TraceSchedule([ChurnEvent(14, "revoke", warned=True)])
        trainer = make_elastic(
            tmp_path, checkpoint_seconds=10.0, warning_seconds=5.0
        )
        report = trainer.run(x, y, iterations=20, local_batch=8, schedule=trace)
        assert report.warned_revocations == 0
        assert report.rollbacks == 1
        assert report.lost_iterations == 4

    def test_world_shrinks_and_scheme_rebuilt(self, tmp_path, data):
        x, y = data
        trainer = make_elastic(tmp_path)
        trace = TraceSchedule([ChurnEvent(5, "revoke", warned=True)])
        trainer.run(x, y, iterations=10, local_batch=8, schedule=trace)
        assert trainer.trainer.world_size == 4
        assert trainer.trainer.scheme.topology.num_nodes == 2

    def test_min_nodes_revocation_skipped(self, tmp_path, data):
        x, y = data
        trainer = make_elastic(tmp_path, num_nodes=2, min_nodes=2)
        trace = TraceSchedule([ChurnEvent(5, "revoke")])
        report = trainer.run(x, y, iterations=10, local_batch=8, schedule=trace)
        assert report.revocations == 0
        assert trainer.membership.num_nodes == 2

    def test_min_nodes_warned_revocation_pays_no_overhead(self, tmp_path, data):
        """A refused warned revocation must not checkpoint or charge time."""
        x, y = data
        trace = TraceSchedule([ChurnEvent(5, "revoke", warned=True)])
        churny = make_elastic(tmp_path / "a", num_nodes=2, min_nodes=2)
        calm = make_elastic(tmp_path / "b", num_nodes=2, min_nodes=2)
        with_event = churny.run(x, y, iterations=10, local_batch=8, schedule=trace)
        without = calm.run(x, y, iterations=10, local_batch=8)
        assert with_event.checkpoints == without.checkpoints
        assert with_event.overhead_seconds == without.overhead_seconds

    def test_stale_trace_node_skipped(self, tmp_path, data):
        """A trace revoking an already-departed node is ignored, not fatal."""
        x, y = data
        trace = TraceSchedule(
            [
                ChurnEvent(5, "revoke", node=2, warned=True),
                ChurnEvent(10, "revoke", node=2, warned=True),  # already gone
            ]
        )
        report = make_elastic(tmp_path).run(
            x, y, iterations=20, local_batch=8, schedule=trace
        )
        assert report.revocations == 1
        assert report.useful_iterations == 20

    def test_rollback_restores_momentum_to_checkpoint(self, tmp_path, data):
        """Surprise rollback before the first periodic checkpoint replays
        the run from scratch — bit-identical to a run that never churned
        up to the checkpointed step (momentum included)."""
        x, y = data
        trace = TraceSchedule([ChurnEvent(4, "revoke", warned=False)])
        churny = make_elastic(tmp_path / "a", checkpoint_every=50)
        report = churny.run(x, y, iterations=12, local_batch=8, schedule=trace)
        assert report.rollbacks == 1 and report.lost_iterations == 4
        # The four replayed losses come from a world of 2 nodes, but the
        # trajectory is internally consistent: losses list has exactly
        # the useful steps, and training still descends.
        assert len(report.losses) == 12
        assert report.losses[-1] < report.losses[0]

    def test_residuals_carried_across_shrink(self, tmp_path, data):
        x, y = data
        trainer = make_elastic(tmp_path, checkpoint_every=5)
        trace = TraceSchedule([ChurnEvent(7, "revoke", warned=True)])
        trainer.run(x, y, iterations=10, local_batch=8, schedule=trace)
        ef = trainer.trainer.scheme.ef
        assert ef is not None
        # Folded residuals exist for the shrunken world's ranks only.
        assert set(ef.keys()) == set(range(4))


class TestJoin:
    def test_join_grows_world_without_loss(self, tmp_path, data):
        x, y = data
        trace = TraceSchedule([ChurnEvent(12, "join")])
        trainer = make_elastic(tmp_path)
        report = trainer.run(x, y, iterations=25, local_batch=8, schedule=trace)
        assert report.joins == 1
        assert report.lost_iterations == 0
        assert trainer.trainer.world_size == 8
        assert report.world_sizes == [6, 8]


class TestComposition:
    def test_stragglers_stretch_time(self, tmp_path, data):
        x, y = data
        calm = make_elastic(tmp_path / "a").run(x, y, iterations=15, local_batch=8)
        jittery = make_elastic(
            tmp_path / "b", variability=VariabilityModel(sigma=0.3)
        ).run(x, y, iterations=15, local_batch=8)
        assert jittery.total_seconds > calm.total_seconds
        # Same work, same model trajectory — jitter only affects time.
        np.testing.assert_allclose(jittery.losses, calm.losses)

    def test_poisson_churn_composes_with_stragglers(self, tmp_path, data):
        x, y = data
        trainer = make_elastic(
            tmp_path, variability=VariabilityModel(sigma=0.2), min_nodes=1
        )
        schedule = PoissonChurn(0.03, warned_fraction=0.5, rejoin_delay=10)
        report = trainer.run(x, y, iterations=40, local_batch=8, schedule=schedule)
        assert report.useful_iterations == 40
        assert report.revocations > 0
        assert report.losses[-1] < report.losses[0]

    def test_dense_and_gtopk_schemes_survive_churn(self, tmp_path, data):
        x, y = data
        trace = TraceSchedule(
            [ChurnEvent(8, "revoke", warned=False), ChurnEvent(20, "join")]
        )
        for scheme in ("dense", "gtopk"):
            trainer = make_elastic(tmp_path / scheme, scheme=scheme)
            report = trainer.run(x, y, iterations=25, local_batch=8, schedule=trace)
            assert report.useful_iterations == 25
            assert report.revocations == 1 and report.joins == 1

    def test_deterministic_given_seed(self, tmp_path, data):
        x, y = data
        schedule = PoissonChurn(0.02, rejoin_delay=10)
        a = make_elastic(tmp_path / "a").run(
            x, y, iterations=30, local_batch=8, schedule=schedule
        )
        b = make_elastic(tmp_path / "b").run(
            x, y, iterations=30, local_batch=8, schedule=schedule
        )
        assert a.losses == b.losses
        assert a.total_seconds == b.total_seconds
        assert a.world_sizes == b.world_sizes


class TestValidation:
    def test_bad_iterations_rejected(self, tmp_path, data):
        x, y = data
        with pytest.raises(ValueError):
            make_elastic(tmp_path).run(x, y, iterations=0, local_batch=8)

    def test_oversized_batch_rejected(self, tmp_path):
        x, y = make_spiral_classification(64, num_classes=4, rng=new_rng(0))
        with pytest.raises(ValueError, match="local_batch"):
            make_elastic(tmp_path).run(x, y, iterations=5, local_batch=64)

    def test_bad_checkpoint_every_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            make_elastic(tmp_path, checkpoint_every=0)
