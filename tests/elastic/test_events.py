"""Churn schedules: Poisson statistics, traces, and the warning model."""

import pytest

from repro.elastic.events import (
    JOIN,
    REVOKE,
    SPOT_PROFILES,
    ChurnEvent,
    PoissonChurn,
    TraceSchedule,
    warning_iterations,
)
from repro.utils.seeding import new_rng


class TestChurnEvent:
    def test_kind_validated(self):
        with pytest.raises(ValueError, match="kind"):
            ChurnEvent(0, "explode")

    def test_negative_iteration_rejected(self):
        with pytest.raises(ValueError, match="iteration"):
            ChurnEvent(-1, REVOKE)


class TestTraceSchedule:
    def test_sorted_and_clipped_to_horizon(self):
        trace = TraceSchedule(
            [ChurnEvent(30, JOIN), ChurnEvent(5, REVOKE), ChurnEvent(90, REVOKE)]
        )
        events = trace.generate(50, 4)
        assert [e.iteration for e in events] == [5, 30]


class TestPoissonChurn:
    def test_zero_rate_is_silent(self):
        assert PoissonChurn(0.0).generate(500, 4, new_rng(0)) == []

    def test_rate_sets_expected_count(self):
        # With fast backfill the population stays near 4 nodes, so 2000
        # iterations at 0.005/node-iter expect ~40 revocations.
        schedule = PoissonChurn(0.005, rejoin_delay=5, min_nodes=1)
        events = schedule.generate(2000, 4, new_rng(3))
        revokes = [e for e in events if e.kind == REVOKE]
        assert 15 <= len(revokes) <= 80

    def test_min_nodes_respected(self):
        schedule = PoissonChurn(0.5, rejoin_delay=0, min_nodes=2)
        events = schedule.generate(1000, 4, new_rng(1))
        revokes = sum(1 for e in events if e.kind == REVOKE)
        joins = sum(1 for e in events if e.kind == JOIN)
        # Can never revoke more than (4 - min_nodes) + joins nodes.
        assert revokes <= 2 + joins

    def test_rejoins_follow_revocations(self):
        schedule = PoissonChurn(0.05, rejoin_delay=10, min_nodes=1)
        events = schedule.generate(400, 4, new_rng(7))
        revokes = [e for e in events if e.kind == REVOKE]
        joins = [e for e in events if e.kind == JOIN]
        assert revokes and joins
        assert len(joins) <= len(revokes)
        # Every join postdates some revocation.
        assert min(j.iteration for j in joins) > min(r.iteration for r in revokes)

    def test_warned_fraction_extremes(self):
        rng = new_rng(5)
        all_warned = PoissonChurn(0.05, warned_fraction=1.0).generate(400, 4, rng)
        assert all(e.warned for e in all_warned if e.kind == REVOKE)
        rng = new_rng(5)
        none_warned = PoissonChurn(0.05, warned_fraction=0.0).generate(400, 4, rng)
        assert not any(e.warned for e in none_warned if e.kind == REVOKE)

    def test_deterministic_in_rng(self):
        a = PoissonChurn(0.02, rejoin_delay=5).generate(300, 4, new_rng(9))
        b = PoissonChurn(0.02, rejoin_delay=5).generate(300, 4, new_rng(9))
        assert a == b

    def test_from_profile(self):
        schedule = PoissonChurn.from_profile("aws")
        assert schedule.revoke_rate == SPOT_PROFILES["aws"].revoke_rate
        with pytest.raises(KeyError):
            PoissonChurn.from_profile("oracle")


class TestWarningIterations:
    def test_two_minute_window(self):
        # 0.5 s iterations -> 240 iterations of notice.
        assert warning_iterations(0.5) == 240
        # Iterations longer than the window -> no full iteration of notice.
        assert warning_iterations(180.0) == 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            warning_iterations(0.0)
        with pytest.raises(ValueError):
            warning_iterations(1.0, warning_seconds=-1)
