"""Membership view: topology re-derivation and residual folding.

Includes the non-divisible shrink/grow cases the elastic trainer relies
on: an 8x4 cluster losing a node must yield a *valid* 7x4 HiTopKComm
hierarchy (stream groups, node groups, shard-compatible residuals) even
though 7 is not a power of two and shard sizes are uneven.
"""

import numpy as np
import pytest

from repro.cluster.topology import ClusterTopology
from repro.comm.hitopkcomm import HiTopKComm
from repro.elastic.membership import MembershipView, fold_residuals
from repro.utils.partition import chunk_bounds
from repro.utils.seeding import new_rng


class TestMembershipView:
    def test_initial_state(self):
        view = MembershipView(4, 2)
        assert view.live_nodes == (0, 1, 2, 3)
        assert view.world_size == 8
        assert view.epoch == 0

    def test_revoke_renumbers_densely(self):
        view = MembershipView(4, 2)
        view.revoke(1)
        assert view.live_nodes == (0, 2, 3)
        topo = view.topology()
        assert topo.num_nodes == 3 and topo.world_size == 6
        assert view.node_index(2) == 1  # dense index shifted down
        assert view.epoch == 1

    def test_revoke_default_picks_youngest(self):
        view = MembershipView(3, 2)
        assert view.revoke() == 2

    def test_revoke_with_rng_picks_live_node(self):
        view = MembershipView(5, 2)
        victim = view.revoke(rng=new_rng(0))
        assert victim not in view.live_nodes

    def test_revoke_below_min_rejected(self):
        view = MembershipView(2, 2, min_nodes=2)
        with pytest.raises(ValueError, match="min_nodes"):
            view.revoke()

    def test_revoke_dead_node_rejected(self):
        view = MembershipView(3, 2)
        view.revoke(1)
        with pytest.raises(KeyError):
            view.revoke(1)

    def test_join_gets_fresh_id(self):
        view = MembershipView(3, 2)
        view.revoke(2)
        new_id = view.join()
        assert new_id == 3  # ids are never recycled
        assert view.live_nodes == (0, 1, 3)
        assert view.world_size == 6

    def test_network_uses_preset_links(self):
        view = MembershipView(2, 4, instance="aws")
        net = view.network()
        assert net.topology.world_size == 8
        assert "AWS" in net.inter.name

    def test_reshard_tracks_world_size(self):
        view = MembershipView(3, 2)
        x, y = np.arange(60).reshape(30, 2), np.arange(30)
        assert len(view.reshard(x, y)) == 6
        view.revoke()
        shards = view.reshard(x, y)
        assert len(shards) == 4
        assert sum(len(sx) for sx, _ in shards) == 30


class TestHierarchyRederivation:
    """World-size changes must produce valid HiTopKComm hierarchies."""

    @pytest.mark.parametrize("old_m,new_m", [(8, 7), (7, 9), (8, 5)])
    def test_shrink_grow_non_divisible(self, old_m, new_m):
        n = 4
        view = MembershipView(old_m, n)
        while view.num_nodes > new_m:
            view.revoke()
        while view.num_nodes < new_m:
            view.join()
        net = view.network()
        topo = net.topology
        assert topo.num_nodes == new_m and topo.gpus_per_node == n
        # The stream/node group decomposition covers every rank once.
        stream_ranks = sorted(r for group in topo.iter_stream_groups() for r in group)
        node_ranks = sorted(r for group in topo.iter_node_groups() for r in group)
        assert stream_ranks == node_ranks == list(range(new_m * n))

        # A rebuilt scheme aggregates correctly at the new world size.
        scheme = HiTopKComm(net, density=0.5)
        rng = new_rng(1)
        grads = [rng.normal(size=37) for _ in range(topo.world_size)]  # 37 % 4 != 0
        result = scheme.aggregate(grads, rng=rng)
        assert len(result.outputs) == topo.world_size
        for out in result.outputs[1:]:
            np.testing.assert_array_equal(out, result.outputs[0])


class TestFoldResiduals:
    def _shard_residuals(self, topo: ClusterTopology, d: int, rng) -> dict:
        bounds = chunk_bounds(d, topo.gpus_per_node)
        residuals = {}
        for rank in range(topo.world_size):
            start, end = bounds[topo.local_rank_of(rank)]
            residuals[rank] = rng.normal(size=end - start)
        return residuals

    def test_shrink_preserves_mass_8x4_to_7x4(self, rng):
        d = 37  # uneven shards: chunk sizes 10, 9, 9, 9
        old = ClusterTopology(8, 4)
        new = ClusterTopology(7, 4)
        residuals = self._shard_residuals(old, d, rng)
        total_before = sum(float(np.sum(r)) for r in residuals.values())
        folded = fold_residuals(residuals, old, new)
        assert set(folded) == set(range(new.world_size))
        total_after = sum(float(np.sum(r)) for r in folded.values())
        assert total_after == pytest.approx(total_before)
        # Shapes stay shard-compatible (n unchanged -> same chunk split).
        bounds = chunk_bounds(d, 4)
        for rank, buf in folded.items():
            start, end = bounds[new.local_rank_of(rank)]
            assert buf.shape == (end - start,)
        # Node 7's buffers folded onto node 0 (7 % 7 == 0): doubled mass.
        for local in range(4):
            np.testing.assert_allclose(
                folded[new.rank(0, local)],
                residuals[old.rank(0, local)] + residuals[old.rank(7, local)],
            )

    def test_grow_keeps_buffers_and_leaves_new_ranks_empty(self, rng):
        old = ClusterTopology(7, 4)
        new = ClusterTopology(8, 4)
        residuals = self._shard_residuals(old, 37, rng)
        folded = fold_residuals(residuals, old, new)
        assert set(folded) == set(range(old.world_size))  # newcomers start clean
        for rank, buf in residuals.items():
            np.testing.assert_array_equal(folded[rank], buf)

    def test_flat_full_d_residuals_fold_by_rank(self, rng):
        old = ClusterTopology(4, 2)
        new = ClusterTopology(3, 2)
        residuals = {rank: rng.normal(size=50) for rank in range(8)}
        folded = fold_residuals(residuals, old, new)
        assert set(folded) == set(range(6))
        np.testing.assert_allclose(folded[0], residuals[0] + residuals[6])
        np.testing.assert_allclose(folded[2], residuals[2])

    def test_gpus_per_node_change_rejected(self, rng):
        with pytest.raises(ValueError, match="gpus_per_node"):
            fold_residuals({}, ClusterTopology(4, 4), ClusterTopology(4, 2))

    def test_string_keys_pass_through(self, rng):
        buf = rng.normal(size=5)
        folded = fold_residuals(
            {"custom": buf}, ClusterTopology(2, 2), ClusterTopology(1, 2)
        )
        np.testing.assert_array_equal(folded["custom"], buf)
        assert folded["custom"] is not buf  # defensive copy
