"""PTO-LARS / PTO-LAMB: bit-equality with the serial computations."""

import numpy as np
import pytest

from repro.optim.lars import lars_coefficients
from repro.pto.lars_pto import lamb_trust_ratios_pto, lars_learning_rates_pto


@pytest.fixture
def layers(rng):
    sizes = (8, 20, 4, 16, 30, 2, 12, 6, 10, 24)
    weights = [rng.normal(size=s) for s in sizes]
    grads = [rng.normal(size=s) for s in sizes]
    return weights, grads


class TestLarsPTO:
    def test_equals_serial_lars(self, small_cluster, layers):
        weights, grads = layers
        serial = lars_coefficients(weights, grads, eta=0.1)
        result = lars_learning_rates_pto(small_cluster, weights, grads, eta=0.1)
        np.testing.assert_allclose(result.result, serial)

    def test_respects_hyperparameters(self, small_cluster, layers):
        weights, grads = layers
        a = lars_learning_rates_pto(
            small_cluster, weights, grads, eta=0.1, trust_coefficient=0.01
        ).result
        b = lars_learning_rates_pto(
            small_cluster, weights, grads, eta=0.1, trust_coefficient=0.001
        ).result
        np.testing.assert_allclose(a, 10 * b)

    def test_resnet_shape_assignment(self, testbed, rng):
        # 161 layers over 128 GPUs, like the paper's example.
        weights = [rng.normal(size=4) for _ in range(161)]
        grads = [rng.normal(size=4) for _ in range(161)]
        result = lars_learning_rates_pto(testbed, weights, grads, eta=0.1)
        assert result.result.size == 161
        counts = [len(a) for a in result.assignment]
        assert sum(counts) == 161
        assert max(counts) == 2  # first GPUs take 2 layers

    def test_length_mismatch(self, small_cluster, rng):
        with pytest.raises(ValueError):
            lars_learning_rates_pto(
                small_cluster, [rng.normal(size=3)], [], eta=0.1
            )

    def test_balanced_variant_same_values(self, small_cluster, layers):
        weights, grads = layers
        a = lars_learning_rates_pto(small_cluster, weights, grads, eta=0.1).result
        b = lars_learning_rates_pto(
            small_cluster, weights, grads, eta=0.1, balanced=True
        ).result
        np.testing.assert_allclose(a, b)


class TestLambPTO:
    def test_trust_ratios(self, small_cluster, rng):
        weights = [rng.normal(size=8) for _ in range(6)]
        updates = [rng.normal(size=8) for _ in range(6)]
        result = lamb_trust_ratios_pto(small_cluster, weights, updates)
        expected = [
            np.linalg.norm(w) / np.linalg.norm(u) for w, u in zip(weights, updates)
        ]
        np.testing.assert_allclose(result.result, expected)

    def test_degenerate_norms_give_unity(self, small_cluster):
        weights = [np.zeros(4)]
        updates = [np.ones(4)]
        result = lamb_trust_ratios_pto(small_cluster, weights, updates)
        assert result.result[0] == 1.0

    def test_length_mismatch(self, small_cluster, rng):
        with pytest.raises(ValueError):
            lamb_trust_ratios_pto(small_cluster, [rng.normal(size=3)], [])
