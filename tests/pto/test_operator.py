"""Generic parallel tensor operator (paper §4.2, Eqs. 12-14)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cloud_presets import make_cluster, paper_testbed
from repro.pto.operator import ParallelTensorOperator, PTOCostModel


def norm_op(layer):
    return float(np.linalg.norm(layer))


class TestFunctionalEquality:
    def test_equals_serial(self, small_cluster, rng):
        layers = [rng.normal(size=s) for s in (3, 10, 7, 1, 20, 5, 8, 2, 9)]
        pto = ParallelTensorOperator(small_cluster, norm_op)
        serial = pto.run_serial(layers)
        result = pto.run(layers, layer_sizes=[a.size for a in layers])
        np.testing.assert_allclose(result.result, serial)

    def test_all_workers_get_identical_output(self, small_cluster, rng):
        layers = [rng.normal(size=4) for _ in range(10)]
        result = ParallelTensorOperator(small_cluster, norm_op).run(layers)
        for out in result.outputs[1:]:
            np.testing.assert_array_equal(out, result.outputs[0])

    @given(
        n_layers=st.integers(1, 40),
        m=st.integers(1, 4),
        n=st.integers(1, 4),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_equality_any_topology(self, n_layers, m, n, seed):
        rng = np.random.default_rng(seed)
        net = make_cluster(m, "tencent", gpus_per_node=n)
        layers = [rng.normal(size=rng.integers(1, 16)) for _ in range(n_layers)]
        pto = ParallelTensorOperator(net, norm_op)
        np.testing.assert_allclose(
            pto.run(layers, layer_sizes=[a.size for a in layers]).result,
            pto.run_serial(layers),
        )

    def test_balanced_assignment_same_result(self, small_cluster, rng):
        layers = [rng.normal(size=s) for s in (100, 1, 1, 100, 1, 1)]
        contiguous = ParallelTensorOperator(small_cluster, norm_op).run(
            layers, layer_sizes=[a.size for a in layers]
        )
        balanced = ParallelTensorOperator(small_cluster, norm_op, balanced=True).run(
            layers, layer_sizes=[a.size for a in layers]
        )
        np.testing.assert_allclose(balanced.result, contiguous.result)

    def test_more_workers_than_layers(self, rng):
        net = make_cluster(4, "tencent", gpus_per_node=8)  # 32 workers
        layers = [rng.normal(size=3) for _ in range(5)]
        result = ParallelTensorOperator(net, norm_op).run(layers)
        assert result.result.size == 5

    def test_layer_sizes_mismatch(self, small_cluster, rng):
        pto = ParallelTensorOperator(small_cluster, norm_op)
        with pytest.raises(ValueError):
            pto.run([rng.normal(size=3)], layer_sizes=[3, 4])


class TestCostModel:
    def test_pto_wins_on_paper_profiles(self):
        # §5.4: PTO accelerates LARS on the 128-GPU testbed.
        net = paper_testbed()
        cost = PTOCostModel()
        sizes = [100_000] * 161
        assert cost.worthwhile(sizes, net)
        assert 1.2 < cost.speedup(sizes, net) < 4.0

    def test_pto_loses_on_single_worker(self):
        net = make_cluster(1, "tencent", gpus_per_node=1)
        cost = PTOCostModel()
        sizes = [1000] * 50
        # One worker: same compute, extra gather overhead.
        assert not cost.worthwhile(sizes, net)

    def test_serial_time_scales_with_layers(self):
        cost = PTOCostModel()
        assert cost.serial_time([100] * 200) > cost.serial_time([100] * 100)

    def test_pto_compute_phase_shrinks_with_workers(self):
        cost = PTOCostModel()
        sizes = [1000] * 128
        small = make_cluster(2, "tencent", gpus_per_node=4)
        large = paper_testbed()
        assert cost.pto_time(sizes, large) < cost.pto_time(sizes, small)
