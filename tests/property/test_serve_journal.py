"""Property: the serve durability pair — WAL replay and crash recovery.

Two invariants carry the whole ``repro serve`` crash-safety story, so
both get hypothesis-driven random streams rather than hand-picked
examples:

* **Replay determinism** — for any sequence of admissible ops, feeding
  the journal's input records into a fresh engine reproduces the state
  digest byte-for-byte (the daemon replays its own journal on every
  restart, so this is the recovery correctness contract).
* **No acknowledged loss** — crash the runtime after any prefix of any
  op stream, restart against the same state directory, resend from the
  first unacknowledged op (the at-least-once client), and every
  acknowledged submission is still present with every duplicate
  deduplicated (exactly-once apply via op ids).
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")  # optional dep; CI installs it in brain-smoke

import shutil
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.config import ServeConfig
from repro.serve.daemon import ServeRuntime
from repro.serve.engine import ServeEngine
from repro.serve.journal import scan_journal

CONFIG = ServeConfig.from_dict(
    {
        "name": "prop",
        "seed": 3,
        "cluster": {"instance": "tencent", "num_nodes": 2, "gpus_per_node": 2},
        "policy": "bin-pack",
        "queue_limit": 64,
        "snapshot_every": 3,
    }
)

# Small, always-admissible job shapes: unique names are assigned later.
job_bodies = st.fixed_dictionaries(
    {
        "iterations": st.integers(10, 60),
        "arrival_seconds": st.floats(0.0, 50.0, allow_nan=False),
        "priority": st.integers(0, 2),
    }
)

# An op stream: submits and monotonic-enough ticks (the engine clamps
# arrivals, and `until` in the past is rejected — so draw offsets).
op_kinds = st.lists(
    st.one_of(
        st.tuples(st.just("submit"), job_bodies),
        st.tuples(st.just("tick"), st.floats(1.0, 40.0, allow_nan=False)),
    ),
    min_size=1,
    max_size=12,
)


def build_ops(kinds) -> list[dict]:
    ops, clock, jobs = [], 0.0, 0
    for kind, value in kinds:
        if kind == "submit":
            jobs += 1
            ops.append({"op": "submit", "job": {"name": f"j{jobs}", **value}})
        else:
            clock += value
            ops.append({"op": "tick", "until": round(clock, 3)})
    ops.append({"op": "drain"})
    for index, op in enumerate(ops):
        op["id"] = index + 1
    return ops


class TestReplayDeterminism:
    @given(kinds=op_kinds)
    @settings(max_examples=25, deadline=None)
    def test_journal_replay_reproduces_the_digest(self, kinds):
        ops = build_ops(kinds)
        state_dir = tempfile.mkdtemp(prefix="prop-journal-")
        try:
            runtime = ServeRuntime(CONFIG, state_dir)
            for op in ops:
                ack = runtime.handle(op)
                assert ack.get("ok"), ack
            digest = runtime.engine.state_digest()
            payload = runtime.engine.payload()
            runtime.close()

            # Journal-only replay into a fresh engine (ignore snapshots:
            # the journal alone must suffice).
            scan = scan_journal(f"{state_dir}/journal.bin")
            assert not scan.torn
            clean = ServeEngine(CONFIG)
            for record in scan.records:
                if record.get("kind") == "input":
                    clean.apply_op(record["op"])
            assert clean.state_digest() == digest
            assert clean.payload() == payload
        finally:
            shutil.rmtree(state_dir, ignore_errors=True)


class TestNoAcknowledgedLoss:
    @given(kinds=op_kinds, data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_crash_after_any_prefix_loses_no_acked_submission(self, kinds, data):
        ops = build_ops(kinds)
        cut = data.draw(st.integers(0, len(ops) - 1), label="crash after op #")
        state_dir = tempfile.mkdtemp(prefix="prop-crash-")
        try:
            runtime = ServeRuntime(CONFIG, state_dir)
            acked_submits = []
            for op in ops[:cut]:
                ack = runtime.handle(op)
                assert ack.get("ok"), ack
                if op["op"] == "submit":
                    acked_submits.append(op["job"]["name"])
            # Crash: no clean shutdown, no final snapshot — the journal
            # (fsynced before each ack) is all that is promised.
            runtime.close()

            recovered = ServeRuntime(CONFIG, state_dir)
            for name in acked_submits:
                assert name in recovered.engine.records, (
                    f"acked submission {name!r} lost after crash at op {cut}"
                )
            # At-least-once resend from the first unacked op: applied
            # ops dedup, the rest apply — the stream always completes.
            duplicates = 0
            for op in ops[cut:]:
                ack = recovered.handle(op)
                assert ack.get("ok"), ack
                duplicates += bool(ack.get("duplicate"))
            assert duplicates == 0  # everything past `cut` was never journaled
            assert len(recovered.engine.done) == len(
                [op for op in ops if op["op"] == "submit"]
            )
            recovered.close()
        finally:
            shutil.rmtree(state_dir, ignore_errors=True)
