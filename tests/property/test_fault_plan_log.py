"""Property: random fault plans resolve deterministically and replay to
valid, digest-stable fault logs.

The fault subsystem's contract is two-layered.  At *plan* time, any
valid ``FaultsConfig`` resolves to one canonical :class:`FaultPlan`:
flap trains expanded, events sorted, kinds canonicalised — and the
resolution is a pure function (same config + seed in, same plan out).
At *replay* time, driving that plan through the scheduler produces a
:class:`FaultLog` whose entries obey the schema (known phases,
monotonic ``seq``, non-negative virtual ``t``) and whose canonical
digest is identical on a repeat run — the bit-identical-replay
guarantee every drill baseline and CI digest pin rests on.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")  # optional dep; CI installs it in brain-smoke

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.config import SchedConfig
from repro.api.facade import run_sched
from repro.faults.log import PHASES
from repro.faults.plan import FaultPlan
from repro.faults.registry import FAULTS

# Sibling module; pytest's prepend import mode puts this directory on
# sys.path, so the strategy layer is shared without a package __init__.
from test_config_roundtrip import SCHED_FAULT_KINDS, faults_dicts


class TestFaultPlanResolution:
    @given(data=faults_dicts(SCHED_FAULT_KINDS), seed=st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_plan_is_deterministic(self, data, seed):
        first = FaultPlan.from_config(data, seed=seed, target="sched")
        second = FaultPlan.from_config(data, seed=seed, target="sched")
        assert first == second

    @given(data=faults_dicts(SCHED_FAULT_KINDS), seed=st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_events_sorted_expanded_canonical(self, data, seed):
        plan = FaultPlan.from_config(data, seed=seed, target="sched")
        keys = [(event.at, event.fault_id) for event in plan.events]
        assert keys == sorted(keys)
        assert len(plan.events) == sum(entry["repeat"] for entry in data["events"])
        for event in plan.events:
            assert FAULTS.canonical(event.kind) == event.kind
            assert event.at >= 0 and event.duration >= 0

    @given(data=faults_dicts(SCHED_FAULT_KINDS))
    @settings(max_examples=40, deadline=None)
    def test_plan_seed_derivation(self, data):
        plan = FaultPlan.from_config(data, seed=11, target="sched")
        if data["seed"] is not None:
            assert plan.seed == data["seed"]
        else:
            # Derived from the run seed — still a pure function of it.
            assert plan.seed == FaultPlan.from_config(data, seed=11, target="sched").seed


class TestFaultLogReplay:
    @given(data=faults_dicts(SCHED_FAULT_KINDS))
    @settings(max_examples=8, deadline=None)
    def test_log_valid_and_digest_stable(self, data):
        config_data = {
            "name": "prop-faults",
            "seed": 3,
            "cluster": {"instance": "tencent", "num_nodes": 4, "gpus_per_node": 2},
            "policies": ["fault-aware"],
            "jobs": [
                {"name": "a", "profile": "resnet50", "iterations": 120, "max_nodes": 2},
                {
                    "name": "b",
                    "profile": "vgg19",
                    "scheme": "dense",
                    "iterations": 80,
                    "arrival_seconds": 10.0,
                    "max_nodes": 2,
                },
            ],
            "faults": data,
        }
        config = SchedConfig.from_dict(config_data)
        report = next(iter(run_sched(config).values()))
        log = report.fault_log
        assert log is not None
        entries = log["entries"]
        for index, entry in enumerate(entries):
            assert entry["phase"] in PHASES
            assert entry["seq"] == index
            assert entry["t"] >= 0
            assert isinstance(entry["kind"], str)
        # Same plan, fresh simulation: the canonical digest must not move.
        repeat = next(iter(run_sched(config).values()))
        assert repeat.fault_log["digest"] == log["digest"]
        assert repeat.fault_log["entries"] == entries
