"""Property: random config dicts round-trip losslessly.

``RunConfig``/``SchedConfig`` are the declarative surface of the whole
simulator — sweep grids, CLI ``--set`` overrides, and BENCH payload
provenance all assume ``from_dict`` and ``to_dict`` are exact inverses.
Hypothesis drives randomly-drawn *valid* config dicts (every registry
name, every optional section including ``brain``, floats and all)
through the cycle and asserts nothing is lost, renamed, or coerced:

* ``from_dict(d)`` equals ``from_dict(to_dict(from_dict(d)))`` —
  dataclass equality, so every field survives;
* the second ``to_dict`` is *identical* to the first — serialisation is
  a fixed point after one normalisation;
* ``to_json`` is stable across the cycle (sorted keys, so this is the
  byte-level contract the determinism suites compare).
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")  # optional dep; CI installs it in brain-smoke

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import registry
from repro.api.config import RunConfig, SchedConfig
from repro.brain.base import BRAINS
from repro.sched.policies import POLICIES

# -- section strategies (valid by construction) -----------------------------

cluster_dicts = st.fixed_dictionaries(
    {
        "instance": st.sampled_from(sorted(registry.CLUSTERS.available())),
        "num_nodes": st.integers(1, 8),
        "gpus_per_node": st.integers(1, 8),
    }
)

comm_dicts = st.fixed_dictionaries(
    {
        "scheme": st.sampled_from(sorted(registry.SCHEMES.available())),
        "density": st.floats(0.001, 1.0, allow_nan=False),
        "wire_bytes": st.sampled_from([2, 4]),
        "n_samplings": st.integers(1, 50),
    }
)

train_dicts = st.fixed_dictionaries(
    {
        "model": st.sampled_from(sorted(registry.MODELS.available())),
        "epochs": st.integers(1, 4),
        "num_samples": st.integers(1, 512),
        "local_batch": st.integers(1, 64),
        "lr": st.floats(1e-4, 1.0, allow_nan=False),
        "momentum": st.floats(0.0, 0.99, allow_nan=False),
        "data_seed": st.none() | st.integers(0, 2**31 - 1),
    }
)

elastic_dicts = st.fixed_dictionaries(
    {
        "iterations": st.integers(1, 50),
        "schedule": st.sampled_from(["poisson", "none"]),
        "rate": st.floats(0.0, 0.1, allow_nan=False),
        "warned_fraction": st.floats(0.0, 1.0, allow_nan=False),
        "rejoin_delay": st.integers(0, 30),
        "min_nodes": st.just(1),  # always <= cluster.num_nodes
        "checkpoint_every": st.integers(1, 30),
        "compute_seconds": st.floats(0.01, 1.0, allow_nan=False),
        "sigma": st.floats(0.0, 0.5, allow_nan=False),
    }
)


def fault_event_dicts(kinds: list[str]) -> st.SearchStrategy:
    """One valid fault-event mapping for any of ``kinds``."""
    return st.fixed_dictionaries(
        {
            "kind": st.sampled_from(kinds),
            "at": st.floats(0.0, 500.0, allow_nan=False),
            "duration": st.floats(0.0, 120.0, allow_nan=False),
            "scale": st.floats(0.05, 0.95, allow_nan=False),
            "stretch": st.floats(1.1, 5.0, allow_nan=False),
            "fraction": st.floats(0.1, 1.0, allow_nan=False),
            "node": st.none() | st.integers(0, 2),
            "repeat": st.integers(1, 3),
            "period": st.floats(1.0, 60.0, allow_nan=False),
            "loss_rate": st.floats(0.0, 0.5, allow_nan=False),
            "jitter": st.floats(0.0, 2.0, allow_nan=False),
            "jitter_dist": st.sampled_from(["exp", "lognormal"]),
        }
    )


def faults_dicts(kinds: list[str]) -> st.SearchStrategy:
    return st.fixed_dictionaries(
        {
            "seed": st.none() | st.integers(0, 2**31 - 1),
            "events": st.lists(fault_event_dicts(kinds), min_size=1, max_size=4),
            "checkpoint_iterations": st.integers(1, 50),
            "checkpoint_timeout": st.floats(0.0, 10.0, allow_nan=False),
            "quarantine_threshold": st.floats(0.5, 5.0, allow_nan=False),
            "health_half_life": st.floats(10.0, 600.0, allow_nan=False),
            "probe_cooldown": st.floats(0.0, 600.0, allow_nan=False),
        }
    )


RUN_FAULT_KINDS = ["node-crash", "straggler", "gray-net", "disk-slow"]
SCHED_FAULT_KINDS = ["node-crash", "straggler", "gray-net", "nic-degrade", "az-reclaim"]

brain_dicts = st.fixed_dictionaries(
    {
        "name": st.sampled_from(sorted(BRAINS.available())),
        "interval": st.floats(1.0, 600.0, allow_nan=False),
        "min_dwell": st.floats(0.0, 600.0, allow_nan=False),
        "migrate_suspicion": st.floats(0.05, 1.0, allow_nan=False),
        "grow_efficiency": st.floats(0.05, 1.0, allow_nan=False),
        "shrink_efficiency": st.floats(0.0, 0.95, allow_nan=False),
        "rollback_weight": st.floats(0.0, 5.0, allow_nan=False),
        "max_actions": st.integers(1, 8),
    }
)

run_config_dicts = st.fixed_dictionaries(
    {
        "name": st.sampled_from(["run", "prop", "a-b_c.1"]),
        "seed": st.integers(0, 2**31 - 1),
        "cluster": cluster_dicts,
        "comm": comm_dicts,
        "train": train_dicts,
    },
    optional={
        "elastic": elastic_dicts,
    },
).flatmap(
    # faults require an elastic section; attach them only when one exists.
    lambda data: st.just(data)
    if "elastic" not in data
    else st.fixed_dictionaries(
        {key: st.just(value) for key, value in data.items()},
        optional={"faults": faults_dicts(RUN_FAULT_KINDS)},
    )
)


def job_dicts(index: int) -> st.SearchStrategy:
    return st.fixed_dictionaries(
        {
            "name": st.just(f"job-{index}"),
            "profile": st.sampled_from(["resnet50", "vgg19", "transformer"]),
            "scheme": st.sampled_from(sorted(registry.SCHEMES.available())),
            "density": st.floats(0.001, 1.0, allow_nan=False),
            "iterations": st.integers(1, 400),
            "priority": st.integers(0, 3),
            "deadline_seconds": st.none() | st.floats(60.0, 5000.0, allow_nan=False),
            "preference": st.sampled_from(["spot", "on-demand"]),
            "min_nodes": st.just(1),  # always <= cluster.num_nodes
            "max_nodes": st.integers(1, 4),
            "arrival_seconds": st.floats(0.0, 300.0, allow_nan=False),
        }
    )


sched_config_dicts = st.fixed_dictionaries(
    {
        "name": st.sampled_from(["sched", "prop-sched"]),
        "seed": st.integers(0, 2**31 - 1),
        "cluster": cluster_dicts,
        "policies": st.lists(
            st.sampled_from(sorted(POLICIES.available())),
            min_size=1,
            max_size=3,
            unique=True,
        ),
        "jobs": st.integers(1, 3).flatmap(
            lambda n: st.tuples(*[job_dicts(i) for i in range(n)]).map(list)
        ),
    },
    optional={
        "faults": faults_dicts(SCHED_FAULT_KINDS),
        "brain": brain_dicts,
    },
)


# -- the properties ---------------------------------------------------------


class TestRunConfigRoundTrip:
    @given(data=run_config_dicts)
    @settings(max_examples=60, deadline=None)
    def test_lossless(self, data):
        config = RunConfig.from_dict(data)
        cycled = RunConfig.from_dict(config.to_dict())
        assert cycled == config
        assert cycled.to_dict() == config.to_dict()
        assert cycled.to_json() == config.to_json()

    @given(data=run_config_dicts)
    @settings(max_examples=25, deadline=None)
    def test_input_values_survive(self, data):
        emitted = RunConfig.from_dict(data).to_dict()
        # Every scalar the caller wrote is still there, uncoerced (the
        # emitted dict may add defaulted fields the input omitted).
        assert emitted["name"] == data["name"]
        assert emitted["seed"] == data["seed"]
        for section in ("cluster", "comm", "train"):
            for key, value in data[section].items():
                assert emitted[section][key] == value, (section, key)


class TestSchedConfigRoundTrip:
    @given(data=sched_config_dicts)
    @settings(max_examples=60, deadline=None)
    def test_lossless(self, data):
        config = SchedConfig.from_dict(data)
        cycled = SchedConfig.from_dict(config.to_dict())
        assert cycled == config
        assert cycled.to_dict() == config.to_dict()
        assert cycled.to_json() == config.to_json()

    @given(data=sched_config_dicts)
    @settings(max_examples=25, deadline=None)
    def test_optional_sections_survive(self, data):
        emitted = SchedConfig.from_dict(data).to_dict()
        assert ("brain" in emitted) == ("brain" in data)
        assert ("faults" in emitted) == ("faults" in data)
        if "brain" in data:
            assert emitted["brain"] == data["brain"]
        assert [job["name"] for job in emitted["jobs"]] == [
            job["name"] for job in data["jobs"]
        ]
