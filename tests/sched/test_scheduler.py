"""Scheduler behaviour: placement, preemption, autoscaling, accounting."""

import pytest

from repro.sched import JobSpec, MultiTenantScheduler, compare_policies
from repro.sched.scheduler import PAYLOAD_COLUMNS, payload_for_reports


def make_scheduler(**kwargs):
    defaults = dict(num_nodes=3, instance="tencent", gpus_per_node=8, policy="bin-pack")
    defaults.update(kwargs)
    return MultiTenantScheduler(**defaults)


class TestValidation:
    def test_duplicate_names_rejected(self):
        jobs = [JobSpec(name="a"), JobSpec(name="a")]
        with pytest.raises(ValueError, match="unique"):
            make_scheduler().run(jobs)

    def test_oversized_job_rejected(self):
        with pytest.raises(ValueError, match="GPUs/node"):
            make_scheduler(gpus_per_node=4).run([JobSpec(name="a", gpus_per_node=8)])
        with pytest.raises(ValueError, match="nodes"):
            make_scheduler(num_nodes=2).run(
                [JobSpec(name="a", min_nodes=3, max_nodes=3)]
            )

    def test_empty_queue_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            make_scheduler().run([])

    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError, match="bin-pack"):
            make_scheduler(policy="warpdrive")

    def test_duplicate_policies_rejected(self):
        # "pack" is an alias of "bin-pack": one report key, two runs.
        with pytest.raises(ValueError, match="duplicate"):
            compare_policies(
                [JobSpec(name="a", iterations=5)],
                ["bin-pack", "pack"],
                num_nodes=2,
            )

    def test_config_rejects_duplicate_and_unknown_job_fields(self):
        from repro.api.config import ConfigError, SchedConfig

        with pytest.raises(ConfigError, match="duplicate"):
            SchedConfig.from_dict(
                {"jobs": [{"name": "a"}], "policies": ["bin-pack", "pack"]}
            )
        # A scheme typo fails at validation, not mid-simulation.
        with pytest.raises(ConfigError, match="warp"):
            SchedConfig.from_dict({"jobs": [{"name": "a", "scheme": "warp"}]})


class TestBasicRuns:
    def test_single_job_completes(self):
        report = make_scheduler().run([JobSpec(name="solo", iterations=20)])
        (outcome,) = report.jobs
        assert outcome.status == "done"
        assert outcome.iterations == pytest.approx(20)
        assert outcome.queue_wait_s == 0.0
        assert outcome.contention_slowdown == pytest.approx(1.0)
        assert report.makespan_s > 0
        assert report.cluster_goodput_it_per_s > 0
        assert 0 < report.utilization <= 1

    def test_deterministic(self):
        jobs = [
            JobSpec(name="a", iterations=30, gpus_per_node=4, max_nodes=2),
            JobSpec(name="b", iterations=40, gpus_per_node=4, priority=1),
        ]
        r1 = make_scheduler().run(jobs)
        r2 = make_scheduler().run(jobs)
        assert [o.row() for o in r1.jobs] == [o.row() for o in r2.jobs]
        assert r1.summary() == r2.summary()

    def test_arrival_creates_queue_wait_when_full(self):
        # Job b arrives while a holds the whole cluster at min=max.
        jobs = [
            JobSpec(name="a", iterations=60, min_nodes=3, max_nodes=3),
            JobSpec(name="b", iterations=10, arrival_seconds=1.0),
        ]
        report = make_scheduler().run(jobs)
        b = next(o for o in report.jobs if o.job == "b")
        assert b.status == "done"
        assert b.queue_wait_s > 0
        assert report.mean_queue_wait_s > 0


class TestAutoscaling:
    def test_grow_on_idle_capacity_after_completion(self):
        # a (short) and b (long) fill the cluster; when a finishes, b
        # grows onto the freed nodes through its membership view.
        jobs = [
            JobSpec(name="a", iterations=5, min_nodes=1, max_nodes=1),
            JobSpec(name="b", iterations=400, min_nodes=1, max_nodes=3),
        ]
        report = make_scheduler().run(jobs)
        b = next(o for o in report.jobs if o.job == "b")
        assert b.status == "done"
        assert b.nodes == 3
        assert b.grows >= 1
        assert b.membership_epochs >= b.grows
        counts = [count for _, count in b.waypoints]
        assert counts[0] < counts[-1] == 3

    def test_grow_capped_at_max_nodes(self):
        report = make_scheduler().run(
            [JobSpec(name="a", iterations=10, min_nodes=1, max_nodes=2)]
        )
        (outcome,) = report.jobs
        assert outcome.nodes == 2


class TestPriorityPreemption:
    def _run(self):
        # low holds everything; the high-priority arrival needs one full
        # node, so low shrinks (warned, via its membership view).
        jobs = [
            JobSpec(name="low", iterations=300, priority=0, min_nodes=1, max_nodes=3),
            JobSpec(
                name="high",
                iterations=20,
                priority=5,
                arrival_seconds=10.0,
                min_nodes=1,
                max_nodes=1,
            ),
        ]
        return make_scheduler().run(jobs)

    def test_high_priority_preempts_via_scale_events(self):
        report = self._run()
        low = next(o for o in report.jobs if o.job == "low")
        high = next(o for o in report.jobs if o.job == "high")
        assert high.status == "done"
        assert high.queue_wait_s == 0.0  # preemption admitted it instantly
        assert low.shrinks >= 1
        assert low.membership_epochs >= low.shrinks
        # The shrink shows in the allocation trace as a node-count drop.
        counts = [count for _, count in low.waypoints]
        assert min(counts) < counts[0]

    def test_equal_priority_waits_instead_of_preempting(self):
        jobs = [
            JobSpec(name="low", iterations=60, priority=1, min_nodes=3, max_nodes=3),
            JobSpec(
                name="peer",
                iterations=10,
                priority=1,
                arrival_seconds=5.0,
                min_nodes=1,
                max_nodes=1,
            ),
        ]
        report = make_scheduler().run(jobs)
        low = next(o for o in report.jobs if o.job == "low")
        peer = next(o for o in report.jobs if o.job == "peer")
        assert low.shrinks == 0
        assert peer.queue_wait_s > 0

    def test_preemption_is_all_or_nothing(self):
        # The arrival needs two whole nodes but only one can ever be
        # freed (the other victim sits at its floor), so nobody shrinks:
        # freed capacity must not idle behind an inadmissible job.
        jobs = [
            JobSpec(name="flex", iterations=200, priority=0, min_nodes=1,
                    max_nodes=2, gpus_per_node=8),
            JobSpec(name="pinned", iterations=200, priority=0, min_nodes=1,
                    max_nodes=1, gpus_per_node=8),
            JobSpec(name="big", iterations=10, priority=9, arrival_seconds=1.0,
                    min_nodes=3, max_nodes=3, gpus_per_node=8),
        ]
        report = make_scheduler().run(jobs)
        by_job = {o.job: o for o in report.jobs}
        # flex could shed one node, but that alone can't admit big
        # (pinned is at its floor) — so no shrink happens at t=1.
        assert by_job["flex"].shrinks == 0
        assert by_job["pinned"].shrinks == 0
        assert by_job["big"].status == "done"
        assert by_job["big"].queue_wait_s > 0  # waited for completions

    def test_victims_never_shrink_below_min_nodes(self):
        jobs = [
            JobSpec(name="low", iterations=100, priority=0, min_nodes=2, max_nodes=3),
            JobSpec(
                name="big",
                iterations=10,
                priority=9,
                arrival_seconds=1.0,
                min_nodes=2,
                max_nodes=2,
            ),
        ]
        report = make_scheduler().run(jobs)
        low = next(o for o in report.jobs if o.job == "low")
        assert min(count for _, count in low.waypoints) >= 2

    def test_preempted_trace_replays_through_elastic_trainer(self):
        """Scheduler scale decisions drive the real ElasticTrainer."""
        import numpy as np

        from repro.elastic.elastic_trainer import ElasticTrainer
        from repro.models.nn.mlp import MLPClassifier
        from repro.train.synthetic import make_spiral_classification
        from repro.utils.seeding import new_rng

        report = self._run()
        low = next(o for o in report.jobs if o.job == "low")
        waypoints = list(low.waypoints)
        start_nodes = waypoints[0][1]
        # Rescale the iteration axis into a short training run while
        # preserving the node-count sequence.
        horizon = 30
        peak = max(it for it, _ in waypoints) or 1
        scaled = [
            (min(horizon - 1, int(it * (horizon - 10) / peak)), count)
            for it, count in waypoints
        ]
        from repro.elastic.events import TraceSchedule

        trace = TraceSchedule.from_deltas(scaled)

        rng = new_rng(0)
        x, y = make_spiral_classification(240, num_classes=4, rng=rng)
        model = MLPClassifier(input_dim=2, hidden=(12,), num_classes=4)
        trainer = ElasticTrainer(
            model,
            scheme="mstopk",
            density=0.1,
            num_nodes=start_nodes,
            gpus_per_node=2,
            min_nodes=1,
            seed=3,
            checkpoint_every=10,
        )
        run_report = trainer.run(
            np.asarray(x), np.asarray(y), iterations=horizon, local_batch=8,
            schedule=trace,
        )
        # The trainer's world-size history follows the scheduler's
        # allocation history (warned shrinks lose no work).
        assert run_report.useful_iterations == horizon
        assert run_report.revocations >= 1
        assert run_report.lost_iterations == 0  # all shrinks were warned
        expected_worlds = {count * 2 for _, count in scaled}
        assert expected_worlds <= set(run_report.world_sizes)
        assert run_report.world_sizes[0] == start_nodes * 2
        assert run_report.world_sizes[-1] == scaled[-1][1] * 2


class TestDeadlinesAndCost:
    def test_deadline_hit_and_miss(self):
        scheduler = make_scheduler()
        probe = scheduler.iteration_seconds(
            JobSpec(name="probe", iterations=1), nodes=2
        )
        # 100 iterations at 2 nodes: a generous deadline holds, an
        # impossible one is reported missed.
        jobs = [
            JobSpec(
                name="ok",
                iterations=100,
                deadline_seconds=probe * 1000,
                min_nodes=2,
                max_nodes=2,
            ),
            JobSpec(
                name="late",
                iterations=100,
                deadline_seconds=probe,
                min_nodes=1,
                max_nodes=1,
            ),
        ]
        report = make_scheduler().run(jobs)
        by_job = {o.job: o for o in report.jobs}
        assert by_job["ok"].deadline_met is True
        assert by_job["late"].deadline_met is False
        assert report.deadline_hit_rate == pytest.approx(0.5)

    def test_spot_cheaper_than_on_demand(self):
        spot = make_scheduler().run(
            [JobSpec(name="a", iterations=50, preference="spot")]
        )
        on_demand = make_scheduler().run(
            [JobSpec(name="a", iterations=50, preference="on-demand")]
        )
        assert spot.total_cost_usd < on_demand.total_cost_usd
        assert spot.makespan_s == on_demand.makespan_s

    def test_gpu_slice_bills_fractionally(self):
        whole = make_scheduler().run(
            [JobSpec(name="a", iterations=50, max_nodes=1)]
        )
        half = make_scheduler().run(
            [JobSpec(name="a", iterations=50, max_nodes=1, gpus_per_node=4)]
        )
        assert half.total_cost_usd < whole.total_cost_usd


class TestPayload:
    def test_bench_payload_schema(self):
        reports = compare_policies(
            [
                JobSpec(name="a", iterations=20, gpus_per_node=4, max_nodes=2),
                JobSpec(name="b", iterations=20, gpus_per_node=4, max_nodes=2),
                JobSpec(name="c", iterations=10, arrival_seconds=5.0, priority=2),
            ],
            ["bin-pack", "spread"],
            num_nodes=3,
            gpus_per_node=8,
            name="unit",
        )
        payload = payload_for_reports(list(reports.values()), bench="sched_unit")
        assert payload["bench"] == "sched_unit"
        assert payload["schema_version"] == 1
        assert payload["structured"] is True
        assert payload["columns"] == PAYLOAD_COLUMNS
        assert len(payload["rows"]) == 6  # 3 jobs x 2 policies
        for row in payload["rows"]:
            assert len(row) == len(PAYLOAD_COLUMNS)
            for cell in row:
                assert cell is None or isinstance(cell, (str, int, float, bool))
        assert payload["meta"]["policies"] == ["bin-pack", "spread"]
        assert set(payload["meta"]["summary"]) == {"bin-pack", "spread"}
        assert payload["text"].endswith("\n")

    def test_single_report_payload_and_format(self):
        report = make_scheduler().run([JobSpec(name="a", iterations=10)])
        payload = report.bench_payload()
        assert payload["bench"] == "sched_sched"
        assert "a" in report.format()
