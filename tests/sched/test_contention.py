"""Bandwidth contention: shared links degrade co-located jobs realistically."""

import pytest

from repro.cluster.cloud_presets import make_cluster
from repro.models.profiles import vgg19_profile
from repro.perf.iteration_model import IterationModel, SchemeKind
from repro.sched import JobSpec, MultiTenantScheduler


class TestContendedNetwork:
    def test_splits_inter_bandwidth(self):
        network = make_cluster(4, "tencent")
        shared = network.contended(2)
        assert shared.inter.bandwidth == pytest.approx(network.inter.bandwidth / 2)
        assert shared.inter.alpha == network.inter.alpha

    def test_intra_link_untouched(self):
        network = make_cluster(4, "tencent")
        assert network.contended(3).intra == network.intra

    def test_identity_and_validation(self):
        network = make_cluster(2, "tencent")
        assert network.contended(1) is network
        with pytest.raises(ValueError, match="tenants"):
            network.contended(0.5)

    def test_fractional_tenancy(self):
        network = make_cluster(2, "tencent")
        part_time = network.contended(1.5)
        assert part_time.inter.bandwidth == pytest.approx(
            network.inter.bandwidth / 1.5
        )


class TestContendedIterationModel:
    def _model(self, scheme, contention):
        return IterationModel(
            network=make_cluster(2, "tencent"),
            profile=vgg19_profile(),
            scheme=scheme,
            resolution=224,
            local_batch=64,
            density=0.001,
            contention=contention,
        )

    @pytest.mark.parametrize(
        "scheme",
        [
            SchemeKind.DENSE_TREE,
            SchemeKind.DENSE_2DTAR,
            SchemeKind.TOPK_NAIVE,
            SchemeKind.MSTOPK_HIER,
        ],
    )
    def test_contention_slows_every_scheme(self, scheme):
        solo = self._model(scheme, 1.0).iteration_time()
        duo = self._model(scheme, 2.0).iteration_time()
        quad = self._model(scheme, 4.0).iteration_time()
        assert solo < duo < quad

    def test_only_comm_terms_stretch(self):
        solo = self._model(SchemeKind.DENSE_TREE, 1.0).breakdown()
        duo = self._model(SchemeKind.DENSE_TREE, 2.0).breakdown()
        assert duo.get("communication") > solo.get("communication")
        for untouched in ("io", "ff_bp", "compression", "sync"):
            assert duo.get(untouched) == solo.get(untouched)

    def test_dense_hurts_more_than_mstopk(self):
        """The comm-heavy scheme pays the larger co-location tax."""

        def slowdown(scheme):
            return self._model(scheme, 2.0).iteration_time() / self._model(
                scheme, 1.0
            ).iteration_time()

        assert slowdown(SchemeKind.DENSE_TREE) > slowdown(SchemeKind.MSTOPK_HIER)

    def test_contention_validated(self):
        with pytest.raises(ValueError, match="contention"):
            self._model(SchemeKind.DENSE_TREE, 0.0)


class TestSchedulerContention:
    def _jobs(self):
        # Two 2-node 4-GPU dense VGG jobs on 8-GPU nodes: bin-pack
        # co-locates them on nodes {0, 1} (shared NICs), spread gives
        # each job its own node pair.  Contention only matters across
        # nodes, so the jobs must actually span nodes.
        return [
            JobSpec(
                name=f"vgg-{i}",
                profile="vgg19",
                scheme="dense",
                iterations=50,
                min_nodes=2,
                max_nodes=2,
                gpus_per_node=4,
            )
            for i in range(2)
        ]

    def _run(self, policy):
        scheduler = MultiTenantScheduler(
            num_nodes=4, instance="tencent", gpus_per_node=8, policy=policy
        )
        return scheduler.run(self._jobs())

    def test_colocated_jobs_slower_than_solo(self):
        packed = self._run("bin-pack")
        for outcome in packed.jobs:
            assert outcome.contention_slowdown > 1.0
        spread = self._run("spread")
        for outcome in spread.jobs:
            assert outcome.contention_slowdown == pytest.approx(1.0)

    def test_spreading_improves_jct_and_goodput(self):
        packed = self._run("bin-pack")
        spread = self._run("spread")
        for job in ("vgg-0", "vgg-1"):
            packed_job = next(o for o in packed.jobs if o.job == job)
            spread_job = next(o for o in spread.jobs if o.job == job)
            assert spread_job.jct_s < packed_job.jct_s
            assert spread_job.goodput_it_per_s > packed_job.goodput_it_per_s
        assert spread.makespan_s < packed.makespan_s

    def test_slowdown_matches_iteration_model(self):
        """The scheduler's slowdown is the iteration model's, exactly."""
        packed = self._run("bin-pack")
        scheduler = MultiTenantScheduler(
            num_nodes=2, instance="tencent", gpus_per_node=8, policy="bin-pack"
        )
        spec = self._jobs()[0]
        solo = scheduler.iteration_seconds(spec, nodes=2, contention=1.0)
        shared = scheduler.iteration_seconds(spec, nodes=2, contention=2.0)
        expected = shared / solo
        for outcome in packed.jobs:
            assert outcome.contention_slowdown == pytest.approx(expected)
