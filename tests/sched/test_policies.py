"""Placement policies: cluster state, registry round-trip, orderings."""

import pytest

from repro.sched.job import JobSpec
from repro.sched.policies import POLICIES, ClusterState, build_policy, register_policy


@pytest.fixture
def state():
    return ClusterState(num_nodes=4, gpus_per_node=8)


class TestClusterState:
    def test_place_and_release(self, state):
        state.place("a", [0, 1], 4)
        assert state.free_gpus(0) == 4
        assert state.tenants(0) == 1
        assert state.jobs_on(1) == ("a",)
        assert state.gpus_of("a", 0) == 4
        state.release("a", [0])
        assert state.free_gpus(0) == 8
        state.release("a")  # remaining nodes
        assert state.busy_nodes() == 0

    def test_overcommit_rejected(self, state):
        state.place("a", [0], 6)
        with pytest.raises(ValueError, match="free GPUs"):
            state.place("b", [0], 4)
        with pytest.raises(ValueError, match="already occupies"):
            state.place("a", [0], 1)

    def test_feasible_and_contention(self, state):
        state.place("a", [0, 1], 4)
        state.place("b", [0], 4)
        assert state.feasible_nodes(8) == [2, 3]
        assert state.feasible_nodes(4) == [1, 2, 3]
        assert state.feasible_nodes(4, exclude=[1]) == [2, 3]
        assert state.contention_for([0, 1]) == 2
        assert state.contention_for([1]) == 1
        assert state.contention_for([]) == 1

    def test_comm_load(self, state):
        state.place("a", [0], 4)
        state.place("b", [0], 4)
        state.set_comm_intensity("a", 0.6)
        state.set_comm_intensity("b", 0.1)
        assert state.comm_load(0) == pytest.approx(0.7)
        assert state.comm_load(1) == 0.0


class TestRegistryRoundTrip:
    def test_builtins_registered(self):
        names = POLICIES.available()
        assert {"bin-pack", "spread", "network-aware"} <= set(names)
        assert POLICIES.canonical("binpack") == "bin-pack"
        assert POLICIES.canonical("netaware") == "network-aware"

    def test_register_and_use_custom_policy(self, state):
        name = "test-reverse-policy"
        if name in POLICIES:
            pytest.skip("leftover registration")

        @register_policy(name, aliases=(name + "-alias",))
        def _reverse(job, candidates, st):
            return sorted(candidates, reverse=True)

        try:
            assert POLICIES.canonical(name + "-alias") == name
            policy = build_policy(name)
            job = JobSpec(name="j", gpus_per_node=4)
            assert policy(job, [0, 1, 2], state) == [2, 1, 0]
            # And it drives a real scheduler run end-to-end.
            from repro.sched import MultiTenantScheduler

            scheduler = MultiTenantScheduler(
                num_nodes=3, gpus_per_node=8, policy=name + "-alias"
            )
            report = scheduler.run(
                [JobSpec(name="j", iterations=5, max_nodes=2, gpus_per_node=4)]
            )
            assert report.policy == name
            # Reverse ordering placed the job on the highest node ids.
            assert report.traces["j"][0] == (0, 2)
        finally:
            POLICIES._entries.pop(name, None)
            POLICIES._aliases.pop(name + "-alias", None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(KeyError, match="already registered"):
            register_policy("bin-pack")(lambda *a: [])

    def test_unknown_policy_lists_available(self):
        with pytest.raises(KeyError, match="bin-pack"):
            build_policy("warpdrive")


class TestBuiltinOrderings:
    def test_bin_pack_prefers_busy_nodes(self, state):
        state.place("a", [1], 4)
        job = JobSpec(name="j", gpus_per_node=2)
        ordered = build_policy("bin-pack")(job, [0, 1, 2, 3], state)
        assert ordered[0] == 1  # least free GPUs first

    def test_spread_prefers_empty_nodes(self, state):
        state.place("a", [1], 4)
        job = JobSpec(name="j", gpus_per_node=2)
        ordered = build_policy("spread")(job, [0, 1, 2, 3], state)
        assert ordered[-1] == 1  # busiest last

    def test_network_aware_avoids_chatty_neighbours(self, state):
        # Two half-occupied nodes; the resident on node 1 is comm-heavy,
        # the one on node 2 compute-bound.  Spread ties on free GPUs and
        # falls back to node id; network-aware picks the quiet node 2.
        state.place("chatty", [1], 4)
        state.place("quiet", [2], 4)
        state.set_comm_intensity("chatty", 0.7)
        state.set_comm_intensity("quiet", 0.05)
        job = JobSpec(name="j", gpus_per_node=4)
        aware = build_policy("network-aware")(job, [1, 2], state)
        assert aware == [2, 1]
        spread = build_policy("spread")(job, [1, 2], state)
        assert spread == [1, 2]


class TestFaultAwareOrdering:
    """The ledger-reading policy: quarantine, suspicion tiers, AZ blocks."""

    @staticmethod
    def _ledger(threshold=2.0):
        from repro.faults.health import HealthPolicy, NodeHealthLedger

        return NodeHealthLedger(
            HealthPolicy(
                quarantine_threshold=threshold,
                half_life_s=300.0,
                probe_cooldown_s=180.0,
            )
        )

    def test_degenerates_to_spread_without_ledger(self, state):
        assert state.health is None
        state.place("a", [1], 4)
        job = JobSpec(name="j", gpus_per_node=2)
        fault_aware = build_policy("fault-aware")(job, [0, 1, 2, 3], state)
        spread = build_policy("spread")(job, [0, 1, 2, 3], state)
        assert fault_aware == spread

    def test_returns_permutation_of_candidates(self, state):
        ledger = self._ledger()
        ledger.observe(2, 0.0, "node-crash")
        ledger.observe(2, 1.0, "node-crash")  # quarantines node 2
        ledger.observe(0, 5.0, "nic-degrade")
        state.health, state.now = ledger, 10.0
        job = JobSpec(name="j", gpus_per_node=2)
        ordered = build_policy("fault-aware")(job, [3, 1, 0, 2], state)
        assert sorted(ordered) == [0, 1, 2, 3]

    def test_quarantined_node_sorts_last(self, state):
        ledger = self._ledger(threshold=1.5)
        ledger.observe(0, 0.0, "node-crash")
        ledger.observe(0, 5.0, "node-crash")
        assert ledger.is_quarantined(0)
        state.health, state.now = ledger, 10.0
        job = JobSpec(name="j", gpus_per_node=2)
        ordered = build_policy("fault-aware")(job, [0, 1, 2, 3], state)
        assert ordered[-1] == 0
        # Still a candidate: a saturated cluster may fall back to it.
        assert set(ordered) == {0, 1, 2, 3}

    def test_critical_job_avoids_mild_suspicion_best_effort_ignores(self, state):
        # Node 0 is mildly suspect (score < threshold / 2).  A deadline
        # job sorts by exact suspicion and dodges it; a best-effort job
        # buckets it with the clean nodes and keeps the id tie-break.
        ledger = self._ledger(threshold=2.0)
        ledger.observe(0, 0.0, "nic-degrade")  # 0.4 < 1.0
        state.health, state.now = ledger, 0.0
        policy = build_policy("fault-aware")
        critical = JobSpec(name="c", gpus_per_node=2, deadline_seconds=100.0)
        assert policy(critical, [0, 1, 2, 3], state)[-1] == 0
        best_effort = JobSpec(name="b", gpus_per_node=2)
        assert policy(best_effort, [0, 1, 2, 3], state)[0] == 0

    def test_best_effort_dodges_heavy_suspicion(self, state):
        # Above threshold / 2 even best-effort jobs steer away.
        ledger = self._ledger(threshold=2.0)
        ledger.observe(0, 0.0, "node-crash")  # 1.0 >= 1.0
        state.health, state.now = ledger, 0.0
        job = JobSpec(name="b", gpus_per_node=2)
        ordered = build_policy("fault-aware")(job, [0, 1, 2, 3], state)
        assert ordered[-1] == 0

    def test_interleaves_across_az_blocks(self):
        # Eight nodes -> four two-node AZ blocks.  On a clean ledger the
        # first round takes each block's head: one reclaim can't erase a
        # whole multi-node allocation.
        from repro.sched.policies import ClusterState

        state = ClusterState(num_nodes=8, gpus_per_node=8)
        state.health, state.now = self._ledger(), 0.0
        job = JobSpec(name="j", gpus_per_node=2)
        ordered = build_policy("fault-aware")(job, list(range(8)), state)
        assert ordered == [0, 2, 4, 6, 1, 3, 5, 7]

    def test_alias_health_aware_resolves(self):
        assert POLICIES.canonical("health-aware") == "fault-aware"
