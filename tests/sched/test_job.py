"""JobSpec validation, resolution helpers, and the elastic trace bridge."""

import pytest

from repro.elastic.events import JOIN, REVOKE
from repro.perf.iteration_model import SchemeKind
from repro.sched.job import JobRecord, JobSpec, scheme_kind_of


class TestJobSpecValidation:
    def test_defaults_are_valid(self):
        spec = JobSpec(name="j")
        assert spec.profile == "resnet50"
        assert spec.preference == "spot"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"iterations": 0},
            {"density": 0.0},
            {"density": 1.5},
            {"preference": "free"},
            {"min_nodes": 0},
            {"min_nodes": 3, "max_nodes": 2},
            {"gpus_per_node": 0},
            {"arrival_seconds": -1.0},
            {"deadline_seconds": 0.0},
            {"local_batch": 0},
        ],
    )
    def test_bad_values_raise(self, kwargs):
        with pytest.raises(ValueError):
            JobSpec(**{"name": "j", **kwargs})

    def test_unknown_profile_raises_at_construction(self):
        with pytest.raises(KeyError, match="resnet50"):
            JobSpec(name="j", profile="alexnet")

    def test_unknown_scheme_raises_at_construction(self):
        with pytest.raises(KeyError, match="warpdrive"):
            JobSpec(name="j", scheme="warpdrive")


class TestResolution:
    def test_scheme_kind_mapping_covers_registry(self):
        from repro.api.registry import SCHEMES

        for name in SCHEMES.available():
            assert isinstance(scheme_kind_of(name), SchemeKind)

    def test_scheme_aliases_resolve(self):
        assert scheme_kind_of("hitopkcomm") is SchemeKind.MSTOPK_HIER
        assert scheme_kind_of("ring") is SchemeKind.DENSE_TREE
        assert scheme_kind_of("gtopk") is SchemeKind.TOPK_NAIVE

    def test_resolution_defaults(self):
        assert JobSpec(name="r", profile="resnet50").resolved_resolution() == 224
        assert JobSpec(name="t", profile="transformer").resolved_resolution() == 0
        assert (
            JobSpec(name="r2", profile="resnet50", resolution=96).resolved_resolution()
            == 96
        )

    def test_local_batch_defaults_to_profile(self):
        spec = JobSpec(name="r", profile="resnet50")
        assert spec.resolved_local_batch() == spec.model_profile().default_local_batch
        assert JobSpec(name="r", local_batch=32).resolved_local_batch() == 32


class TestTraceBridge:
    def test_waypoints_become_churn_events(self):
        record = JobRecord(spec=JobSpec(name="j"))
        record.waypoints = [(0, 3), (40, 1), (90, 2)]
        trace = record.to_trace_schedule()
        kinds = [(e.iteration, e.kind, e.warned) for e in trace.events]
        assert kinds == [
            (40, REVOKE, True),
            (40, REVOKE, True),
            (90, JOIN, False),
        ]

    def test_unplaced_job_has_no_trace(self):
        record = JobRecord(spec=JobSpec(name="j"))
        with pytest.raises(ValueError, match="never placed"):
            record.to_trace_schedule()

    def test_from_deltas_rejects_bad_waypoints(self):
        from repro.elastic.events import TraceSchedule

        with pytest.raises(ValueError):
            TraceSchedule.from_deltas([])
        with pytest.raises(ValueError):
            TraceSchedule.from_deltas([(0, 0)])
        with pytest.raises(ValueError):
            TraceSchedule.from_deltas([(10, 2), (5, 1)])
