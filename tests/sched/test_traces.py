"""Trace ingestion, synthesis and replay (``repro.sched.traces``).

The acceptance bars pinned here:

* ingestion round-trips losslessly (JSONL, CSV directory, and the
  spec <-> trace fixed point) — the on-disk format loses nothing the
  scheduler uses;
* the synthetic generator is a pure function of its config (same seed
  => byte-identical trace) and matches its advertised shapes;
* the closed-form fast path and the trainer-backed payload path agree:
  carrying a :class:`~repro.sched.job.TrainPayload` never perturbs a
  single scheduling decision, it only appends training results;
* a malformed trace dies as one actionable ``error:`` line with exit
  code 2 — never a traceback — through the real CLI;
* ``SchedConfig.trace`` threads through config, facade, CLI and the
  ``repro.exec`` pool with bit-identical results at any ``--jobs``.
"""

import dataclasses
import importlib.util
import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.api.cli import main
from repro.api.config import SchedConfig
from repro.api.facade import run_sched
from repro.sched.job import TrainPayload
from repro.sched.scheduler import MultiTenantScheduler
from repro.sched.traces import (
    DISTRIBUTION_COLUMNS,
    SyntheticTraceConfig,
    Trace,
    TraceError,
    TraceJob,
    TraceTask,
    distribution_rows,
    generate_trace,
    job_specs_for,
    load_trace,
    payload_for_trace_reports,
    specs_to_trace,
    trace_stats,
    trace_to_specs,
    write_trace,
    write_trace_csv,
)

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
SAMPLE_TRACE = REPO / "examples" / "traces" / "sample_day.jsonl"
TRACE_CONFIG = REPO / "examples" / "configs" / "trace_replay.json"


def small_trace(num_jobs: int = 40, seed: int = 3, **overrides) -> Trace:
    return generate_trace(
        SyntheticTraceConfig(num_jobs=num_jobs, seed=seed, **overrides)
    )


# ---------------------------------------------------------------------------
# Ingestion round-trips
# ---------------------------------------------------------------------------


class TestRoundTrip:
    def test_jsonl_round_trip_lossless(self, tmp_path):
        trace = small_trace(payload_fraction=0.2)
        path = write_trace(trace, tmp_path / "day.jsonl")
        loaded = load_trace(path)
        assert loaded.jobs == trace.jobs
        assert loaded.tasks == trace.tasks
        assert loaded.instances == trace.instances

    def test_csv_round_trip_lossless(self, tmp_path):
        trace = small_trace(payload_fraction=0.2)
        directory = write_trace_csv(trace, tmp_path / "day_csv")
        assert (directory / "job.csv").exists()
        assert (directory / "task.csv").exists()
        loaded = load_trace(directory)
        assert loaded.jobs == trace.jobs
        assert loaded.tasks == trace.tasks

    def test_spec_trace_fixed_point(self):
        """trace -> specs -> trace -> specs is the identity on specs."""
        specs = trace_to_specs(small_trace(payload_fraction=0.2))
        again = trace_to_specs(specs_to_trace(specs))
        assert again == specs

    def test_sample_day_is_loadable_and_schedulable(self):
        """The bundled example trace stays valid (CI replays it)."""
        trace = load_trace(SAMPLE_TRACE)
        specs = trace_to_specs(trace)
        assert len(specs) == len(trace.jobs) == 120
        assert any(s.payload is not None for s in specs)

    def test_jsonl_skips_blank_and_comment_lines(self, tmp_path):
        path = write_trace(small_trace(num_jobs=5), tmp_path / "day.jsonl")
        text = "# a comment\n\n" + path.read_text()
        path.write_text(text)
        assert len(load_trace(path).jobs) == 5

    def test_stats_counts(self):
        trace = small_trace(payload_fraction=0.5)
        stats = trace_stats(trace)
        assert stats["jobs"] == stats["tasks"] == 40
        assert stats["payload_jobs"] == sum(
            1 for t in trace.tasks if t.payload is not None
        )
        assert stats["users"] >= 1


# ---------------------------------------------------------------------------
# Malformed traces
# ---------------------------------------------------------------------------


class TestValidation:
    def _load_err(self, tmp_path, lines: list[str]) -> str:
        path = tmp_path / "bad.jsonl"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError) as err:
            load_trace(path)
        return str(err.value)

    def test_unknown_field_rejected_with_line(self, tmp_path):
        message = self._load_err(
            tmp_path,
            ['{"type": "job", "job_name": "j", "submit_time": 0, "oops": 1}'],
        )
        assert "oops" in message and "bad.jsonl:1" in message

    def test_missing_task_rejected(self, tmp_path):
        message = self._load_err(
            tmp_path, ['{"type": "job", "job_name": "j", "submit_time": 0}']
        )
        assert "task" in message

    def test_plan_gpu_must_be_whole_gpus(self, tmp_path):
        message = self._load_err(
            tmp_path,
            [
                '{"type": "job", "job_name": "j", "submit_time": 0}',
                '{"type": "task", "job_name": "j", "inst_num": 1, "plan_gpu": 150}',
            ],
        )
        assert "plan_gpu" in message

    def test_duplicate_job_name_rejected(self, tmp_path):
        message = self._load_err(
            tmp_path,
            [
                '{"type": "job", "job_name": "j", "submit_time": 0}',
                '{"type": "job", "job_name": "j", "submit_time": 1}',
            ],
        )
        assert "duplicate" in message

    def test_unknown_workload_points_at_job(self):
        trace = Trace(
            jobs=[TraceJob(job_name="j", user="u", submit_time=0.0, workload="warp9")],
            tasks=[TraceTask(job_name="j", inst_num=1)],
        )
        with pytest.raises(TraceError, match="j"):
            trace_to_specs(trace)


# ---------------------------------------------------------------------------
# Synthetic generator
# ---------------------------------------------------------------------------


class TestGenerator:
    def test_same_seed_same_trace(self):
        assert small_trace(seed=11) == small_trace(seed=11)

    def test_different_seed_different_trace(self):
        assert small_trace(seed=11) != small_trace(seed=12)

    def test_exact_job_count_and_sorted_arrivals(self):
        trace = small_trace(num_jobs=257)
        assert len(trace.jobs) == 257
        submits = [job.submit_time for job in trace.jobs]
        assert submits == sorted(submits)
        assert all(0 <= t <= 86_400 for t in submits)

    def test_heavy_tail_and_clipping(self):
        trace = generate_trace(SyntheticTraceConfig(num_jobs=2000, seed=5))
        iterations = sorted(t.iterations for t in trace.tasks)
        assert iterations[0] >= 20 and iterations[-1] <= 50_000
        # Heavy tail: the p99 job is much longer than the median.
        assert iterations[-20] > 10 * iterations[1000]

    def test_payload_jobs_stay_small(self):
        trace = small_trace(num_jobs=200, payload_fraction=1.0)
        for task in trace.tasks:
            assert task.payload is not None
            assert task.inst_num <= 2 and task.plan_gpu <= 200
            assert task.iterations <= 60

    def test_generated_trace_is_schedulable(self):
        specs = trace_to_specs(small_trace(num_jobs=100, seed=9))
        report = MultiTenantScheduler(num_nodes=8, gpus_per_node=8).run(specs)
        assert report.summary()["jobs_done"] >= 95

    def test_mix_validation(self):
        with pytest.raises(ValueError, match="gpus_per_node"):
            SyntheticTraceConfig(gpus_per_node={})
        with pytest.raises(ValueError, match="payload_fraction"):
            SyntheticTraceConfig(payload_fraction=1.5)


# ---------------------------------------------------------------------------
# Fast path vs trainer path
# ---------------------------------------------------------------------------


class TestPayloadParity:
    def test_payload_never_perturbs_scheduling(self):
        """Stripping every payload changes no scheduling decision."""
        specs = trace_to_specs(small_trace(num_jobs=30, payload_fraction=0.3))
        assert any(s.payload is not None for s in specs)
        stripped = [dataclasses.replace(s, payload=None) for s in specs]

        def run(job_specs):
            return MultiTenantScheduler(num_nodes=4, gpus_per_node=8).run(job_specs)

        with_payload = run(specs)
        without = run(stripped)
        # Identical except the trailing final_loss column.
        assert [o.row()[:-1] for o in with_payload.jobs] == [
            o.row()[:-1] for o in without.jobs
        ]
        assert with_payload.summary() == without.summary()

    def test_payload_jobs_actually_train(self):
        payload = TrainPayload(seed=13)
        specs = trace_to_specs(small_trace(num_jobs=20, payload_fraction=0.4))
        report = MultiTenantScheduler(num_nodes=4, gpus_per_node=8).run(specs)
        losses = [
            o.final_loss for o in report.jobs if o.final_loss is not None
        ]
        assert losses, "no payload job produced a final loss"
        assert all(loss == loss and loss < 100 for loss in losses)
        assert payload.model == "mlp-tiny"


# ---------------------------------------------------------------------------
# Config / facade / exec threading
# ---------------------------------------------------------------------------


class TestConfigThreading:
    def test_trace_config_loads(self):
        config = SchedConfig.from_json(TRACE_CONFIG.read_text())
        assert config.trace == "examples/traces/sample_day.jsonl"
        assert config.to_dict()["trace"] == config.trace
        assert "jobs" not in config.to_dict()

    def test_jobs_and_trace_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            SchedConfig.from_dict(
                {
                    "name": "x",
                    "cluster": {"instance": "tencent", "num_nodes": 2},
                    "trace": "day.jsonl",
                    "jobs": [{"name": "j", "workload": "resnet50"}],
                }
            )

    def test_job_specs_for_honours_trace(self, tmp_path):
        trace = small_trace(num_jobs=12)
        path = write_trace(trace, tmp_path / "day.jsonl")
        config = SchedConfig.from_dict(
            {
                "name": "t",
                "cluster": {"instance": "tencent", "num_nodes": 2},
                "trace": str(path),
            }
        )
        specs = job_specs_for(config)
        assert [s.name for s in specs] == [j.job_name for j in trace.jobs]

    def test_facade_serial_equals_pool(self, tmp_path):
        """--jobs 1 and --jobs 2 produce bit-identical distributions."""
        path = write_trace(small_trace(num_jobs=25), tmp_path / "day.jsonl")
        base = {
            "name": "pool-parity",
            "seed": 0,
            "cluster": {"instance": "tencent", "num_nodes": 4, "gpus_per_node": 8},
            "policies": ["bin-pack", "spread"],
            "trace": str(path),
        }
        serial = run_sched(SchedConfig.from_dict(base))
        pooled = run_sched(
            SchedConfig.from_dict(
                {**base, "exec": {"backend": "process", "jobs": 2}}
            )
        )
        assert payload_for_trace_reports(
            list(serial.values())
        ) == payload_for_trace_reports(list(pooled.values()))


# ---------------------------------------------------------------------------
# Distribution payload
# ---------------------------------------------------------------------------


class TestDistributionPayload:
    def _validate(self, payload):
        spec = importlib.util.spec_from_file_location(
            "bench_conftest_for_traces", REPO / "benchmarks" / "conftest.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module.validate_bench_payload(payload)

    def test_payload_passes_schema_gate(self):
        specs = trace_to_specs(small_trace(num_jobs=30))
        report = MultiTenantScheduler(num_nodes=4, gpus_per_node=8).run(specs)
        payload = payload_for_trace_reports([report], trace="day.jsonl")
        self._validate(payload)
        assert payload["columns"] == DISTRIBUTION_COLUMNS
        assert payload["meta"]["trace"] == "day.jsonl"
        assert payload["meta"]["num_jobs"] == 30

    def test_percentiles_are_ordered(self):
        specs = trace_to_specs(small_trace(num_jobs=50))
        report = MultiTenantScheduler(num_nodes=4, gpus_per_node=8).run(specs)
        for row in distribution_rows([report]):
            _, metric, count, mean, p50, p90, p99, top = row
            if count == 0:
                continue
            assert p50 <= p90 <= p99 <= top, (metric, row)
            assert mean <= top


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_gen_validate_replay(self, tmp_path, capsys):
        out = tmp_path / "day.jsonl"
        assert main(
            ["trace", "gen", "--out", str(out), "--num-jobs", "30", "--seed", "4"]
        ) == 0
        assert "wrote 30 jobs" in capsys.readouterr().out
        assert main(["trace", "validate", str(out)]) == 0
        assert "ok: 30 schedulable jobs" in capsys.readouterr().out
        assert main(["sched", "--trace", str(out), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["columns"] == ["policy", *DISTRIBUTION_COLUMNS[1:]]
        assert payload["meta"]["num_jobs"] == 30

    def test_validate_json_flag(self, tmp_path, capsys):
        out = tmp_path / "day.jsonl"
        main(["trace", "gen", "--out", str(out), "--num-jobs", "10"])
        capsys.readouterr()
        assert main(["trace", "validate", str(out), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["jobs"] == 10

    def test_csv_format_flag(self, tmp_path, capsys):
        out = tmp_path / "day_csv"
        assert main(
            ["trace", "gen", "--out", str(out), "--num-jobs", "10",
             "--format", "csv"]
        ) == 0
        capsys.readouterr()
        assert main(["trace", "validate", str(out)]) == 0

    def test_config_with_trace_override(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(REPO)  # config paths are repo-root relative
        assert main(["sched", "--config", str(TRACE_CONFIG), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["meta"]["trace"] == "examples/traces/sample_day.jsonl"
        assert payload["meta"]["policies"] == ["bin-pack", "network-aware"]

    def test_malformed_trace_is_one_line_exit_2(self, tmp_path):
        """Trace errors reach the shell as one line, no traceback."""
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "job", "job_name": "j", "oops": 1}\n')
        truncated = tmp_path / "trunc.jsonl"
        truncated.write_text('{"type": "job", "job_name"\n')
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        for argv in (
            ["sched", "--trace", str(bad)],
            ["sched", "--trace", str(truncated)],
            ["sched", "--trace", str(tmp_path / "missing.jsonl")],
            ["trace", "validate", str(bad)],
        ):
            proc = subprocess.run(
                [sys.executable, "-m", "repro", *argv],
                capture_output=True, text=True, timeout=120, env=env,
            )
            assert proc.returncode == 2, argv
            assert "Traceback" not in proc.stderr, argv
            lines = [line for line in proc.stderr.splitlines() if line.strip()]
            assert len(lines) == 1 and lines[0].startswith("error: "), proc.stderr

    def test_sched_requires_config_or_trace(self, capsys):
        assert main(["sched"]) == 2
        assert "config" in capsys.readouterr().err
