"""Cross-cutting property tests.

These invariants span subsystems — every compressor, every scheme —
and are the contracts the distributed pipeline is built on:

1. any ``TopKCompressor`` returns exactly ``k`` unique in-range indices
   whose values match the source (the fixed-size-wire contract);
2. any ``CommScheme`` produces rank-identical outputs (the synchronous
   SGD consistency contract, paper Eq. 1);
3. error feedback conserves gradient mass for every compressor;
4. dense schemes are permutation-equivariant in their inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cloud_presets import make_cluster
from repro.compression.base import TopKCompressor
from repro.compression.dgc import DGCTopK
from repro.compression.error_feedback import ErrorFeedback
from repro.compression.exact_topk import ExactTopK
from repro.compression.mstopk import MSTopK
from repro.compression.randomk import RandomK
from repro.train.algorithms import make_scheme
from repro.utils.seeding import new_rng

ALL_COMPRESSORS: list[TopKCompressor] = [
    ExactTopK("sort"),
    ExactTopK("argpartition"),
    DGCTopK(sample_fraction=0.2),
    MSTopK(n_samplings=20),
    RandomK(),
]

ALL_SCHEME_NAMES = ("dense", "dense-ring", "2dtar", "topk", "mstopk", "naiveag-mstopk")


class TestCompressorContract:
    @pytest.mark.parametrize("compressor", ALL_COMPRESSORS, ids=lambda c: c.name)
    @given(d=st.integers(4, 600), frac=st.integers(1, 99), seed=st.integers(0, 20))
    @settings(max_examples=25, deadline=None)
    def test_exactly_k_unique_in_range(self, compressor, d, frac, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=d)
        k = max(1, (d * frac) // 100)
        sv = compressor.select(x, k, rng=rng)
        assert sv.nnz == k
        assert len(np.unique(sv.indices)) == k
        assert sv.indices.min() >= 0 and sv.indices.max() < d

    @pytest.mark.parametrize(
        "compressor",
        [c for c in ALL_COMPRESSORS if not isinstance(c, RandomK)],
        ids=lambda c: c.name,
    )
    def test_values_are_source_entries(self, compressor, rng):
        x = rng.normal(size=300)
        sv = compressor.select(x, 30, rng=rng)
        np.testing.assert_array_equal(sv.values, x[sv.indices])

    @pytest.mark.parametrize("compressor", ALL_COMPRESSORS, ids=lambda c: c.name)
    def test_error_feedback_mass_conservation(self, compressor, rng):
        ef = ErrorFeedback()
        d, k = 120, 20
        total_grad = np.zeros(d)
        total_sent = np.zeros(d)
        for _ in range(6):
            g = rng.normal(size=d)
            total_grad += g
            corrected = ef.apply("w", g)
            sent = compressor.select(corrected, k, rng=rng)
            ef.update("w", corrected, sent)
            total_sent += sent.to_dense()
        np.testing.assert_allclose(
            total_sent + ef.residual("w"), total_grad, atol=1e-9
        )


class TestSchemeContract:
    @pytest.mark.parametrize("name", ALL_SCHEME_NAMES)
    @given(
        m=st.integers(1, 3),
        n=st.integers(1, 3),
        d=st.integers(8, 80),
        seed=st.integers(0, 10),
    )
    @settings(max_examples=10, deadline=None)
    def test_outputs_rank_identical(self, name, m, n, d, seed):
        rng = np.random.default_rng(seed)
        net = make_cluster(m, "tencent", gpus_per_node=n)
        scheme = make_scheme(name, net, density=0.25)
        grads = [rng.normal(size=d) for _ in range(m * n)]
        result = scheme.aggregate(grads, rng=new_rng(seed))
        assert len(result.outputs) == m * n
        for out in result.outputs[1:]:
            np.testing.assert_array_equal(out, result.outputs[0])
        if m * n > 1:
            assert result.breakdown.total > 0

    @pytest.mark.parametrize("name", ["dense", "dense-ring", "2dtar"])
    def test_dense_schemes_permutation_equivariant(self, name, rng):
        # Summation commutes: permuting worker order changes nothing.
        net = make_cluster(2, "tencent", gpus_per_node=2)
        grads = [rng.normal(size=40) for _ in range(4)]
        a = make_scheme(name, net).aggregate(grads).outputs[0]
        permuted = [grads[i] for i in (2, 0, 3, 1)]
        b = make_scheme(name, net).aggregate(permuted).outputs[0]
        np.testing.assert_allclose(a, b, rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("name", ALL_SCHEME_NAMES)
    def test_inputs_never_mutated(self, name, rng):
        net = make_cluster(2, "tencent", gpus_per_node=2)
        scheme = make_scheme(name, net, density=0.25)
        grads = [rng.normal(size=32) for _ in range(4)]
        originals = [g.copy() for g in grads]
        scheme.aggregate(grads, rng=rng)
        for g, o in zip(grads, originals):
            np.testing.assert_array_equal(g, o)

    @pytest.mark.parametrize("name", ALL_SCHEME_NAMES)
    def test_time_model_monotone_in_size(self, name, testbed):
        scheme = make_scheme(name, testbed, density=0.01)
        assert (
            scheme.time_model(50_000_000).total > scheme.time_model(5_000_000).total
        )
