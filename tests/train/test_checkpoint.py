"""Checkpoint/restore: resumed sparsified runs must be bit-identical."""

import numpy as np
import pytest

from repro.cluster.cloud_presets import make_cluster
from repro.models.nn.mlp import MLPClassifier
from repro.optim.sgd import SGD
from repro.train.algorithms import make_scheme
from repro.train.checkpoint import load_checkpoint, save_checkpoint
from repro.train.synthetic import make_spiral_classification
from repro.train.trainer import DistributedTrainer
from repro.utils.seeding import new_rng


def make_trainer(seed=0, scheme_name="mstopk"):
    net = make_cluster(2, "tencent", gpus_per_node=2)
    model = MLPClassifier(input_dim=2, hidden=(12,), num_classes=4)
    return DistributedTrainer(
        model,
        make_scheme(scheme_name, net, density=0.1),
        optimizer=SGD(lr=0.1, momentum=0.9),
        seed=seed,
    )


def batches_for(x, y, step, world=4, b=8):
    lo = (step * b) % (len(x) - world * b)
    return [(x[lo + w * b : lo + (w + 1) * b], y[lo + w * b : lo + (w + 1) * b])
            for w in range(world)]


class TestRoundTrip:
    def test_params_restored(self, tmp_path, rng):
        x, y = make_spiral_classification(512, num_classes=4, rng=rng)
        trainer = make_trainer()
        for step in range(3):
            trainer.train_step(batches_for(x, y, step))
        path = save_checkpoint(trainer, tmp_path / "ckpt")

        fresh = make_trainer()
        meta = load_checkpoint(fresh, path)
        assert meta["world_size"] == 4
        for name in trainer.params:
            np.testing.assert_array_equal(fresh.params[name], trainer.params[name])

    def test_resumed_run_is_bit_identical(self, tmp_path, rng):
        """Train 6 steps straight vs 3 + checkpoint + restore + 3.

        The checkpoint round-trips the trainer's RNG state, so the
        resumed run replays the exact MSTopK sampling stream — no
        manual RNG handoff needed.
        """
        x, y = make_spiral_classification(512, num_classes=4, rng=rng)

        straight = make_trainer(seed=5)
        for step in range(6):
            straight.train_step(batches_for(x, y, step))

        first = make_trainer(seed=5)
        for step in range(3):
            first.train_step(batches_for(x, y, step))
        path = save_checkpoint(first, tmp_path / "mid")

        resumed = make_trainer(seed=5)
        load_checkpoint(resumed, path)
        for step in range(3, 6):
            resumed.train_step(batches_for(x, y, step))

        for name in straight.params:
            np.testing.assert_allclose(
                resumed.params[name], straight.params[name], rtol=1e-12, atol=1e-14
            )

    def test_rng_state_round_trips(self, tmp_path, rng):
        x, y = make_spiral_classification(512, num_classes=4, rng=rng)
        trainer = make_trainer(seed=9)
        trainer.train_step(batches_for(x, y, 0))
        path = save_checkpoint(trainer, tmp_path / "rng")

        fresh = make_trainer(seed=1234)  # different seed -> different stream
        load_checkpoint(fresh, path)
        assert fresh._rng.bit_generator.state == trainer._rng.bit_generator.state
        np.testing.assert_array_equal(fresh._rng.random(8), trainer._rng.random(8))

    def test_restored_trainer_reproduces_loss_trajectory(self, tmp_path, rng):
        """Regression: a restored trainer's losses match the original's."""
        x, y = make_spiral_classification(512, num_classes=4, rng=rng)
        trainer = make_trainer(seed=2)
        for step in range(4):
            trainer.train_step(batches_for(x, y, step))
        path = save_checkpoint(trainer, tmp_path / "traj")

        reference = [
            trainer.train_step(batches_for(x, y, step))[0] for step in range(4, 10)
        ]
        restored = make_trainer(seed=2)
        load_checkpoint(restored, path)
        replayed = [
            restored.train_step(batches_for(x, y, step))[0] for step in range(4, 10)
        ]
        np.testing.assert_allclose(replayed, reference, rtol=1e-12, atol=1e-14)

    def test_error_feedback_residuals_restored(self, tmp_path, rng):
        x, y = make_spiral_classification(512, num_classes=4, rng=rng)
        trainer = make_trainer()
        for step in range(2):
            trainer.train_step(batches_for(x, y, step))
        assert trainer.scheme.ef is not None and len(trainer.scheme.ef) > 0
        path = save_checkpoint(trainer, tmp_path / "ef")

        fresh = make_trainer()
        load_checkpoint(fresh, path)
        for key in trainer.scheme.ef.keys():
            np.testing.assert_array_equal(
                fresh.scheme.ef.residual(key), trainer.scheme.ef.residual(key)
            )

    def test_momentum_restored(self, tmp_path, rng):
        x, y = make_spiral_classification(512, num_classes=4, rng=rng)
        trainer = make_trainer()
        trainer.train_step(batches_for(x, y, 0))
        path = save_checkpoint(trainer, tmp_path / "mom")
        fresh = make_trainer()
        load_checkpoint(fresh, path)
        assert fresh.optimizer.state_size() == trainer.optimizer.state_size()

    def test_rollback_clears_post_checkpoint_momentum(self, tmp_path, rng):
        """Restoring a step-0 checkpoint must discard accumulated momentum."""
        x, y = make_spiral_classification(512, num_classes=4, rng=rng)
        trainer = make_trainer(seed=3)
        path = save_checkpoint(trainer, tmp_path / "step0")  # velocity empty
        for step in range(3):
            trainer.train_step(batches_for(x, y, step))
        assert trainer.optimizer.state_size() > 0
        load_checkpoint(trainer, path)
        assert trainer.optimizer.state_size() == 0
        # EF residuals accumulated after the checkpoint are gone too.
        assert len(trainer.scheme.ef) == 0


class TestValidation:
    def test_world_size_mismatch_rejected(self, tmp_path, rng):
        x, y = make_spiral_classification(512, num_classes=4, rng=rng)
        trainer = make_trainer()
        trainer.train_step(batches_for(x, y, 0))
        path = save_checkpoint(trainer, tmp_path / "w")

        net = make_cluster(2, "tencent", gpus_per_node=4)  # 8 workers
        other = DistributedTrainer(
            MLPClassifier(input_dim=2, hidden=(12,), num_classes=4),
            make_scheme("mstopk", net, density=0.1),
            seed=0,
        )
        with pytest.raises(ValueError, match="world size"):
            load_checkpoint(other, path)

    def test_lenient_world_mismatch_returns_orphan_residuals(self, tmp_path, rng):
        x, y = make_spiral_classification(512, num_classes=4, rng=rng)
        trainer = make_trainer()
        for step in range(2):
            trainer.train_step(batches_for(x, y, step))
        assert len(trainer.scheme.ef) > 0
        path = save_checkpoint(trainer, tmp_path / "elastic")

        net = make_cluster(2, "tencent", gpus_per_node=4)  # 8 workers
        other = DistributedTrainer(
            MLPClassifier(input_dim=2, hidden=(12,), num_classes=4),
            make_scheme("mstopk", net, density=0.1),
            seed=0,
        )
        meta = load_checkpoint(other, path, strict_world=False)
        # World-size-independent state restored...
        for name in trainer.params:
            np.testing.assert_array_equal(other.params[name], trainer.params[name])
        assert other._rng.bit_generator.state == trainer._rng.bit_generator.state
        # ...while rank-keyed residuals come back raw for the caller to fold.
        assert len(other.scheme.ef) == 0
        assert set(meta["residuals"]) == set(trainer.scheme.ef.keys())

    def test_unknown_parameter_rejected(self, tmp_path, rng):
        x, y = make_spiral_classification(512, num_classes=4, rng=rng)
        trainer = make_trainer()
        trainer.train_step(batches_for(x, y, 0))
        path = save_checkpoint(trainer, tmp_path / "p")

        net = make_cluster(2, "tencent", gpus_per_node=2)
        other = DistributedTrainer(
            MLPClassifier(input_dim=2, hidden=(9,), num_classes=4),  # other arch
            make_scheme("mstopk", net, density=0.1),
            seed=0,
        )
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(other, path)


class TestTornWrites:
    """A kill mid-``save_checkpoint`` must never restore silently."""

    def _checkpoint(self, tmp_path, rng):
        x, y = make_spiral_classification(512, num_classes=4, rng=rng)
        trainer = make_trainer()
        for step in range(2):
            trainer.train_step(batches_for(x, y, step))
        return trainer, save_checkpoint(trainer, tmp_path / "torn")

    def test_truncated_checkpoint_raises_typed_corruption(self, tmp_path, rng):
        from repro.train.checkpoint import CheckpointCorruptError

        _, path = self._checkpoint(tmp_path, rng)
        data = path.read_bytes()
        # A torn write: the front half of the archive, not a byte flip.
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(make_trainer(), path)

    def test_failed_load_leaves_the_trainer_untouched(self, tmp_path, rng):
        from repro.train.checkpoint import CheckpointCorruptError

        _, path = self._checkpoint(tmp_path, rng)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 3])
        fresh = make_trainer(seed=3)
        before = {name: value.copy() for name, value in fresh.params.items()}
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(fresh, path)
        # The fallback contract: caller can roll back to the previous
        # slot because the failed restore mutated nothing.
        for name, value in before.items():
            np.testing.assert_array_equal(fresh.params[name], value)
