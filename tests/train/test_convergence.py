"""Convergence experiment (Fig. 10 / Table 2) — fast assertions.

Full curves are produced by the benchmark harness; these tests run
abbreviated versions and check the paper's qualitative claims.
"""

import pytest

from repro.train.convergence import ConvergenceRunner


@pytest.fixture(scope="module")
def mlp_result():
    runner = ConvergenceRunner(
        num_nodes=2, gpus_per_node=2, epochs=8, num_samples=512, seed=7
    )
    return runner.run("mlp")


class TestMLPConvergence:
    def test_all_algorithms_learn(self, mlp_result):
        for algorithm in ("dense", "topk", "mstopk"):
            report = mlp_result.reports[algorithm]
            assert report.val_metrics[-1] > 0.5, algorithm
            assert report.epoch_losses[-1] < report.epoch_losses[0]

    def test_sparse_not_better_than_dense(self, mlp_result):
        # Paper Fig. 10 / Table 2: sparsified variants trail dense
        # slightly.  Allow a small tolerance for noise.
        dense = mlp_result.final("dense")
        assert mlp_result.final("topk") <= dense + 0.05
        assert mlp_result.final("mstopk") <= dense + 0.05

    def test_gap_is_small(self, mlp_result):
        # "slight accuracy loss compared to the dense version".
        dense = mlp_result.final("dense")
        assert mlp_result.final("mstopk") > dense - 0.15

    def test_dense_converges_no_slower_early(self, mlp_result):
        # Area under the early curve: dense >= sparse.
        dense_area = sum(mlp_result.reports["dense"].val_metrics[:4])
        sparse_area = sum(mlp_result.reports["topk"].val_metrics[:4])
        assert dense_area >= sparse_area - 0.1

    def test_curve_accessor(self, mlp_result):
        curve = mlp_result.curve("dense")
        assert len(curve) == 8
        assert curve[0].epoch == 0

    def test_summary_rows(self, mlp_result):
        rows = mlp_result.summary_rows()
        assert {r[0] for r in rows} == {"dense", "topk", "mstopk"}


class TestRunnerConfig:
    def test_unknown_workload(self):
        runner = ConvergenceRunner(epochs=1, num_samples=128)
        with pytest.raises(KeyError):
            runner.run("gan")

    def test_epochs_override(self):
        runner = ConvergenceRunner(
            num_nodes=2, gpus_per_node=2, epochs=10, num_samples=256, seed=1
        )
        result = runner.run("mlp", algorithms=("dense",), epochs=2)
        assert len(result.reports["dense"].val_metrics) == 2

    def test_same_init_across_algorithms(self):
        # Epoch-0 losses must be near-identical: same init, same data.
        runner = ConvergenceRunner(
            num_nodes=2, gpus_per_node=2, epochs=1, num_samples=256, seed=3
        )
        result = runner.run("mlp", algorithms=("dense", "mstopk"))
        a = result.reports["dense"].epoch_losses[0]
        b = result.reports["mstopk"].epoch_losses[0]
        assert abs(a - b) / a < 0.25
