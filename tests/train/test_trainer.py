"""Distributed trainer: the data-parallel equivalence theorem.

The defining property of synchronous data-parallel SGD (paper Eq. 1):
``P`` workers with local batch ``b`` and summed-then-averaged gradients
must take *exactly* the same step as one worker processing the combined
``P·b`` batch.  The dense trainer is tested against that; the sparse
trainers are tested for state handling and improvement.
"""

import numpy as np
import pytest

from repro.cluster.cloud_presets import make_cluster
from repro.models.nn.mlp import MLPClassifier
from repro.optim.sgd import SGD
from repro.train.algorithms import make_scheme
from repro.train.synthetic import make_spiral_classification
from repro.train.trainer import DistributedTrainer
from repro.utils.seeding import new_rng


@pytest.fixture
def setup(rng):
    x, y = make_spiral_classification(512, num_classes=4, rng=rng)
    model = MLPClassifier(input_dim=2, hidden=(16,), num_classes=4)
    return model, x, y


class TestDataParallelEquivalence:
    def test_dense_equals_large_batch_single_worker(self, setup):
        model, x, y = setup
        net = make_cluster(2, "tencent", gpus_per_node=2)
        scheme = make_scheme("dense", net)
        trainer = DistributedTrainer(
            model, scheme, optimizer=SGD(lr=0.1, momentum=0.0), seed=0
        )

        # One synchronous step with 4 workers x batch 8.
        batches = [(x[w * 8 : (w + 1) * 8], y[w * 8 : (w + 1) * 8]) for w in range(4)]
        trainer.train_step(batches)

        # Reference: single worker, batch 32, same init.
        reference = MLPClassifier(input_dim=2, hidden=(16,), num_classes=4)
        ref_params = reference.init_params(new_rng(1))  # seed+1, as in trainer
        _, grads, _ = reference.loss_and_grad(ref_params, x[:32], y[:32])
        opt = SGD(lr=0.1, momentum=0.0)
        opt.step(ref_params, grads)

        for name in ref_params:
            np.testing.assert_allclose(
                trainer.params[name], ref_params[name], rtol=1e-9, atol=1e-11
            )

    def test_2dtar_matches_tree_dense(self, setup):
        model, x, y = setup
        net = make_cluster(2, "tencent", gpus_per_node=2)
        results = {}
        for name in ("dense", "2dtar"):
            trainer = DistributedTrainer(
                model, make_scheme(name, net), optimizer=SGD(lr=0.1, momentum=0.0), seed=0
            )
            batches = [
                (x[w * 8 : (w + 1) * 8], y[w * 8 : (w + 1) * 8]) for w in range(4)
            ]
            trainer.train_step(batches)
            results[name] = {k: v.copy() for k, v in trainer.params.items()}
        for name in results["dense"]:
            np.testing.assert_allclose(
                results["dense"][name], results["2dtar"][name], rtol=1e-9
            )


class TestTrainingLoop:
    def test_report_structure(self, setup):
        model, x, y = setup
        net = make_cluster(2, "tencent", gpus_per_node=2)
        trainer = DistributedTrainer(model, make_scheme("dense", net), seed=0)
        report = trainer.train(
            x, y, epochs=2, local_batch=16, val_x=x[:64], val_y=y[:64]
        )
        assert len(report.epoch_losses) == 2
        assert len(report.val_metrics) == 2
        assert report.iterations > 0
        assert report.comm_seconds > 0

    def test_loss_improves(self, setup):
        model, x, y = setup
        net = make_cluster(2, "tencent", gpus_per_node=2)
        trainer = DistributedTrainer(
            model, make_scheme("dense", net), optimizer=SGD(lr=0.1), seed=0
        )
        report = trainer.train(x, y, epochs=6, local_batch=16)
        assert report.epoch_losses[-1] < report.epoch_losses[0]

    def test_sparse_scheme_trains(self, setup):
        model, x, y = setup
        net = make_cluster(2, "tencent", gpus_per_node=2)
        trainer = DistributedTrainer(
            model,
            make_scheme("mstopk", net, density=0.1),
            optimizer=SGD(lr=0.1),
            seed=0,
        )
        report = trainer.train(x, y, epochs=6, local_batch=16)
        assert report.epoch_losses[-1] < report.epoch_losses[0]

    def test_batch_count_validation(self, setup):
        model, x, y = setup
        net = make_cluster(2, "tencent", gpus_per_node=2)
        trainer = DistributedTrainer(model, make_scheme("dense", net), seed=0)
        with pytest.raises(ValueError):
            trainer.train_step([(x[:8], y[:8])])  # needs 4 batches

    def test_dataset_too_small(self, rng):
        model = MLPClassifier(input_dim=2, hidden=(4,), num_classes=4)
        net = make_cluster(4, "tencent", gpus_per_node=8)  # 32 workers
        trainer = DistributedTrainer(model, make_scheme("dense", net), seed=0)
        x, y = make_spiral_classification(16, num_classes=4, rng=rng)
        with pytest.raises(ValueError):
            trainer.train(x, y, epochs=1, local_batch=4)

    def test_same_seed_reproducible(self, setup):
        model, x, y = setup
        net = make_cluster(2, "tencent", gpus_per_node=2)
        finals = []
        for _ in range(2):
            trainer = DistributedTrainer(
                model, make_scheme("dense", net), optimizer=SGD(lr=0.1), seed=9
            )
            report = trainer.train(x, y, epochs=2, local_batch=16)
            finals.append(report.epoch_losses[-1])
        assert finals[0] == finals[1]


class TestAlgorithmsFactory:
    def test_known_names(self, tiny_cluster):
        for name in ("dense", "dense-ring", "2dtar", "topk", "mstopk", "naiveag-mstopk"):
            scheme = make_scheme(name, tiny_cluster)
            assert scheme.topology.world_size == 4

    def test_unknown_name(self, tiny_cluster):
        with pytest.raises(KeyError):
            make_scheme("psgd", tiny_cluster)

    def test_sparse_schemes_have_error_feedback(self, tiny_cluster):
        assert make_scheme("topk", tiny_cluster).ef is not None
        assert make_scheme("mstopk", tiny_cluster).ef is not None
