"""Synthetic dataset generators."""

import numpy as np
import pytest

from repro.train.synthetic import (
    make_blob_classification,
    make_spiral_classification,
    make_synthetic_images,
    train_val_split,
)
from repro.utils.seeding import new_rng


class TestSpirals:
    def test_shapes_and_classes(self, rng):
        x, y = make_spiral_classification(200, num_classes=4, rng=rng)
        assert x.shape == (200, 2)
        assert set(np.unique(y)) == {0, 1, 2, 3}

    def test_deterministic(self):
        a = make_spiral_classification(100, rng=new_rng(3))
        b = make_spiral_classification(100, rng=new_rng(3))
        np.testing.assert_array_equal(a[0], b[0])

    def test_too_few_samples(self, rng):
        with pytest.raises(ValueError):
            make_spiral_classification(2, num_classes=4, rng=rng)

    def test_not_linearly_trivial(self, rng):
        # Class means overlap near the origin — a property linear probes
        # rely on being broken.
        x, y = make_spiral_classification(400, num_classes=2, rng=rng)
        mean_gap = np.linalg.norm(x[y == 0].mean(axis=0) - x[y == 1].mean(axis=0))
        assert mean_gap < 1.0


class TestBlobs:
    def test_shapes(self, rng):
        x, y = make_blob_classification(50, num_classes=3, dim=5, rng=rng)
        assert x.shape == (50, 5)
        assert y.max() < 3


class TestImages:
    def test_shapes(self, rng):
        x, y = make_synthetic_images(40, num_classes=4, image_size=12, rng=rng)
        assert x.shape == (40, 3, 12, 12)

    def test_class_signal_present(self, rng):
        # Per-class mean images must differ (the injected grating).
        x, y = make_synthetic_images(400, num_classes=2, image_size=12, rng=rng)
        gap = np.abs(x[y == 0].mean(axis=0) - x[y == 1].mean(axis=0)).mean()
        assert gap > 0.2


class TestSplit:
    def test_sizes(self, rng):
        x, y = make_blob_classification(100, rng=rng)
        tx, ty, vx, vy = train_val_split(x, y, val_fraction=0.2)
        assert len(tx) == 80 and len(vx) == 20
        assert len(ty) == 80 and len(vy) == 20

    def test_invalid_fraction(self, rng):
        x, y = make_blob_classification(10, rng=rng)
        with pytest.raises(ValueError):
            train_val_split(x, y, val_fraction=0.0)
