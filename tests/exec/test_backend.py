"""Execution backends: registry, pool plumbing, ordered map semantics."""

import os

import numpy as np
import pytest

from repro.exec.backend import (
    BACKENDS,
    ProcessBackend,
    SerialBackend,
    build_backend,
    cpu_count,
    resolve_jobs,
)
from repro.exec.shm import SharedArray


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


def _boom_on_zero(item):
    import time

    if item == 0:
        raise ValueError("boom")
    delay, value = item
    time.sleep(delay)
    return value


def _slow_then_value(item):
    import time

    delay, value = item
    time.sleep(delay)
    return value


class TestRegistry:
    def test_builtins_registered(self):
        assert "serial" in BACKENDS
        assert "process" in BACKENDS
        assert BACKENDS.canonical("mp") == "process"
        assert BACKENDS.canonical("inline") == "serial"

    def test_build_backend(self):
        assert isinstance(build_backend("serial"), SerialBackend)
        backend = build_backend("process", jobs=1)
        assert isinstance(backend, ProcessBackend)
        backend.close()

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError):
            build_backend("gpu-farm")


class TestJobs:
    def test_resolve_jobs_zero_means_all_cores(self):
        assert resolve_jobs(0) == cpu_count()
        assert resolve_jobs(3) == 3

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)

    def test_bad_start_method_rejected(self):
        with pytest.raises(ValueError):
            ProcessBackend(jobs=1, start_method="teleport")


class TestSerialBackend:
    def test_map_in_order(self):
        assert SerialBackend().map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_no_step_engine(self):
        assert SerialBackend().step_engine(trainer=None) is None


class TestProcessBackend:
    def test_map_returns_submission_order(self):
        with ProcessBackend(jobs=2) as backend:
            assert backend.map(_square, list(range(7))) == [
                x * x for x in range(7)
            ]

    def test_map_order_independent_of_completion_order(self):
        # The slowest task is submitted first; results still come back
        # in submission order.
        items = [(0.05, "slow"), (0.0, "a"), (0.0, "b"), (0.0, "c")]
        with ProcessBackend(jobs=2) as backend:
            assert backend.map(_slow_then_value, items) == ["slow", "a", "b", "c"]

    def test_worker_error_propagates(self):
        with ProcessBackend(jobs=2) as backend:
            with pytest.raises(RuntimeError, match="boom"):
                backend.map(_boom, [1])
            # The pool survives a task failure.
            assert backend.map(_square, [5]) == [25]

    def test_error_drains_inflight_replies_before_raising(self):
        # A failing task must not abandon other workers' queued replies:
        # the request/reply protocol has no sequence numbers, so a stale
        # reply would silently corrupt the *next* map's results.
        with ProcessBackend(jobs=2) as backend:
            with pytest.raises(RuntimeError, match="boom"):
                backend.map(_boom_on_zero, [0, (0.02, 7), 0, 0])
            # Every worker is back in sync: fresh results, right order.
            assert backend.map(_square, [2, 3, 4]) == [4, 9, 16]

    def test_step_engine_error_keeps_pool_usable(self):
        from repro.api.registry import build_cluster, build_scheme, build_workload
        from repro.train.trainer import DistributedTrainer
        from repro.utils.seeding import new_rng

        workload = build_workload("mlp-tiny", num_samples=64, rng=new_rng(0))
        network = build_cluster("tencent", 2, gpus_per_node=2)
        good = [(workload.x[:4], workload.y[:4])] * 4
        bad = [(workload.x[:4], workload.y[:4])] * 3 + [(workload.x[:4, :1], workload.y[:4])]
        with ProcessBackend(jobs=2) as backend:
            trainer = DistributedTrainer(
                workload.model, build_scheme("dense", network), seed=1,
                exec_backend=backend,
            )
            try:
                with pytest.raises(RuntimeError):
                    trainer.train_step(bad)
                # The surviving workers' replies were drained; a good
                # step on the same engine still works.
                loss, _ = trainer.train_step(good)
                assert loss > 0.0
            finally:
                trainer.close()

    def test_workers_spawn_lazily_and_cap_at_jobs(self):
        with ProcessBackend(jobs=4) as backend:
            assert backend._workers == []
            backend.map(_square, [1, 2])
            assert 1 <= len(backend._workers) <= 2

    def test_close_is_idempotent(self):
        backend = ProcessBackend(jobs=1)
        backend.map(_square, [2])
        backend.close()
        backend.close()

    def test_map_empty(self):
        with ProcessBackend(jobs=2) as backend:
            assert backend.map(_square, []) == []

    def test_spawn_start_method_works(self):
        # The import-clean path used on platforms without fork.
        with ProcessBackend(jobs=1, start_method="spawn") as backend:
            assert backend.map(_square, [6]) == [36]


class TestSharedArray:
    def test_create_attach_roundtrip(self):
        owner = SharedArray.create((4, 3))
        try:
            owner.array[:] = np.arange(12).reshape(4, 3)
            view = SharedArray.attach(*owner.spec())
            np.testing.assert_array_equal(view.array, owner.array)
            view.array[2, 1] = 99.0
            assert owner.array[2, 1] == 99.0
            view.close()
        finally:
            owner.close()

    def test_owner_close_unlinks(self):
        owner = SharedArray.create((2,))
        spec = owner.spec()
        owner.close()
        with pytest.raises(FileNotFoundError):
            SharedArray.attach(*spec)

    def test_close_idempotent(self):
        arr = SharedArray.create((2, 2))
        arr.close()
        arr.close()


def test_cpu_count_positive():
    assert cpu_count() >= 1
    assert cpu_count() <= (os.cpu_count() or 1)
