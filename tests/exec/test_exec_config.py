"""ExecConfig: declaration, validation, overrides, CLI flags."""

import pytest

from repro.api.config import (
    ConfigError,
    ExecConfig,
    RunConfig,
    SchedConfig,
    apply_overrides,
    apply_sched_overrides,
)


class TestExecSection:
    def test_defaults_serial(self):
        config = RunConfig()
        assert config.exec == ExecConfig(backend="serial", jobs=1, start_method=None)

    def test_round_trips_through_dict_and_json(self):
        config = RunConfig.from_dict(
            {"name": "x", "exec": {"backend": "process", "jobs": 4,
                                   "start_method": "fork"}}
        )
        assert config.exec.jobs == 4
        assert RunConfig.from_dict(config.to_dict()) == config
        assert RunConfig.from_json(config.to_json()) == config

    def test_to_dict_always_carries_exec(self):
        assert RunConfig().to_dict()["exec"] == {
            "backend": "serial",
            "jobs": 1,
            "start_method": None,
        }

    def test_alias_accepted(self):
        RunConfig.from_dict({"exec": {"backend": "mp"}}).validate()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="unknown exec backend"):
            RunConfig.from_dict({"exec": {"backend": "gpu"}})

    def test_negative_jobs_rejected(self):
        with pytest.raises(ConfigError, match="jobs must be >= 0"):
            RunConfig.from_dict({"exec": {"jobs": -2}})

    def test_bad_start_method_rejected(self):
        with pytest.raises(ConfigError, match="start_method"):
            RunConfig.from_dict({"exec": {"start_method": "thread"}})

    def test_unknown_key_rejected_with_accepted_list(self):
        with pytest.raises(ConfigError, match="accepted keys"):
            RunConfig.from_dict({"exec": {"threads": 2}})

    def test_overrides_reach_exec(self):
        config = apply_overrides(
            RunConfig(), ["exec.backend=process", "exec.jobs=0"]
        )
        assert config.exec.backend == "process"
        assert config.exec.jobs == 0

    def test_sched_config_has_exec_too(self):
        config = SchedConfig.from_dict({"exec": {"backend": "process", "jobs": 2}})
        assert config.exec.jobs == 2
        assert SchedConfig.from_dict(config.to_dict()) == config
        updated = apply_sched_overrides(config, ["exec.jobs=3"])
        assert updated.exec.jobs == 3

    def test_sched_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="unknown exec backend"):
            SchedConfig.from_dict({"exec": {"backend": "gpu"}})


class TestCLIFlags:
    def test_run_backend_flag(self, tmp_path, capsys):
        from repro.api.cli import main

        path = tmp_path / "cfg.json"
        path.write_text(
            RunConfig.from_dict(
                {"name": "cli", "train": {"model": "mlp-tiny", "epochs": 1,
                                          "num_samples": 64}}
            ).to_json()
        )
        assert main(["run", "--config", str(path), "--backend", "process",
                     "--jobs", "2"]) == 0
        assert "final_loss" in capsys.readouterr().out

    def test_jobs_alone_implies_process(self, tmp_path, capsys):
        from repro.api.cli import _exec_overrides, main

        class Args:
            backend = None
            jobs = 2

        assert _exec_overrides(Args()) == ["exec.backend=process", "exec.jobs=2"]
        path = tmp_path / "cfg.json"
        path.write_text(
            RunConfig.from_dict(
                {"name": "cli2", "train": {"model": "mlp-tiny", "epochs": 1,
                                           "num_samples": 64}}
            ).to_json()
        )
        assert main(["run", "--config", str(path), "--jobs", "2"]) == 0
        assert "final_loss" in capsys.readouterr().out

    def test_bad_backend_is_exit_2(self, tmp_path, capsys):
        from repro.api.cli import main

        path = tmp_path / "cfg.json"
        path.write_text(RunConfig().to_json())
        assert main(["run", "--config", str(path), "--backend", "gpu"]) == 2
        assert "unknown exec backend" in capsys.readouterr().err

    def test_list_backends(self, capsys):
        from repro.api.cli import main

        assert main(["list", "backends"]) == 0
        out = capsys.readouterr().out
        assert "serial" in out and "process" in out
