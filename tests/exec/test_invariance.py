"""Seeding invariance: pool width may never change a result.

The contract of :mod:`repro.exec` is that ``jobs`` is pure wall-clock
policy.  These tests pin it end to end through the facade: the same
``RunConfig`` produces an identical :class:`RunReport` whether the
``process`` backend runs with one worker or four — for the trainer's
per-worker fan-out and for whole-config sweeps — across the paper's
dense/topk/mstopk scheme families.
"""

import dataclasses

import numpy as np
import pytest

from repro.api import RunConfig, SchedConfig, run, run_sched
from repro.api.config import ExecConfig
from repro.exec.sweeper import ParallelSweeper

#: The paper's Fig. 10 scheme families (satellite requirement).
SCHEME_FAMILIES = ("dense", "topk", "mstopk")


def _train_config(scheme: str, jobs: int) -> RunConfig:
    return RunConfig.from_dict(
        {
            "name": f"inv-{scheme}",
            "seed": 11,
            "cluster": {"instance": "tencent", "num_nodes": 2, "gpus_per_node": 2},
            "comm": {"scheme": scheme, "density": 0.05},
            "train": {"model": "mlp", "epochs": 1, "num_samples": 192, "local_batch": 8},
            "exec": {"backend": "process", "jobs": jobs},
        }
    )


def _reports_equal(a, b) -> None:
    """Full-strength RunReport equality, modulo the exec section."""
    assert a.summary == b.summary
    assert a.bench_payload() == b.bench_payload()
    if a.training is not None:
        assert dataclasses.asdict(a.training) == dataclasses.asdict(b.training)
    if a.elastic_run is not None:
        assert dataclasses.asdict(a.elastic_run) == dataclasses.asdict(b.elastic_run)
    config_a = {k: v for k, v in a.config.items() if k != "exec"}
    config_b = {k: v for k, v in b.config.items() if k != "exec"}
    assert config_a == config_b


class TestTrainerBackendInvariance:
    @pytest.mark.parametrize("scheme", SCHEME_FAMILIES)
    def test_jobs_1_vs_4_identical_run_report(self, scheme):
        one = run(_train_config(scheme, jobs=1))
        four = run(_train_config(scheme, jobs=4))
        _reports_equal(one, four)

    def test_process_jobs_1_matches_serial(self):
        serial = run(
            dataclasses.replace(_train_config("mstopk", jobs=1), exec=ExecConfig())
        )
        process = run(_train_config("mstopk", jobs=1))
        _reports_equal(serial, process)

    def test_elastic_jobs_invariance(self):
        def config(jobs):
            return RunConfig.from_dict(
                {
                    "name": "inv-elastic",
                    "seed": 5,
                    "cluster": {"num_nodes": 3, "gpus_per_node": 2},
                    "comm": {"scheme": "mstopk", "density": 0.05},
                    "train": {"model": "mlp-tiny", "num_samples": 192, "local_batch": 8},
                    "elastic": {"iterations": 18, "rate": 0.05, "rejoin_delay": 4},
                    "exec": {"backend": "process", "jobs": jobs},
                }
            )

        _reports_equal(run(config(1)), run(config(4)))


class TestSweepInvariance:
    @pytest.fixture(scope="class")
    def sweep_configs(self):
        return [
            RunConfig.from_dict(
                {
                    "name": f"sweep-{scheme}-{seed}",
                    "seed": seed,
                    "comm": {"scheme": scheme, "density": 0.05},
                    "train": {"model": "mlp-tiny", "epochs": 1, "num_samples": 128},
                }
            )
            for scheme in SCHEME_FAMILIES
            for seed in (0, 1)
        ]

    def test_process_sweep_jobs_1_vs_4(self, sweep_configs):
        one = ParallelSweeper("process", jobs=1).run_configs(sweep_configs)
        four = ParallelSweeper("process", jobs=4).run_configs(sweep_configs)
        assert len(one) == len(four) == len(sweep_configs)
        for a, b in zip(one, four):
            _reports_equal(a, b)

    def test_process_sweep_matches_serial_loop(self, sweep_configs):
        serial = [run(config) for config in sweep_configs]
        pooled = ParallelSweeper("process", jobs=4).run_configs(sweep_configs)
        for a, b in zip(serial, pooled):
            _reports_equal(a, b)

    def test_results_keep_submission_order(self, sweep_configs):
        reports = ParallelSweeper("process", jobs=4).run_configs(sweep_configs)
        assert [r.name for r in reports] == [c.name for c in sweep_configs]


class TestSchedInvariance:
    def _config(self, jobs: int) -> SchedConfig:
        return SchedConfig.from_dict(
            {
                "name": "inv-sched",
                "cluster": {"num_nodes": 4, "gpus_per_node": 2},
                "policies": ["bin-pack", "spread", "network-aware"],
                "jobs": [
                    {"name": "a", "profile": "resnet50", "iterations": 120,
                     "max_nodes": 2},
                    {"name": "b", "profile": "vgg19", "scheme": "dense",
                     "iterations": 80, "priority": 1, "max_nodes": 2},
                    {"name": "c", "profile": "transformer", "iterations": 60,
                     "arrival_seconds": 30.0},
                ],
                "exec": {"backend": "process", "jobs": jobs},
            }
        )

    def test_policy_grid_jobs_1_vs_4_identical(self):
        one = run_sched(self._config(1))
        four = run_sched(self._config(4))
        assert list(one) == list(four)
        assert one == four

    def test_matches_serial_run_sched(self):
        serial_config = SchedConfig.from_dict(
            {**self._config(1).to_dict(), "exec": {"backend": "serial"}}
        )
        serial = run_sched(serial_config)
        pooled = run_sched(self._config(3))
        assert list(serial) == list(pooled)
        assert serial == pooled


def test_grad_matrix_values_match_serial_exactly():
    """Row-level check: the shared matrix holds the serial gradients."""
    from repro.api.registry import build_cluster, build_scheme, build_workload
    from repro.exec.backend import ProcessBackend
    from repro.train.trainer import DistributedTrainer
    from repro.utils.seeding import new_rng

    workload = build_workload("cnn", num_samples=64, rng=new_rng(2))
    network = build_cluster("tencent", 2, gpus_per_node=2)
    batches = [(workload.x[i : i + 4], workload.y[i : i + 4]) for i in range(4)]

    serial = DistributedTrainer(workload.model, build_scheme("dense", network), seed=4)
    serial.train_step(batches)
    serial_matrix = serial._grad_matrix.copy()

    with ProcessBackend(jobs=2) as pool:
        parallel = DistributedTrainer(
            workload.model, build_scheme("dense", network), seed=4, exec_backend=pool
        )
        try:
            parallel.train_step(batches)
            np.testing.assert_array_equal(parallel._grad_matrix, serial_matrix)
        finally:
            parallel.close()
