"""ParallelSweeper: ordered fan-out of configs, policies, experiments."""

import pytest

from repro.api.config import RunConfig
from repro.exec.backend import SerialBackend
from repro.exec.sweeper import ParallelSweeper


def _double(x):
    return 2 * x


class TestConstruction:
    def test_default_is_serial(self):
        sweeper = ParallelSweeper()
        assert isinstance(sweeper.backend, SerialBackend)

    def test_accepts_backend_instance_without_owning_it(self):
        backend = SerialBackend()
        sweeper = ParallelSweeper(backend)
        assert sweeper.backend is backend
        assert sweeper._owned is False

    def test_builds_by_name_and_owns(self):
        sweeper = ParallelSweeper("process", jobs=1)
        assert sweeper._owned is True
        assert sweeper.map(_double, [1, 2]) == [2, 4]
        # The owned pool was closed after map.
        assert sweeper.backend._workers == []

    def test_unknown_backend_name(self):
        with pytest.raises(KeyError):
            ParallelSweeper("quantum")


class TestRunConfigs:
    def test_accepts_configs_and_dicts(self):
        config = RunConfig.from_dict(
            {"name": "a", "train": {"model": "mlp-tiny", "epochs": 1,
                                    "num_samples": 64}}
        )
        reports = ParallelSweeper().run_configs([config, config.to_dict()])
        assert [r.name for r in reports] == ["a", "a"]
        assert reports[0].summary == reports[1].summary

    def test_children_forced_serial(self):
        # A process-backend config must not nest a second pool inside
        # the pool worker; the child runs serial and still succeeds.
        config = RunConfig.from_dict(
            {
                "name": "nested",
                "train": {"model": "mlp-tiny", "epochs": 1, "num_samples": 64},
                "exec": {"backend": "process", "jobs": 4},
            }
        )
        (report,) = ParallelSweeper("process", jobs=1).run_configs([config])
        assert report.summary["final_loss"] == pytest.approx(
            ParallelSweeper().run_configs([config])[0].summary["final_loss"]
        )


class TestRunExperiments:
    def test_captured_output_in_entry_order(self):
        entries = [
            ("Table 1", "repro.experiments.table1_instances", False),
            ("Fig. 7", "repro.experiments.fig7_aggregation", False),
        ]
        outputs = ParallelSweeper("process", jobs=2).run_experiments(entries)
        assert [name for name, _ in outputs] == ["Table 1", "Fig. 7"]
        for _, text in outputs:
            assert text.strip()

    def test_serial_and_process_transcripts_match(self):
        entries = [("Table 1", "repro.experiments.table1_instances", False)]
        serial = ParallelSweeper().run_experiments(entries)
        pooled = ParallelSweeper("process", jobs=1).run_experiments(entries)
        assert serial == pooled


class TestRunnerCLI:
    def test_parallel_runner_exit_code_and_output(self, capsys):
        from repro.experiments.runner import main

        assert main(["--only", "Table 1", "--backend", "process", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "jobs=2" in out

    def test_unknown_backend_is_clean_error(self, capsys):
        from repro.experiments.runner import main

        assert main(["--only", "Table 1", "--backend", "warp"]) == 2
        assert "unknown exec backend" in capsys.readouterr().err

    def test_explicit_serial_wins_over_jobs(self, capsys):
        # Same rule as `repro run`: a named backend is never overridden
        # by --jobs; serial streams live (no "jobs=" summary line).
        from repro.experiments.runner import main

        assert main(["--only", "Table 1", "--backend", "serial", "--jobs", "4"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "jobs=" not in out

    def test_no_match_is_clean_error(self, capsys):
        from repro.experiments.runner import main

        assert main(["--only", "Fig. 99"]) == 2
        assert "no experiment matches" in capsys.readouterr().err
