"""Full-system integration tests.

These wire every subsystem together the way the paper's system does:
the distributed sampler feeds the DataCache, the real model trains
through HiTopKComm with MSTopK + shard-level error feedback, LARS rates
come through PTO, and checkpoints punctuate the run.
"""

import numpy as np
import pytest

from repro.cluster.cloud_presets import make_cluster
from repro.data.cache import DataCache
from repro.data.dataset import SyntheticImageDataset
from repro.data.sampler import make_samplers
from repro.models.nn.mlp import MLPClassifier
from repro.optim.lars import LARS, lars_coefficients
from repro.optim.sgd import SGD
from repro.pto.lars_pto import lars_learning_rates_pto
from repro.train.algorithms import make_scheme
from repro.train.checkpoint import load_checkpoint, save_checkpoint
from repro.train.synthetic import make_spiral_classification, train_val_split
from repro.train.trainer import DistributedTrainer
from repro.utils.clock import VirtualClock
from repro.utils.seeding import new_rng


@pytest.fixture(scope="module")
def cluster():
    return make_cluster(2, "tencent", gpus_per_node=2)


class TestFullPipeline:
    def test_sampler_cache_trainer_end_to_end(self, cluster):
        """Sampler-driven cached data feeding a sparsified training run."""
        rng = new_rng(0)
        dataset = SyntheticImageDataset(64, resolution=8, num_classes=4, seed=1)
        topo = cluster.topology
        samplers = make_samplers(len(dataset), topo, seed=5)
        caches = [
            DataCache(dataset, node=node, num_nodes=topo.num_nodes)
            for node in range(topo.num_nodes)
        ]

        model = MLPClassifier(input_dim=8 * 8 * 3, hidden=(16,), num_classes=4)
        trainer = DistributedTrainer(
            model, make_scheme("mstopk", cluster, density=0.1),
            optimizer=SGD(lr=0.05), seed=0,
        )

        clock = VirtualClock()
        losses = []
        for epoch in range(3):
            # Build one synchronous batch per worker from its sampler
            # slice, reading through its node's cache.
            batches = []
            for rank in range(topo.world_size):
                indices = samplers[rank].epoch_indices(epoch)[:4]
                cache = caches[topo.node_of(rank)]
                xs, ys = [], []
                for index in indices:
                    outcome = cache.read(int(index), clock, rng)
                    xs.append(outcome.pixels)
                    ys.append(dataset.label(int(index)))
                batches.append((np.stack(xs), np.asarray(ys)))
            loss, _ = trainer.train_step(batches)
            losses.append(loss)

        # Learning happened and the cache transitioned tiers.
        assert losses[-1] < losses[0] * 1.2
        assert caches[0].stats.memory_hits > 0

    def test_lars_through_pto_matches_serial(self, cluster, rng):
        """The PTO path plugged into the LARS optimizer is bit-exact."""
        model = MLPClassifier(input_dim=2, hidden=(8,), num_classes=4)
        params = model.init_params(rng)
        x, y = make_spiral_classification(64, num_classes=4, rng=rng)
        _, grads, _ = model.loss_and_grad(params, x, y)

        names = list(params)
        weights = [params[n] for n in names]
        gradients = [grads[n] for n in names]

        serial = lars_coefficients(weights, gradients, eta=0.1)
        pto = lars_learning_rates_pto(cluster, weights, gradients, eta=0.1)
        np.testing.assert_allclose(pto.result, serial)

        # And the optimizer consumes either identically.
        lars_a = LARS(lr=0.1, skip_keywords=())
        lars_b = LARS(lr=0.1, skip_keywords=())
        params_a = {k: v.copy() for k, v in params.items()}
        params_b = {k: v.copy() for k, v in params.items()}
        lars_a.step(params_a, grads)
        lars_b.step(
            params_b, grads, precomputed_rates=dict(zip(names, pto.result))
        )
        for name in names:
            np.testing.assert_allclose(params_a[name], params_b[name])

    def test_training_with_checkpoint_mid_run(self, cluster, tmp_path, rng):
        """Sparsified training checkpointed and resumed mid-epoch."""
        x, y = make_spiral_classification(512, num_classes=4, rng=rng)
        train_x, train_y, val_x, val_y = train_val_split(x, y)
        model = MLPClassifier(input_dim=2, hidden=(24,), num_classes=4)

        trainer = DistributedTrainer(
            model, make_scheme("mstopk", cluster, density=0.1),
            optimizer=SGD(lr=0.05, momentum=0.9), seed=0,
        )
        trainer.train(train_x, train_y, epochs=3, local_batch=16)
        path = save_checkpoint(trainer, tmp_path / "mid")

        resumed = DistributedTrainer(
            model, make_scheme("mstopk", cluster, density=0.1),
            optimizer=SGD(lr=0.05, momentum=0.9), seed=0,
        )
        load_checkpoint(resumed, path)
        report = resumed.train(
            train_x, train_y, epochs=3, local_batch=16,
            val_x=val_x, val_y=val_y,
            evaluate=lambda p, vx, vy: model.evaluate(p, vx, vy, topk=1),
        )
        assert report.final_val_metric > 0.5

    def test_all_schemes_agree_on_direction(self, cluster, rng):
        """Every aggregation scheme produces a descent direction.

        The sparsified aggregate must positively correlate with the
        dense gradient (cosine > 0) — the property that makes the whole
        compression business sound.
        """
        x, y = make_spiral_classification(256, num_classes=4, rng=rng)
        model = MLPClassifier(input_dim=2, hidden=(12,), num_classes=4)
        params = model.init_params(rng)

        from repro.utils.partition import flatten_tensors

        worker_grads = []
        for w in range(4):
            _, grads, _ = model.loss_and_grad(
                params, x[w * 32 : (w + 1) * 32], y[w * 32 : (w + 1) * 32]
            )
            flat, _ = flatten_tensors([grads[k] for k in params])
            worker_grads.append(flat)
        dense_sum = np.sum(worker_grads, axis=0)

        for name in ("dense", "2dtar", "topk", "mstopk", "naiveag-mstopk"):
            scheme = make_scheme(name, cluster, density=0.2)
            out = scheme.aggregate(worker_grads, rng=rng).outputs[0]
            cosine = out @ dense_sum / (
                np.linalg.norm(out) * np.linalg.norm(dense_sum) + 1e-12
            )
            assert cosine > 0.3, f"{name}: cosine {cosine:.3f}"
