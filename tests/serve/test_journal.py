"""The write-ahead journal: framing, torn tails, repair."""

import json
import struct

import pytest

from repro.serve.journal import (
    JOURNAL_MAGIC,
    MAX_FRAME_BYTES,
    Journal,
    JournalError,
    canonical_json,
    encode_frame,
    repair_journal,
    scan_journal,
)


class TestFraming:
    def test_roundtrip_records_in_order(self, tmp_path):
        path = tmp_path / "j.bin"
        records = [{"kind": "input", "seq": i, "op": {"op": "tick"}} for i in range(1, 6)]
        with Journal(path) as journal:
            for record in records:
                journal.append(record)
        scan = scan_journal(path)
        assert scan.records == records
        assert not scan.torn
        assert scan.last_seq == 5
        assert scan.good_bytes == path.stat().st_size

    def test_fresh_journal_writes_magic_header(self, tmp_path):
        path = tmp_path / "j.bin"
        Journal(path).close()
        assert path.read_bytes() == JOURNAL_MAGIC
        assert scan_journal(path).records == []

    def test_canonical_json_is_sorted_and_compact(self):
        blob = canonical_json({"b": 1, "a": [1, 2]})
        assert blob == '{"a":[1,2],"b":1}'

    def test_reopen_appends_after_existing_frames(self, tmp_path):
        path = tmp_path / "j.bin"
        with Journal(path) as journal:
            journal.append({"seq": 1})
        with Journal(path) as journal:
            journal.append({"seq": 2})
        assert [r["seq"] for r in scan_journal(path).records] == [1, 2]

    def test_not_a_journal_raises(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"NOTAJRNL" + b"x" * 32)
        with pytest.raises(JournalError, match="bad or missing"):
            scan_journal(path)


class TestTornTails:
    def _journal_with(self, tmp_path, n=3):
        path = tmp_path / "j.bin"
        with Journal(path) as journal:
            for i in range(1, n + 1):
                journal.append({"kind": "input", "seq": i})
        return path

    def test_append_torn_leaves_partial_final_frame(self, tmp_path):
        path = tmp_path / "j.bin"
        with Journal(path) as journal:
            journal.append({"seq": 1})
            journal.append_torn({"seq": 2})
        scan = scan_journal(path)
        assert [r["seq"] for r in scan.records] == [1]
        assert scan.torn and scan.torn_bytes > 0

    def test_truncation_mid_header_drops_only_the_tail(self, tmp_path):
        path = self._journal_with(tmp_path)
        good = scan_journal(path).good_bytes
        path.write_bytes(path.read_bytes() + b"\x07\x00")  # 2 stray bytes
        scan = scan_journal(path)
        assert scan.good_bytes == good and scan.torn_bytes == 2
        assert [r["seq"] for r in scan.records] == [1, 2, 3]

    def test_truncation_mid_payload_drops_only_the_tail(self, tmp_path):
        path = self._journal_with(tmp_path, n=2)
        data = path.read_bytes()
        path.write_bytes(data[:-3])  # kill mid-write of the last frame
        scan = scan_journal(path)
        assert [r["seq"] for r in scan.records] == [1]
        assert scan.torn

    def test_crc_mismatch_stops_the_scan(self, tmp_path):
        path = self._journal_with(tmp_path, n=3)
        data = bytearray(path.read_bytes())
        data[-2] ^= 0xFF  # flip a payload byte of the last frame
        path.write_bytes(bytes(data))
        scan = scan_journal(path)
        assert [r["seq"] for r in scan.records] == [1, 2]
        assert scan.torn

    def test_absurd_length_field_stops_the_scan(self, tmp_path):
        path = self._journal_with(tmp_path, n=1)
        bad_head = struct.pack("<II", MAX_FRAME_BYTES + 1, 0)
        path.write_bytes(path.read_bytes() + bad_head + b"zzz")
        scan = scan_journal(path)
        assert [r["seq"] for r in scan.records] == [1]
        assert scan.torn

    def test_repair_truncates_back_to_last_good_frame(self, tmp_path):
        path = tmp_path / "j.bin"
        with Journal(path) as journal:
            journal.append({"seq": 1})
            journal.append_torn({"seq": 2})
        scan = repair_journal(path)
        assert scan.torn_bytes > 0  # reported what was dropped
        assert path.stat().st_size == scan.good_bytes
        # After repair the journal appends cleanly where history ends.
        with Journal(path) as journal:
            journal.append({"seq": 2})
        assert [r["seq"] for r in scan_journal(path).records] == [1, 2]

    def test_repair_is_a_noop_on_clean_journals(self, tmp_path):
        path = self._journal_with(tmp_path)
        before = path.read_bytes()
        scan = repair_journal(path)
        assert not scan.torn
        assert path.read_bytes() == before

    def test_frame_encoding_is_length_then_crc(self):
        frame = encode_frame({"a": 1})
        payload = canonical_json({"a": 1}).encode()
        length, crc = struct.unpack_from("<II", frame)
        assert length == len(payload)
        assert frame[8:] == payload
        assert json.loads(payload) == {"a": 1}
