"""Double-buffered snapshots: CRC verification, slots, torn-write fallback."""

import pytest

from repro.serve.snapshot import (
    SLOT_NAMES,
    SnapshotCorruptError,
    SnapshotStore,
    read_snapshot,
    write_snapshot,
)
from repro.train.checkpoint import CheckpointCorruptError


class TestOneFile:
    def test_roundtrip_meta_and_state(self, tmp_path):
        path = tmp_path / "s.bin"
        state = {"records": {"j": [1, 2, 3]}, "now": 42.5}
        write_snapshot(path, state, {"applied_seq": 7})
        meta, loaded = read_snapshot(path)
        assert meta == {"applied_seq": 7}
        assert loaded == state

    def test_shared_references_survive_pickling(self, tmp_path):
        path = tmp_path / "s.bin"
        shared = {"name": "job"}
        write_snapshot(path, {"a": shared, "b": shared}, {"applied_seq": 1})
        _, loaded = read_snapshot(path)
        assert loaded["a"] is loaded["b"]  # one object graph, not two copies

    def test_byte_flip_fails_crc_before_unpickling(self, tmp_path):
        path = tmp_path / "s.bin"
        write_snapshot(path, {"x": 1}, {"applied_seq": 1})
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotCorruptError, match="CRC32"):
            read_snapshot(path)

    def test_truncation_mid_file_is_detected(self, tmp_path):
        path = tmp_path / "s.bin"
        write_snapshot(path, {"x": list(range(100))}, {"applied_seq": 1})
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(SnapshotCorruptError, match="truncated"):
            read_snapshot(path)

    def test_tear_after_writes_a_real_torn_file(self, tmp_path):
        path = tmp_path / "s.bin"
        write_snapshot(path, {"x": 1}, {"applied_seq": 1}, tear_after=0.5)
        with pytest.raises(SnapshotCorruptError):
            read_snapshot(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "s.bin"
        path.write_bytes(b"NOTSNAPS" + b"\x00" * 64)
        with pytest.raises(SnapshotCorruptError, match="header"):
            read_snapshot(path)

    def test_corrupt_error_is_a_checkpoint_corrupt_error(self):
        # Callers that already handle corrupt training checkpoints get
        # corrupt snapshots for free.
        assert issubclass(SnapshotCorruptError, CheckpointCorruptError)


class TestStore:
    def test_saves_alternate_between_slots(self, tmp_path):
        store = SnapshotStore(tmp_path)
        first = store.save({"n": 1}, {"applied_seq": 1})
        second = store.save({"n": 2}, {"applied_seq": 2})
        third = store.save({"n": 3}, {"applied_seq": 3})
        assert first.name != second.name
        assert third.name == first.name  # overwrote the stale slot
        assert {first.name, second.name} == set(SLOT_NAMES)

    def test_load_prefers_newest_applied_seq(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save({"n": 1}, {"applied_seq": 1})
        store.save({"n": 2}, {"applied_seq": 2})
        loaded = store.load()
        assert loaded.state == {"n": 2}
        assert loaded.meta["applied_seq"] == 2
        assert loaded.corrupt_slots == 0

    def test_corrupt_newest_falls_back_to_previous_slot(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save({"n": 1}, {"applied_seq": 1})
        newest = store.save({"n": 2}, {"applied_seq": 2})
        # Truncate the newest snapshot mid-file — a torn write, not just
        # a byte flip.
        data = newest.read_bytes()
        newest.write_bytes(data[: len(data) // 2])
        loaded = store.load()
        assert loaded.state == {"n": 1}
        assert loaded.slot != newest.name
        assert loaded.corrupt_slots == 1  # the fallback is reported

    def test_both_slots_corrupt_returns_none(self, tmp_path):
        store = SnapshotStore(tmp_path)
        for seq in (1, 2):
            path = store.save({"n": seq}, {"applied_seq": seq})
            path.write_bytes(path.read_bytes()[:10])
        assert store.load() is None  # caller replays the journal from genesis

    def test_empty_store_returns_none(self, tmp_path):
        assert SnapshotStore(tmp_path).load() is None

    def test_target_slot_overwrites_corrupt_slot_first(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save({"n": 1}, {"applied_seq": 1})
        newest = store.save({"n": 2}, {"applied_seq": 2})
        stale = store.save({"n": 3}, {"applied_seq": 3})
        assert stale.name != newest.name
        # Corrupting the newest (seq 3) makes its slot the next target.
        stale.write_bytes(stale.read_bytes()[:10])
        assert store.target_slot() == stale
