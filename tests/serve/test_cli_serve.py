"""``repro serve`` / ``repro submit`` CLI: happy paths and failure modes."""

import json
import os
import pathlib
import subprocess
import sys

from repro.api.cli import main

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
SERVE_CONFIG = REPO / "examples" / "configs" / "serve_smoke.json"
DAY_OPS = REPO / "examples" / "serve" / "day_ops.jsonl"


def write_script(tmp_path, ops, name="ops.jsonl"):
    path = tmp_path / name
    path.write_text("\n".join(json.dumps(op) for op in ops) + "\n")
    return path


class TestServe:
    def test_scripted_run_prints_the_payload_table(self, tmp_path, capsys):
        assert main([
            "serve", "--config", str(SERVE_CONFIG),
            "--script", str(DAY_OPS), "--state-dir", str(tmp_path / "s"),
        ]) == 0
        out = capsys.readouterr().out
        for job in ("resnet-prod", "vgg-batch", "topk-sweep", "xfmr-deadline"):
            assert job in out

    def test_json_payload_carries_serve_meta(self, tmp_path, capsys):
        assert main([
            "serve", "--config", str(SERVE_CONFIG), "--json",
            "--script", str(DAY_OPS), "--state-dir", str(tmp_path / "s"),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        serve = payload["meta"]["serve"]
        assert serve["submitted"] == 4 and serve["rejected"] == 0
        assert serve["digest"]
        assert serve["series"]  # incremental BENCH trajectory points

    def test_out_writes_payload_file(self, tmp_path, capsys):
        out_path = tmp_path / "payload.json"
        assert main([
            "serve", "--config", str(SERVE_CONFIG),
            "--script", str(DAY_OPS), "--state-dir", str(tmp_path / "s"),
            "--out", str(out_path),
        ]) == 0
        assert "payload written" in capsys.readouterr().out
        assert json.loads(out_path.read_text())["meta"]["serve"]["submitted"] == 4

    def test_restart_against_same_state_dir_is_idempotent(self, tmp_path, capsys):
        state = tmp_path / "s"
        argv = [
            "serve", "--config", str(SERVE_CONFIG), "--json",
            "--script", str(DAY_OPS), "--state-dir", str(state),
        ]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        # Same ops, same state dir: everything dedups, payload identical.
        assert main(argv) == 0
        assert json.loads(capsys.readouterr().out) == first

    def test_set_overrides_reach_the_daemon(self, tmp_path, capsys):
        assert main([
            "serve", "--config", str(SERVE_CONFIG), "--json",
            "--script", str(DAY_OPS), "--state-dir", str(tmp_path / "s"),
            "--set", "name=renamed", "--snapshot-every", "2",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["bench"] == "serve_renamed"


class TestDrill:
    def test_drill_passes_at_every_default_point(self, tmp_path, capsys):
        assert main([
            "serve", "--config", str(SERVE_CONFIG), "--drill",
            "--script", str(DAY_OPS), "--state-dir", str(tmp_path / "d"),
        ]) == 0
        out = capsys.readouterr().out
        for point in ("tick:2", "snapshot:1", "append:3"):
            assert f"ok: kill at {point}" in out
        assert "all_match=True" in out and "lost_acked_total=0" in out

    def test_drill_json_report(self, tmp_path, capsys):
        out_path = tmp_path / "drill.json"
        assert main([
            "serve", "--config", str(SERVE_CONFIG), "--drill",
            "--kill-at", "tick:1", "--script", str(DAY_OPS),
            "--state-dir", str(tmp_path / "d"), "--out", str(out_path),
        ]) == 0
        report = json.loads(out_path.read_text())
        assert report["all_match"] is True
        assert report["lost_acked_total"] == 0
        assert [p["point"] for p in report["points"]] == ["tick:1"]


class TestServeFailureModes:
    def test_malformed_jsonl_submission(self, tmp_path, capsys):
        script = tmp_path / "bad.jsonl"
        script.write_text('{"op": "submit", "job": {"name": "x"}}\n{nope\n')
        assert main([
            "serve", "--config", str(SERVE_CONFIG),
            "--script", str(script), "--state-dir", str(tmp_path / "s"),
        ]) == 2
        err = capsys.readouterr().err
        assert "line 2" in err and "invalid JSON" in err

    def test_unknown_job_key_in_script(self, tmp_path, capsys):
        script = write_script(tmp_path, [
            {"op": "submit", "job": {"name": "x", "iterationz": 5}},
        ])
        assert main([
            "serve", "--config", str(SERVE_CONFIG),
            "--script", str(script), "--state-dir", str(tmp_path / "s"),
        ]) == 2
        err = capsys.readouterr().err
        assert "iterationz" in err

    def test_queue_full_rejection(self, tmp_path, capsys):
        script = write_script(tmp_path, [
            {"op": "submit", "job": {"name": "a"}},
            {"op": "submit", "job": {"name": "b"}},
        ])
        assert main([
            "serve", "--config", str(SERVE_CONFIG), "--queue-limit", "1",
            "--script", str(script), "--state-dir", str(tmp_path / "s"),
        ]) == 2
        err = capsys.readouterr().err
        assert "queue full" in err and "queue_limit=1" in err

    def test_missing_config(self, capsys):
        assert main(["serve", "--config", "/nonexistent/cfg.json"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_bad_kill_spec(self, tmp_path, capsys):
        assert main([
            "serve", "--config", str(SERVE_CONFIG), "--kill-at", "reboot:1",
            "--script", str(DAY_OPS), "--state-dir", str(tmp_path / "s"),
        ]) == 2
        assert "bad kill point" in capsys.readouterr().err

    def test_socket_excludes_drill(self, tmp_path, capsys):
        assert main([
            "serve", "--config", str(SERVE_CONFIG), "--drill",
            "--socket", str(tmp_path / "sock"),
        ]) == 2
        assert "--socket cannot be combined" in capsys.readouterr().err


class TestSubmitFailureModes:
    def test_connect_retry_exhaustion(self, tmp_path, capsys):
        assert main([
            "submit", "--socket", str(tmp_path / "no-daemon.sock"),
            "--op", '{"op": "status"}',
            "--retries", "2", "--backoff", "0.01",
        ]) == 2
        err = capsys.readouterr().err
        assert "2 attempt(s)" in err and "could not connect" in err

    def test_bad_job_json(self, capsys):
        assert main(["submit", "--socket", "/tmp/x.sock", "--job", "{nope"]) == 2
        assert "--job is not valid JSON" in capsys.readouterr().err

    def test_non_object_op(self, capsys):
        assert main(["submit", "--socket", "/tmp/x.sock", "--op", "[1,2]"]) == 2
        assert "must be a JSON object" in capsys.readouterr().err

    def test_no_ops_at_all(self, capsys):
        assert main(["submit", "--socket", "/tmp/x.sock"]) == 2
        assert "at least one" in capsys.readouterr().err

    def test_missing_ops_file(self, capsys):
        assert main([
            "submit", "--socket", "/tmp/x.sock", "--file", "/nonexistent.jsonl",
        ]) == 2
        assert "not found" in capsys.readouterr().err


class TestNoTracebacks:
    def test_failures_are_one_line_without_traceback(self, tmp_path):
        """Serve/submit user errors: one ``error:`` line, exit 2, no trace."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
        bad_script = tmp_path / "bad.jsonl"
        bad_script.write_text("{nope\n")
        state = str(tmp_path / "s")
        for argv in (
            ["serve", "--config", "/nonexistent/cfg.json"],
            ["serve", "--config", str(SERVE_CONFIG),
             "--script", str(bad_script), "--state-dir", state],
            ["serve", "--config", str(SERVE_CONFIG), "--kill-at", "reboot:1",
             "--script", str(DAY_OPS), "--state-dir", state],
            ["submit", "--socket", str(tmp_path / "no.sock"),
             "--op", '{"op": "status"}', "--retries", "1", "--backoff", "0.01"],
            ["submit", "--socket", str(tmp_path / "no.sock"), "--job", "{nope"],
        ):
            proc = subprocess.run(
                [sys.executable, "-m", "repro", *argv],
                capture_output=True, text=True, timeout=120, env=env,
            )
            assert proc.returncode == 2, argv
            assert "Traceback" not in proc.stderr, argv
            lines = [line for line in proc.stderr.splitlines() if line.strip()]
            assert len(lines) == 1 and lines[0].startswith("error: "), proc.stderr
