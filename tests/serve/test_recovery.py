"""Kill-anywhere recovery: journal replay, snapshot fallback, drills."""

import json

import pytest

from repro.api.config import ServeConfig
from repro.serve.daemon import ServeRuntime, SimulatedCrash, parse_kill_spec
from repro.serve.drill import DEFAULT_POINTS, RecoveryDrill, ops_from_script
from repro.serve.journal import canonical_json, scan_journal

CONFIG = ServeConfig.from_dict(
    {
        "name": "drill",
        "seed": 7,
        "cluster": {"instance": "tencent", "num_nodes": 4, "gpus_per_node": 2},
        "policy": "bin-pack",
        "snapshot_every": 3,
    }
)

OPS = [
    {"op": "submit", "id": 1, "job": {"name": "a", "iterations": 150, "max_nodes": 3}},
    {"op": "submit", "id": 2, "job": {"name": "b", "profile": "vgg19",
                                      "iterations": 80, "arrival_seconds": 10.0}},
    {"op": "tick", "id": 3, "until": 30.0},
    {"op": "submit", "id": 4, "job": {"name": "c", "iterations": 120,
                                      "arrival_seconds": 35.0, "priority": 1}},
    {"op": "tick", "id": 5, "until": 60.0},
    {"op": "drain", "id": 6},
]


def run_ops(runtime, ops):
    acks = []
    for op in ops:
        ack = runtime.handle(op)
        assert ack.get("ok"), ack
        acks.append(ack)
    return acks


class TestKillSpec:
    def test_parses_point_and_count(self):
        assert parse_kill_spec("tick:2") == ("tick", 2)
        assert parse_kill_spec("snapshot:1") == ("snapshot", 1)
        assert parse_kill_spec("append:3") == ("append", 3)

    @pytest.mark.parametrize("spec", ["tick", "tick:0", "tick:x", "reboot:1", ""])
    def test_rejects_junk(self, spec):
        with pytest.raises(ValueError, match="bad kill point"):
            parse_kill_spec(spec)


class TestRestart:
    def test_clean_restart_replays_to_the_same_digest(self, tmp_path):
        runtime = ServeRuntime(CONFIG, tmp_path)
        run_ops(runtime, OPS)
        digest = runtime.engine.state_digest()
        payload = runtime.finalize()
        runtime.close()

        again = ServeRuntime(CONFIG, tmp_path)
        assert again.recovery["recovered"]
        assert again.engine.state_digest() == digest
        assert again.finalize() == payload
        again.close()

    def test_restart_dedups_resent_ops(self, tmp_path):
        runtime = ServeRuntime(CONFIG, tmp_path)
        run_ops(runtime, OPS)
        runtime.close()
        again = ServeRuntime(CONFIG, tmp_path)
        for op in OPS:  # the whole stream again, at-least-once style
            ack = again.handle(op)
            assert ack == {"ok": True, "id": op["id"], "duplicate": True}
        again.close()

    def test_recovered_note_lands_in_the_journal(self, tmp_path):
        runtime = ServeRuntime(CONFIG, tmp_path)
        run_ops(runtime, OPS[:3])
        runtime.close()
        again = ServeRuntime(CONFIG, tmp_path)
        again.close()
        notes = [
            r for r in scan_journal(tmp_path / "journal.bin").records
            if r.get("kind") == "note" and r.get("event") == "recovered"
        ]
        assert len(notes) == 1
        assert notes[0]["digest"] == again.engine.state_digest()

    def test_tampered_audit_digest_fails_replay_loudly(self, tmp_path):
        runtime = ServeRuntime(CONFIG, tmp_path)
        run_ops(runtime, OPS[:2])  # below snapshot_every: replay from genesis
        runtime.close()
        # Rewrite the journal with one audit digest falsified: replay
        # must refuse rather than silently diverge.
        from repro.serve.journal import Journal

        path = tmp_path / "journal.bin"
        records = scan_journal(path).records
        for record in records:
            if record.get("kind") == "audit":
                record["digest"] = "0" * 16
                break
        path.unlink()
        with Journal(path) as journal:
            for record in records:
                journal.append(record)
        with pytest.raises(RuntimeError, match="replay diverged"):
            ServeRuntime(CONFIG, tmp_path)


class TestKillPoints:
    def _crash_at(self, tmp_path, point):
        runtime = ServeRuntime(CONFIG, tmp_path, kill_plan=point)
        acked = 0
        with pytest.raises(SimulatedCrash):
            for op in OPS:
                ack = runtime.handle(op)
                assert ack.get("ok"), ack
                acked += 1
        runtime.close()
        return acked

    def test_mid_tick_crash_loses_nothing_acked(self, tmp_path):
        acked = self._crash_at(tmp_path, "tick:1")
        recovered = ServeRuntime(CONFIG, tmp_path)
        # The tick was journaled before the crash, so replay applied it.
        assert recovered.recovery["replayed"] == acked + 1
        for name in ("a", "b"):
            assert name in recovered.engine.records
        recovered.close()

    def test_mid_append_crash_loses_only_the_unacked_op(self, tmp_path):
        acked = self._crash_at(tmp_path, "append:2")
        recovered = ServeRuntime(CONFIG, tmp_path)
        assert recovered.recovery["torn_bytes_dropped"] > 0
        assert recovered.recovery["replayed"] == acked == 1
        # Op 2 (submit "b") was never acked; the client resends it.
        assert "b" not in recovered.engine.records
        ack = recovered.handle(OPS[1])
        assert ack["ok"] and not ack.get("duplicate")
        assert "b" in recovered.engine.records
        recovered.close()

    def test_mid_snapshot_crash_falls_back_to_previous_slot(self, tmp_path):
        # snapshot_every=3 → snapshot 1 after op 3, snapshot 2 after op
        # 6; killing snapshot 2 mid-write tears the *stale* slot while
        # the snapshot-1 slot survives.
        runtime = ServeRuntime(CONFIG, tmp_path, kill_plan="snapshot:2")
        with pytest.raises(SimulatedCrash):
            run_ops(runtime, OPS)
        runtime.close()
        recovered = ServeRuntime(CONFIG, tmp_path)
        assert recovered.recovery["corrupt_snapshots"] == 1  # fell back
        assert recovered.recovery["snapshot_slot"] is not None
        assert recovered.recovery["snapshot_seq"] > 0
        # The logged recovery step records the fallback.
        notes = [
            r for r in scan_journal(tmp_path / "journal.bin").records
            if r.get("kind") == "note" and r.get("event") == "recovered"
        ]
        assert notes and notes[-1]["corrupt_snapshots"] == 1
        recovered.close()


class TestDrillHarness:
    def test_default_points_cover_every_kill_kind(self):
        kinds = {parse_kill_spec(p)[0] for p in DEFAULT_POINTS}
        assert kinds == {"tick", "snapshot", "append"}

    def test_full_drill_is_byte_identical_with_zero_losses(self, tmp_path):
        drill = RecoveryDrill(
            CONFIG, [dict(op) for op in OPS], work_dir=tmp_path,
            points=("tick:1", "snapshot:1", "append:4"),
        )
        result = drill.run()
        assert result["all_match"] is True
        assert result["lost_acked_total"] == 0
        assert result["ops"] == len(OPS)
        assert result["reference_digest"]
        for outcome in result["points"]:
            assert outcome["payload_match"], outcome
            assert outcome["lost_acked"] == 0
            assert outcome["resent"] >= 1

    def test_drill_rejects_points_past_the_stream(self, tmp_path):
        drill = RecoveryDrill(
            CONFIG, [dict(op) for op in OPS], work_dir=tmp_path,
            points=("tick:99",),
        )
        with pytest.raises(ValueError, match="finished before the injection"):
            drill.run()

    def test_ops_from_script_assigns_positional_ids(self):
        lines = [
            "# a comment",
            json.dumps({"op": "submit", "job": {"name": "x"}}),
            "",
            json.dumps({"op": "drain"}),
        ]
        ops = ops_from_script(lines)
        assert [op["id"] for op in ops] == [1, 2]

    def test_ops_from_script_rejects_bad_json(self):
        with pytest.raises(ValueError, match="line 2: invalid JSON"):
            ops_from_script(["{}", "{nope"])


class TestSigtermDrain:
    def test_drain_request_stops_the_script_and_finalizes(self, tmp_path):
        runtime = ServeRuntime(CONFIG, tmp_path)
        runtime.handle(OPS[0])
        runtime.request_drain()
        from repro.serve.daemon import run_script

        lines = [canonical_json(op) for op in OPS[1:]]
        acks = run_script(runtime, lines)
        # The in-flight op finishes; everything after is left unread.
        assert len(acks) == 1 and acks[0]["job"] == "b"
        payload = runtime.finalize()
        assert payload["meta"]["serve"]["submitted"] == 2
        runtime.close()
