"""The unix-socket transport: live daemon + ``repro submit`` client."""

import threading

import pytest

from repro.api.config import ServeConfig
from repro.serve.client import SubmitError, connect, send_ops
from repro.serve.daemon import ServeRuntime, serve_socket

CONFIG = ServeConfig.from_dict(
    {
        "name": "sock",
        "seed": 5,
        "cluster": {"instance": "tencent", "num_nodes": 2, "gpus_per_node": 2},
        "policy": "bin-pack",
        "queue_limit": 2,
    }
)


@pytest.fixture
def daemon(tmp_path):
    """A live socket daemon on a background thread; joins on teardown."""
    runtime = ServeRuntime(CONFIG, tmp_path / "state")
    socket_path = tmp_path / "repro.sock"
    thread = threading.Thread(
        target=serve_socket, args=(runtime, socket_path), daemon=True
    )
    thread.start()
    yield runtime, str(socket_path)
    runtime.stopped = True
    thread.join(timeout=5)
    assert not thread.is_alive()
    runtime.close()


class TestRoundTrip:
    def test_submit_tick_status_stop(self, daemon):
        runtime, socket_path = daemon
        acks = send_ops(socket_path, [
            {"op": "submit", "id": 1, "job": {"name": "live", "iterations": 60}},
            {"op": "tick", "id": 2, "until": 30.0},
            {"op": "status"},
            {"op": "stop", "id": 3},
        ])
        assert [a["ok"] for a in acks] == [True] * 4
        assert acks[0]["job"] == "live" and acks[0]["backlog"] == 1
        assert acks[1]["now"] == 30.0
        assert acks[2]["submitted"] == 1
        assert runtime.stopped

    def test_bad_op_fails_only_its_own_ack(self, daemon):
        _, socket_path = daemon
        acks = send_ops(socket_path, [
            {"op": "reboot", "id": 1},
            {"op": "submit", "id": 1, "job": {"name": "after-garbage"}},
            {"op": "stop", "id": 2},
        ])
        assert not acks[0]["ok"] and "unknown op" in acks[0]["error"]
        assert acks[1]["ok"] and acks[2]["ok"]  # the daemon stayed up

    def test_queue_full_is_shed_not_fatal(self, daemon):
        _, socket_path = daemon
        ops = [
            {"op": "submit", "id": i + 1, "job": {"name": f"j{i}"}}
            for i in range(3)
        ] + [{"op": "stop", "id": 4}]
        acks = send_ops(socket_path, ops)
        assert acks[0]["ok"] and acks[1]["ok"]
        assert not acks[2]["ok"] and "queue full" in acks[2]["error"]
        assert acks[3]["ok"]

    def test_client_retry_reaches_a_late_daemon(self, tmp_path):
        """The backoff loop covers a daemon that binds after the client starts."""
        runtime = ServeRuntime(CONFIG, tmp_path / "state")
        socket_path = tmp_path / "late.sock"

        def bind_late():
            import time

            time.sleep(0.15)
            serve_socket(runtime, socket_path)

        thread = threading.Thread(target=bind_late, daemon=True)
        thread.start()
        try:
            sock = connect(str(socket_path), retries=8, backoff=0.05)
            sock.close()
        finally:
            runtime.stopped = True
            thread.join(timeout=5)
            runtime.close()

    def test_retry_exhaustion_raises_submit_error(self, tmp_path):
        with pytest.raises(SubmitError, match="could not connect"):
            connect(str(tmp_path / "never.sock"), retries=2, backoff=0.01)
