"""The live engine: batch equivalence, admission, exactly-once apply."""

import pytest

from repro.api.config import SchedConfig, ServeConfig
from repro.api.facade import run_sched
from repro.serve.engine import QueueFullError, ServeEngine

CLUSTER = {"instance": "tencent", "num_nodes": 4, "gpus_per_node": 2}
JOBS = [
    {"name": "a", "profile": "resnet50", "scheme": "mstopk", "iterations": 200,
     "min_nodes": 1, "max_nodes": 3},
    {"name": "b", "profile": "vgg19", "scheme": "dense", "iterations": 100,
     "arrival_seconds": 15.0, "min_nodes": 1, "max_nodes": 2},
    {"name": "c", "profile": "resnet50", "scheme": "topk", "density": 0.005,
     "iterations": 150, "arrival_seconds": 40.0, "priority": 1,
     "min_nodes": 1, "max_nodes": 2},
]
FAULTS = {"events": [
    {"kind": "nic-degrade", "at": 20, "duration": 30, "scale": 0.5},
    {"kind": "node-crash", "at": 40, "duration": 60},
]}
BRAIN = {"name": "health-migrate", "interval": 30}


def serve_config(**extra) -> ServeConfig:
    return ServeConfig.from_dict(
        {"name": "unit", "seed": 11, "cluster": CLUSTER, "policy": "bin-pack",
         **extra}
    )


def engine_with(jobs, config=None) -> ServeEngine:
    engine = ServeEngine(config or serve_config())
    for i, job in enumerate(jobs):
        ack = engine.apply_op({"op": "submit", "id": i + 1, "job": job})
        assert ack["ok"], ack
    return engine


class TestBatchEquivalence:
    """Submit-all-then-drain must be *bit-identical* to batch run()."""

    def _batch(self, **extra):
        config = SchedConfig.from_dict(
            {"name": "unit", "seed": 11, "cluster": CLUSTER,
             "policies": ["bin-pack"], "jobs": JOBS, **extra}
        )
        return run_sched(config)["bin-pack"]

    def assert_identical(self, batch, live):
        assert [o.row() for o in batch.jobs] == [o.row() for o in live.jobs]
        assert batch.summary() == live.summary()
        assert batch.traces == live.traces

    def test_plain_drain_matches_batch(self):
        engine = engine_with(JOBS)
        engine.apply_op({"op": "drain", "id": 9})
        self.assert_identical(self._batch(), engine.report())

    def test_fault_and_brain_drain_matches_batch(self):
        engine = engine_with(
            JOBS, serve_config(faults=FAULTS, brain=BRAIN)
        )
        engine.apply_op({"op": "drain", "id": 9})
        batch = self._batch(faults=FAULTS, brain=BRAIN)
        live = engine.report()
        self.assert_identical(batch, live)
        # The digest-pinned logs agree entry for entry.
        assert batch.fault_log["digest"] == live.fault_log["digest"]
        assert batch.brain_log["digest"] == live.brain_log["digest"]

    def test_interleaved_ticks_are_deterministic(self):
        def run():
            engine = ServeEngine(serve_config(faults=FAULTS))
            for i, job in enumerate(JOBS):
                engine.apply_op({"op": "submit", "id": 2 * i + 1, "job": job})
                engine.apply_op({"op": "tick", "id": 2 * i + 2, "until": 30.0 * (i + 1)})
            engine.apply_op({"op": "drain", "id": 99})
            return engine
        one, two = run(), run()
        assert one.state_digest() == two.state_digest()
        assert one.payload() == two.payload()


class TestAdmission:
    def test_unknown_job_key_rejected(self):
        engine = ServeEngine(serve_config())
        ack = engine.apply_op(
            {"op": "submit", "id": 1, "job": {"name": "x", "iterationz": 5}}
        )
        assert not ack["ok"]
        assert "iterationz" in ack["error"] and "accepted keys" in ack["error"]

    def test_duplicate_job_name_rejected(self):
        engine = engine_with([{"name": "a"}])
        ack = engine.apply_op({"op": "submit", "id": 2, "job": {"name": "a"}})
        assert not ack["ok"] and "already submitted" in ack["error"]

    def test_oversized_job_rejected(self):
        engine = ServeEngine(serve_config())
        ack = engine.apply_op(
            {"op": "submit", "id": 1, "job": {"name": "x", "min_nodes": 9, "max_nodes": 9}}
        )
        assert not ack["ok"] and "needs 9 nodes" in ack["error"]

    def test_queue_full_sheds_with_structured_error(self):
        engine = ServeEngine(serve_config(queue_limit=2))
        for i in range(2):
            assert engine.apply_op(
                {"op": "submit", "id": i + 1, "job": {"name": f"j{i}"}}
            )["ok"]
        ack = engine.apply_op({"op": "submit", "id": 3, "job": {"name": "j2"}})
        assert not ack["ok"]
        assert "queue full" in ack["error"] and "queue_limit=2" in ack["error"]
        assert engine.rejected == 1
        # The structured detail is a typed error for API users.
        with pytest.raises(QueueFullError) as err:
            engine._submit({"name": "j3"})
        assert err.value.detail == {"job": "j3", "backlog": 2, "queue_limit": 2}

    def test_rejections_advance_the_id_watermark(self):
        engine = ServeEngine(serve_config())
        ack = engine.apply_op({"op": "submit", "id": 1, "job": {"iterationz": 1}})
        assert not ack["ok"]
        assert engine.last_op_id == 1  # a resend of id 1 deduplicates
        assert engine.apply_op({"op": "submit", "id": 1, "job": {}})["duplicate"]

    def test_late_arrival_clamped_to_the_clock(self):
        engine = ServeEngine(serve_config())
        engine.apply_op({"op": "tick", "id": 1, "until": 100.0})
        ack = engine.apply_op(
            {"op": "submit", "id": 2,
             "job": {"name": "x", "arrival_seconds": 10.0}}
        )
        assert ack["ok"] and ack["arrival"] == 100.0  # time never rewinds


class TestOps:
    def test_duplicate_id_is_acked_without_applying(self):
        engine = engine_with([{"name": "a"}])
        before = engine.state_digest()
        ack = engine.apply_op({"op": "submit", "id": 1, "job": {"name": "zz"}})
        assert ack == {"ok": True, "id": 1, "duplicate": True}
        assert engine.state_digest() == before
        assert "zz" not in engine.records

    def test_unknown_op_kind_rejected(self):
        engine = ServeEngine(serve_config())
        ack = engine.apply_op({"op": "reboot", "id": 1})
        assert not ack["ok"] and "unknown op" in ack["error"]

    def test_tick_backwards_rejected(self):
        engine = ServeEngine(serve_config())
        engine.apply_op({"op": "tick", "id": 1, "until": 100.0})
        ack = engine.apply_op({"op": "tick", "id": 2, "until": 50.0})
        assert not ack["ok"] and "behind the virtual clock" in ack["error"]

    def test_tick_default_advances_tick_seconds(self):
        engine = ServeEngine(serve_config(tick_seconds=123.0))
        assert engine.apply_op({"op": "tick", "id": 1})["now"] == 123.0

    def test_empty_engine_reports_cleanly(self):
        engine = ServeEngine(serve_config())
        engine.apply_op({"op": "tick", "id": 1, "until": 500.0})
        payload = engine.payload()
        assert payload["rows"] == []
        assert payload["meta"]["serve"]["submitted"] == 0

    def test_series_tracks_goodput_per_tick(self):
        engine = engine_with(JOBS)
        engine.apply_op({"op": "tick", "id": 8, "until": 60.0})
        engine.apply_op({"op": "drain", "id": 9})
        series = engine.stats()["series"]
        assert len(series) == 2
        times = [row[0] for row in series]
        done = [row[1] for row in series]
        assert times == sorted(times)
        assert done[-1] == len(JOBS)


class TestSnapshotState:
    def test_roundtrip_preserves_digest_and_future(self):
        config = serve_config(faults=FAULTS, brain=BRAIN)
        engine = engine_with(JOBS, config)
        engine.apply_op({"op": "tick", "id": 8, "until": 35.0})
        state = engine.snapshot_state()
        import pickle

        clone = ServeEngine.from_snapshot_state(
            config, pickle.loads(pickle.dumps(state))
        )
        assert clone.state_digest() == engine.state_digest()
        # The restored engine's *future* is identical too.
        engine.apply_op({"op": "drain", "id": 9})
        clone.apply_op({"op": "drain", "id": 9})
        assert clone.payload() == engine.payload()

    def test_restore_rejects_tampered_state(self):
        engine = engine_with(JOBS)
        state = engine.snapshot_state()
        state["submitted"] += 1
        with pytest.raises(RuntimeError, match="digest mismatch"):
            ServeEngine.from_snapshot_state(engine.config, state)
