"""Distributed sampler: disjointness, determinism, cache alignment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import ClusterTopology
from repro.data.sampler import DistributedSampler, make_samplers


class TestDisjointness:
    @given(
        m=st.integers(1, 4),
        n=st.integers(1, 4),
        num_samples=st.integers(32, 400),
        epoch=st.integers(0, 5),
        aligned=st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_worker_slices_disjoint(self, m, n, num_samples, epoch, aligned):
        topo = ClusterTopology(m, n)
        samplers = make_samplers(num_samples, topo, cache_aligned=aligned)
        seen: set[int] = set()
        for sampler in samplers:
            indices = sampler.epoch_indices(epoch)
            as_set = set(indices.tolist())
            assert len(as_set) == len(indices)  # no repeats within worker
            assert not (as_set & seen)  # no overlap across workers
            seen |= as_set

    def test_equal_lengths_with_drop_last(self):
        topo = ClusterTopology(2, 4)
        samplers = make_samplers(103, topo)
        lengths = {s.epoch_indices(0).size for s in samplers}
        assert len(lengths) == 1  # synchronous SGD requires this


class TestDeterminism:
    def test_same_epoch_same_indices(self):
        topo = ClusterTopology(2, 2)
        sampler = DistributedSampler(100, topo, rank=1, seed=3)
        np.testing.assert_array_equal(
            sampler.epoch_indices(4), sampler.epoch_indices(4)
        )

    def test_different_epochs_differ(self):
        topo = ClusterTopology(2, 2)
        sampler = DistributedSampler(100, topo, rank=1, seed=3)
        assert not np.array_equal(sampler.epoch_indices(0), sampler.epoch_indices(1))

    def test_seed_changes_order(self):
        topo = ClusterTopology(2, 2)
        a = DistributedSampler(100, topo, rank=0, seed=1).epoch_indices(0)
        b = DistributedSampler(100, topo, rank=0, seed=2).epoch_indices(0)
        assert not np.array_equal(a, b)


class TestCacheAlignment:
    def test_aligned_indices_owned_by_node(self):
        # DataCache's sharding rule: index % m == node.
        topo = ClusterTopology(4, 2)
        for rank in range(topo.world_size):
            sampler = DistributedSampler(200, topo, rank=rank, cache_aligned=True)
            node = topo.node_of(rank)
            indices = sampler.epoch_indices(0)
            assert np.all(indices % 4 == node)

    def test_unaligned_spans_whole_dataset(self):
        topo = ClusterTopology(4, 2)
        sampler = DistributedSampler(200, topo, rank=0, cache_aligned=False)
        indices = np.concatenate([sampler.epoch_indices(e) for e in range(10)])
        # Over several epochs rank 0 sees indices from foreign shards.
        assert np.any(indices % 4 != 0)

    def test_aligned_matches_datacache_owns(self):
        from repro.data.cache import DataCache
        from repro.data.dataset import SyntheticImageDataset

        topo = ClusterTopology(3, 2)
        dataset = SyntheticImageDataset(60, resolution=8)
        for node in range(3):
            cache = DataCache(dataset, node=node, num_nodes=3)
            sampler = DistributedSampler(60, topo, rank=topo.rank(node, 0))
            for index in sampler.epoch_indices(0):
                assert cache.owns(int(index))


class TestValidation:
    def test_rank_out_of_range(self):
        with pytest.raises(IndexError):
            DistributedSampler(10, ClusterTopology(2, 2), rank=4)

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            DistributedSampler(0, ClusterTopology(1, 1), rank=0)
        sampler = DistributedSampler(10, ClusterTopology(1, 1), rank=0)
        with pytest.raises(ValueError):
            sampler.epoch_indices(-1)
