"""The multi-level DataCache (paper §4.1, Fig. 5)."""

import numpy as np
import pytest

from repro.data.cache import CacheLevel, DataCache
from repro.data.dataset import SyntheticImageDataset
from repro.data.storage import LocalDiskStore, MemoryStore
from repro.utils.clock import VirtualClock
from repro.utils.seeding import new_rng


@pytest.fixture
def dataset():
    return SyntheticImageDataset(12, resolution=16, num_classes=3, seed=0)


@pytest.fixture
def cache(dataset):
    return DataCache(dataset)


class TestReadPath:
    def test_first_read_hits_nfs(self, cache, rng):
        outcome = cache.read(0, VirtualClock(), rng)
        assert outcome.level is CacheLevel.NFS
        assert outcome.pixels.shape == (16, 16, 3)

    def test_second_read_hits_memory(self, cache, rng):
        clock = VirtualClock()
        cache.read(0, clock, rng)
        outcome = cache.read(0, clock, rng)
        assert outcome.level is CacheLevel.MEMORY

    def test_memory_hit_is_much_cheaper(self, cache, rng):
        clock = VirtualClock()
        first = cache.read(0, clock, rng)
        second = cache.read(0, clock, rng)
        assert second.io_seconds < first.io_seconds / 10

    def test_memory_hit_returns_same_pixels_pre_augment(self, dataset, rng):
        # Disable augmentation variability by comparing the *decoded*
        # pixels path: read twice with identical augment rngs.
        cache = DataCache(dataset)
        out1 = cache.read(0, VirtualClock(), new_rng(9))
        out2 = cache.read(0, VirtualClock(), new_rng(9))
        np.testing.assert_array_equal(out1.pixels, out2.pixels)

    def test_local_disk_serves_second_run(self, dataset, rng):
        # First run populates the local FS cache; a new cache instance
        # (same disk, fresh memory) models "second run" for tuning.
        disk = LocalDiskStore()
        run1 = DataCache(dataset, local_disk=disk)
        run1.read(0, VirtualClock(), rng)
        run2 = DataCache(dataset, local_disk=disk, memory=MemoryStore())
        outcome = run2.read(0, VirtualClock(), rng)
        assert outcome.level is CacheLevel.LOCAL_DISK

    def test_disabled_memory_keeps_hitting_disk(self, dataset, rng):
        cache = DataCache(dataset, enable_memory=False)
        clock = VirtualClock()
        cache.read(0, clock, rng)
        outcome = cache.read(0, clock, rng)
        assert outcome.level is CacheLevel.LOCAL_DISK

    def test_fully_naive_path_rereads_nfs(self, dataset, rng):
        cache = DataCache(dataset, enable_memory=False, enable_local_disk=False)
        clock = VirtualClock()
        cache.read(0, clock, rng)
        outcome = cache.read(0, clock, rng)
        assert outcome.level is CacheLevel.NFS

    def test_augment_resolution_override(self, cache, rng):
        outcome = cache.read(0, VirtualClock(), rng, out_resolution=8)
        assert outcome.pixels.shape == (8, 8, 3)


class TestSharding:
    def test_owns_modulo(self, dataset):
        cache = DataCache(dataset, node=1, num_nodes=3)
        assert cache.owns(1) and cache.owns(4)
        assert not cache.owns(0)

    def test_foreign_samples_not_memory_cached(self, dataset, rng):
        cache = DataCache(dataset, node=0, num_nodes=2)
        clock = VirtualClock()
        cache.read(1, clock, rng)  # owned by node 1
        outcome = cache.read(1, clock, rng)
        assert outcome.level is not CacheLevel.MEMORY

    def test_warm_memory_fraction(self, dataset, rng):
        cache = DataCache(dataset, node=0, num_nodes=2)
        clock = VirtualClock()
        assert cache.warm_memory_fraction() == 0.0
        for i in range(0, 12, 2):  # all owned samples
            cache.read(i, clock, rng)
        assert cache.warm_memory_fraction() == 1.0

    def test_node_validation(self, dataset):
        with pytest.raises(ValueError):
            DataCache(dataset, node=3, num_nodes=2)


class TestStats:
    def test_counters(self, cache, rng):
        clock = VirtualClock()
        cache.read(0, clock, rng)
        cache.read(0, clock, rng)
        cache.read(1, clock, rng)
        assert cache.stats.nfs_reads == 2
        assert cache.stats.memory_hits == 1
        assert cache.stats.total_reads == 3
        assert cache.stats.decoded_samples == 2
        assert cache.stats.hit_rate() == pytest.approx(1 / 3)

    def test_bytes_from_nfs(self, cache, dataset, rng):
        cache.read(0, VirtualClock(), rng)
        assert cache.stats.bytes_from_nfs == dataset.encoded_sample_bytes
