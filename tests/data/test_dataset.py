"""Synthetic datasets."""

import numpy as np
import pytest

from repro.data.dataset import SyntheticImageDataset, SyntheticTranslationDataset


class TestImageDataset:
    def test_labels_deterministic(self):
        a = SyntheticImageDataset(50, seed=3)
        b = SyntheticImageDataset(50, seed=3)
        assert [a.label(i) for i in range(50)] == [b.label(i) for i in range(50)]

    def test_labels_in_range(self):
        ds = SyntheticImageDataset(100, num_classes=10)
        assert all(0 <= ds.label(i) < 10 for i in range(100))

    def test_keys_unique(self):
        ds = SyntheticImageDataset(20)
        keys = {ds.key(i) for i in range(20)}
        assert len(keys) == 20

    def test_encoded_sample_bytes_consistent(self):
        ds = SyntheticImageDataset(5, resolution=64)
        assert ds.encoded_sample_bytes == len(ds.encoded(3))

    def test_epoch_order_is_permutation(self):
        ds = SyntheticImageDataset(64)
        order = ds.epoch_order(epoch=2)
        assert sorted(order.tolist()) == list(range(64))

    def test_epoch_orders_differ(self):
        ds = SyntheticImageDataset(64)
        assert not np.array_equal(ds.epoch_order(0), ds.epoch_order(1))

    def test_index_validation(self):
        ds = SyntheticImageDataset(5)
        with pytest.raises(IndexError):
            ds.label(5)
        with pytest.raises(IndexError):
            ds.encoded(-1)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            SyntheticImageDataset(0)


class TestTranslationDataset:
    def test_pair_shapes(self):
        ds = SyntheticTranslationDataset(30, vocab_size=1000, max_len=64)
        src, tgt = ds.sentence_pair(0)
        assert 4 <= len(src) <= 64
        assert 4 <= len(tgt) <= 64
        assert src.max() < 1000

    def test_pairs_deterministic(self):
        ds = SyntheticTranslationDataset(10, seed=1)
        a = ds.sentence_pair(3)
        b = SyntheticTranslationDataset(10, seed=1).sentence_pair(3)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_padded_batch(self):
        ds = SyntheticTranslationDataset(20, max_len=32)
        src, tgt = ds.padded_batch(np.arange(8))
        assert src.shape == (8, 32)
        assert tgt.shape == (8, 32)
        # Padding (id 0) exists and tokens are non-zero where real.
        assert (src == 0).any()

    def test_encoded_roundtrip_length(self):
        ds = SyntheticTranslationDataset(5)
        payload = ds.encoded(0)
        src_len = int.from_bytes(payload[:4], "little")
        src, _ = ds.sentence_pair(0)
        assert src_len == len(src)
