"""CachedDataLoader: batching + pipeline overlap accounting."""

import numpy as np
import pytest

from repro.data.cache import DataCache
from repro.data.dataset import SyntheticImageDataset
from repro.data.loader import CachedDataLoader
from repro.utils.seeding import new_rng


@pytest.fixture
def cache():
    return DataCache(SyntheticImageDataset(48, resolution=16, num_classes=4, seed=0))


class TestBatches:
    def test_batch_shapes(self, cache):
        loader = CachedDataLoader(cache, batch_size=8, seed=0)
        batch, labels, io_s, pre_s = next(loader.epoch_batches(0))
        assert batch.shape == (8, 16, 16, 3)
        assert labels.shape == (8,)
        assert io_s > 0 and pre_s > 0

    def test_iterations_per_epoch(self, cache):
        loader = CachedDataLoader(cache, batch_size=8)
        assert loader.iterations_per_epoch() == 6

    def test_partition_restricts_samples(self, cache):
        loader = CachedDataLoader(cache, batch_size=4, partition=np.arange(8))
        assert loader.iterations_per_epoch() == 2

    def test_validation(self, cache):
        with pytest.raises(ValueError):
            CachedDataLoader(cache, batch_size=0)
        with pytest.raises(ValueError):
            CachedDataLoader(cache, batch_size=4, partition=np.array([], dtype=int))
        with pytest.raises(ValueError):
            CachedDataLoader(cache, batch_size=4, decode_workers=0)


class TestEpochTimings:
    def test_second_epoch_io_collapses(self, cache):
        # Fig. 9 / §4.1: "the I/O time is reduced over 10 times".
        loader = CachedDataLoader(cache, batch_size=8, pipelined=False, seed=0)
        rng = new_rng(1)
        epoch1 = loader.run_epoch(0, rng=rng)
        epoch2 = loader.run_epoch(1, rng=rng)
        assert epoch2.io_seconds < epoch1.io_seconds / 10

    def test_pipelining_hides_cost(self, cache):
        rng = new_rng(1)
        gpu_time = 1.0  # plenty of compute to hide behind
        pipelined = CachedDataLoader(cache, batch_size=8, pipelined=True, seed=0)
        visible_piped = pipelined.run_epoch(
            0, gpu_seconds_per_iteration=gpu_time, rng=rng
        ).visible_seconds
        naive = CachedDataLoader(
            DataCache(cache.dataset), batch_size=8, pipelined=False, seed=0
        )
        visible_naive = naive.run_epoch(
            0, gpu_seconds_per_iteration=gpu_time, rng=new_rng(1)
        ).visible_seconds
        assert visible_piped < visible_naive / 2

    def test_decode_workers_divide_time(self, cache):
        rng = new_rng(1)
        one = CachedDataLoader(cache, batch_size=8, decode_workers=1, seed=0)
        t1 = one.run_epoch(0, rng=rng)
        four = CachedDataLoader(
            DataCache(cache.dataset), batch_size=8, decode_workers=4, seed=0
        )
        t4 = four.run_epoch(0, rng=new_rng(1))
        assert t4.io_seconds == pytest.approx(t1.io_seconds / 4, rel=0.05)

    def test_level_counts_recorded(self, cache):
        loader = CachedDataLoader(cache, batch_size=8, seed=0)
        timings = loader.run_epoch(0, rng=new_rng(0))
        assert timings.level_counts["nfs"] == 48

    def test_per_iteration_visible(self, cache):
        loader = CachedDataLoader(cache, batch_size=8, pipelined=False, seed=0)
        timings = loader.run_epoch(0, rng=new_rng(0))
        assert timings.per_iteration_visible() == pytest.approx(
            timings.visible_seconds / timings.iterations
        )
