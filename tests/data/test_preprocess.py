"""Decode/augment pipeline."""

import numpy as np
import pytest

from repro.data.preprocess import (
    PreprocessModel,
    augment_image,
    decode_image,
    encode_image,
    preprocess_sample,
)
from repro.utils.seeding import new_rng


class TestEncodeDecode:
    def test_decode_shape_and_dtype(self):
        img = decode_image(encode_image(7, 32))
        assert img.shape == (32, 32, 3)
        assert img.dtype == np.uint8

    def test_decode_deterministic_in_sample_id(self):
        a = decode_image(encode_image(3, 16))
        b = decode_image(encode_image(3, 16))
        np.testing.assert_array_equal(a, b)

    def test_different_samples_differ(self):
        a = decode_image(encode_image(1, 16))
        b = decode_image(encode_image(2, 16))
        assert not np.array_equal(a, b)

    def test_encoded_size_tracks_resolution(self):
        small = len(encode_image(0, 96))
        large = len(encode_image(0, 224))
        assert large > 4 * small  # ~(224/96)^2 ≈ 5.4

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            decode_image(b"JPEG" + b"\x00" * 100)

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            decode_image(b"xy")

    def test_validation(self):
        with pytest.raises(ValueError):
            encode_image(-1, 32)
        with pytest.raises(ValueError):
            encode_image(0, 0)


class TestAugment:
    def test_output_shape(self, rng):
        img = decode_image(encode_image(0, 64))
        out = augment_image(img, 48, rng)
        assert out.shape == (48, 48, 3)
        assert out.dtype == np.float32

    def test_normalised_range(self, rng):
        img = decode_image(encode_image(0, 64))
        out = augment_image(img, 32, rng)
        # Normalised uint8 data lands within a few channel-stddevs.
        assert -4.0 < out.min() and out.max() < 5.0

    def test_upsample_path(self, rng):
        img = decode_image(encode_image(0, 16))
        out = augment_image(img, 24, rng)
        assert out.shape == (24, 24, 3)

    def test_random_crop_varies(self):
        img = decode_image(encode_image(0, 64))
        a = augment_image(img, 32, new_rng(1))
        b = augment_image(img, 32, new_rng(2))
        assert not np.array_equal(a, b)

    def test_rejects_bad_shape(self, rng):
        with pytest.raises(ValueError):
            augment_image(np.zeros((8, 8)), 4, rng)

    def test_preprocess_sample_end_to_end(self, rng):
        out = preprocess_sample(encode_image(5, 48), 32, rng)
        assert out.shape == (32, 32, 3)


class TestCostModel:
    def test_times_positive_and_linear(self):
        model = PreprocessModel()
        assert model.decode_time(2_000_000) == pytest.approx(
            2 * model.decode_time(1_000_000)
        )
        assert model.augment_time(1_000_000) < model.decode_time(1_000_000)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PreprocessModel().decode_time(-1)
        with pytest.raises(ValueError):
            PreprocessModel().augment_time(-1)
