"""Storage tiers: payload fidelity + virtual-time charging."""

import pytest

from repro.data.storage import LocalDiskStore, MemoryStore, NfsStore
from repro.utils.clock import VirtualClock


class TestDictStores:
    @pytest.mark.parametrize("store_cls", [NfsStore, LocalDiskStore, MemoryStore])
    def test_roundtrip(self, store_cls):
        store = store_cls()
        clock = VirtualClock()
        store.write("k", b"payload", clock)
        assert store.read("k", clock) == b"payload"
        assert store.contains("k")

    def test_missing_key(self):
        with pytest.raises(KeyError):
            NfsStore().read("nope", VirtualClock())

    def test_read_charges_latency_plus_bandwidth(self):
        store = NfsStore()
        clock = VirtualClock()
        store.write("k", b"x" * 1_000_000, clock)
        before = clock.now
        store.read("k", clock)
        elapsed = clock.now - before
        expected = store.tier.latency + 1_000_000 / store.tier.bandwidth
        assert elapsed == pytest.approx(expected)

    def test_clock_categories(self):
        store = MemoryStore()
        clock = VirtualClock()
        store.write("k", b"abc", clock)
        store.read("k", clock)
        assert clock.elapsed("memory.read") > 0
        assert clock.elapsed("memory.write") > 0

    def test_nfs_slower_than_memory(self):
        nfs, mem = NfsStore(), MemoryStore()
        c1, c2 = VirtualClock(), VirtualClock()
        payload = b"x" * 100_000
        nfs.write("k", payload, VirtualClock())
        mem.write("k", payload, VirtualClock())
        nfs.read("k", c1)
        mem.read("k", c2)
        assert c1.now > 20 * c2.now

    def test_nbytes(self):
        store = MemoryStore()
        store.write("a", b"12345", VirtualClock())
        store.write("b", b"123", VirtualClock())
        assert store.nbytes() == 8
        assert len(store) == 2


class TestMemoryCapacity:
    def test_over_capacity_raises(self):
        store = MemoryStore(capacity_bytes=10)
        clock = VirtualClock()
        store.write("a", b"12345", clock)
        with pytest.raises(MemoryError, match="shard the dataset"):
            store.write("b", b"1234567", clock)

    def test_overwrite_within_capacity_allowed(self):
        store = MemoryStore(capacity_bytes=10)
        clock = VirtualClock()
        store.write("a", b"12345678", clock)
        store.write("a", b"87654321", clock)  # same key, no growth check
        assert store.read("a", clock) == b"87654321"
