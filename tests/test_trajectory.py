"""benchmarks/trajectory.py: BENCH payloads -> per-commit metric series."""

import json
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
SCRIPT = REPO / "benchmarks" / "trajectory.py"


def write_bench(results_dir: pathlib.Path, name: str, value: float) -> None:
    payload = {
        "bench": name,
        "schema_version": 1,
        "structured": True,
        "columns": ["scheme", "speedup", "ok"],
        "rows": [["dense", value, True], ["mstopk", value * 2, False]],
        "text": f"{name}\n",
        "meta": {"cluster": "4x2"},
    }
    (results_dir / f"BENCH_{name}.json").write_text(json.dumps(payload))


def run_trajectory(results_dir: pathlib.Path, commit: str):
    proc = subprocess.run(
        [sys.executable, str(SCRIPT), "--results-dir", str(results_dir),
         "--commit", commit],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads((results_dir / "TRAJECTORY.json").read_text())


class TestCollect:
    def test_collects_series_keyed_by_commit(self, tmp_path):
        write_bench(tmp_path, "alpha", 2.0)
        write_bench(tmp_path, "beta", 5.0)
        trajectory = run_trajectory(tmp_path, "abc123")
        assert trajectory["schema_version"] == 1
        assert trajectory["commits"] == ["abc123"]
        assert set(trajectory["benches"]) == {"alpha", "beta"}
        entry = trajectory["benches"]["alpha"]["abc123"]
        assert entry["structured"] is True
        assert entry["rows"] == [["dense", 2.0, True], ["mstopk", 4.0, False]]
        # Numeric means skip strings and bools.
        assert entry["metrics"] == {"speedup": pytest.approx(3.0)}
        assert entry["meta"] == {"cluster": "4x2"}

    def test_merges_across_commits(self, tmp_path):
        write_bench(tmp_path, "alpha", 2.0)
        run_trajectory(tmp_path, "c1")
        write_bench(tmp_path, "alpha", 3.0)
        trajectory = run_trajectory(tmp_path, "c2")
        assert trajectory["commits"] == ["c1", "c2"]
        series = trajectory["benches"]["alpha"]
        assert series["c1"]["metrics"]["speedup"] == pytest.approx(3.0)
        assert series["c2"]["metrics"]["speedup"] == pytest.approx(4.5)

    def test_same_commit_is_idempotent(self, tmp_path):
        write_bench(tmp_path, "alpha", 2.0)
        run_trajectory(tmp_path, "c1")
        write_bench(tmp_path, "alpha", 9.0)
        trajectory = run_trajectory(tmp_path, "c1")
        assert trajectory["commits"] == ["c1"]
        assert trajectory["benches"]["alpha"]["c1"]["metrics"]["speedup"] == (
            pytest.approx(13.5)
        )

    def test_trajectory_file_not_collected_as_bench(self, tmp_path):
        write_bench(tmp_path, "alpha", 1.0)
        run_trajectory(tmp_path, "c1")
        trajectory = run_trajectory(tmp_path, "c2")
        assert set(trajectory["benches"]) == {"alpha"}

    def test_exclude_skips_committed_baselines(self, tmp_path):
        write_bench(tmp_path, "fresh", 1.0)
        write_bench(tmp_path, "stale_baseline", 9.0)
        proc = subprocess.run(
            [sys.executable, str(SCRIPT), "--results-dir", str(tmp_path),
             "--commit", "c1", "--exclude", "BENCH_stale_baseline.json"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        trajectory = json.loads((tmp_path / "TRAJECTORY.json").read_text())
        assert set(trajectory["benches"]) == {"fresh"}

    def test_run_payloads_skipped_by_default(self, tmp_path):
        """BENCH_*_run.json fresh measurements shadow their committed
        baselines (same bench name), so they are skipped by default."""
        write_bench(tmp_path, "alpha", 1.0)
        write_bench(tmp_path, "alpha_run", 9.0)
        trajectory = run_trajectory(tmp_path, "c1")
        assert set(trajectory["benches"]) == {"alpha"}

    def test_include_runs_opts_back_in(self, tmp_path):
        write_bench(tmp_path, "alpha", 1.0)
        write_bench(tmp_path, "alpha_run", 9.0)
        proc = subprocess.run(
            [sys.executable, str(SCRIPT), "--results-dir", str(tmp_path),
             "--commit", "c1", "--include-runs"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        trajectory = json.loads((tmp_path / "TRAJECTORY.json").read_text())
        assert set(trajectory["benches"]) == {"alpha", "alpha_run"}

    def test_no_payloads_errors(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, str(SCRIPT), "--results-dir", str(tmp_path),
             "--commit", "c1"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode != 0
        assert "no BENCH_*.json" in proc.stderr

    def test_runs_against_committed_results(self, tmp_path):
        """The repo's own results/ directory collects cleanly."""
        out = tmp_path / "TRAJECTORY.json"
        proc = subprocess.run(
            [sys.executable, str(SCRIPT), "--out", str(out), "--commit", "test"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        trajectory = json.loads(out.read_text())
        # The committed perf baseline is always present; local bench
        # runs add more series on top.
        assert "perf_hotpath_run" in trajectory["benches"]

    def test_committed_trajectory_seed_is_valid(self):
        """results/TRAJECTORY.json (committed) parses and has the seed."""
        trajectory = json.loads((REPO / "results" / "TRAJECTORY.json").read_text())
        assert trajectory["schema_version"] == 1
        assert trajectory["commits"]
        assert "perf_hotpath_run" in trajectory["benches"]
