"""Wait-free backprop timeline with tensor fusion."""

import numpy as np
import pytest

from repro.models.profiles import resnet50_profile
from repro.perf.timeline import (
    build_buckets,
    derive_overlap_fraction,
    simulate_backward_overlap,
)


def constant_rate_comm(bandwidth: float, latency: float = 0.0):
    return lambda nbytes: latency + nbytes / bandwidth


class TestBuckets:
    def test_threshold_packs_layers(self):
        buckets = build_buckets([10, 10, 10, 10], [1, 2, 3, 4], fusion_threshold=20)
        assert len(buckets) == 2
        assert buckets[0].layer_indices == (0, 1)
        assert buckets[0].nbytes == 20
        assert buckets[0].ready_at == 2

    def test_tail_bucket_flushed(self):
        buckets = build_buckets([10, 10, 5], [1, 2, 3], fusion_threshold=20)
        assert len(buckets) == 2
        assert buckets[1].nbytes == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            build_buckets([1], [1.0], fusion_threshold=0)
        with pytest.raises(ValueError):
            build_buckets([1, 2], [1.0], fusion_threshold=8)


class TestSimulation:
    def test_fast_network_fully_overlaps(self):
        result = simulate_backward_overlap(
            [1000] * 10,
            backward_time=1.0,
            comm_time_fn=constant_rate_comm(1e12),
            fusion_threshold=4000,
        )
        assert result.visible_comm < 1e-6
        # Only the final bucket's transfer can remain exposed.
        assert result.overlap_ratio > 0.8

    def test_slow_network_is_exposed(self):
        result = simulate_backward_overlap(
            [1000] * 10,
            backward_time=0.001,
            comm_time_fn=constant_rate_comm(1e6),  # 40 ms of traffic
            fusion_threshold=4000,
        )
        assert result.visible_comm > 0.01
        assert result.overlap_ratio < 0.5

    def test_comm_never_ends_before_last_bucket_ready(self):
        result = simulate_backward_overlap(
            [100] * 5,
            backward_time=2.0,
            comm_time_fn=constant_rate_comm(1e12),
        )
        assert result.comm_end >= result.backward_end - 1e-12

    def test_iteration_span(self):
        result = simulate_backward_overlap(
            [1000], backward_time=1.0, comm_time_fn=constant_rate_comm(1e3)
        )
        assert result.iteration_span == result.comm_end

    def test_fusion_reduces_latency_cost(self):
        # Many small layers + per-message latency: big buckets win.
        layers = [100] * 100
        comm = constant_rate_comm(1e9, latency=1e-3)
        fused = simulate_backward_overlap(
            layers, backward_time=0.01, comm_time_fn=comm, fusion_threshold=1 << 20
        )
        unfused = simulate_backward_overlap(
            layers, backward_time=0.01, comm_time_fn=comm, fusion_threshold=1
        )
        assert fused.comm_end < unfused.comm_end / 5

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            simulate_backward_overlap(
                [0, 0], backward_time=1.0, comm_time_fn=constant_rate_comm(1e9)
            )


class TestDerivedOverlap:
    def test_matches_calibration_order_of_magnitude(self, testbed):
        """The bottom-up overlap fraction lands near the calibrated 0.15."""
        from repro.comm.dense import Torus2DAllReduce

        profile = resnet50_profile()
        scheme = Torus2DAllReduce(testbed, wire_bytes=2)

        def comm_fn(nbytes: int) -> float:
            elements = nbytes // 2
            return scheme.time_model(max(1, elements)).total

        fraction = derive_overlap_fraction(
            profile.layer_sizes,
            ffbp_time=256 / 1150,
            comm_time_fn=comm_fn,
        )
        assert 0.0 <= fraction <= 0.6
        # Communication is partially hidden — not zero, not total.
        assert fraction > 0.0

    def test_zero_when_network_instant(self):
        fraction = derive_overlap_fraction(
            [1000] * 4, ffbp_time=1.0, comm_time_fn=lambda _: 0.0
        )
        assert fraction == 0.0
