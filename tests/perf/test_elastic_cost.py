"""Elastic cost accounting: goodput, lost work, and spot economics."""

import pytest

from repro.elastic.elastic_trainer import ElasticRunReport
from repro.elastic.events import SPOT_PROFILES
from repro.perf.elastic_cost import account


def make_report(**overrides) -> ElasticRunReport:
    defaults = dict(
        scheme="HiTopKComm",
        iterations_target=100,
        useful_iterations=100,
        wall_iterations=110,
        lost_iterations=10,
        revocations=2,
        rollbacks=2,
        checkpoints=5,
        compute_seconds=33.0,
        comm_seconds=22.0,
        overhead_seconds=11.0,
        node_seconds=264.0,  # 4 nodes x 66 s
        world_sizes=[8],
    )
    defaults.update(overrides)
    return ElasticRunReport(**defaults)


class TestReportProperties:
    def test_goodput_and_raw_throughput(self):
        report = make_report()
        assert report.total_seconds == pytest.approx(66.0)
        assert report.goodput == pytest.approx(100 / 66.0)
        assert report.raw_throughput == pytest.approx(110 / 66.0)
        assert report.goodput < report.raw_throughput

    def test_lost_fraction(self):
        assert make_report().lost_fraction == pytest.approx(10 / 110)
        empty = make_report(wall_iterations=0, lost_iterations=0, useful_iterations=0)
        assert empty.lost_fraction == 0.0
        assert empty.goodput == 0.0 if empty.total_seconds == 0 else True


class TestAccount:
    def test_spot_cost_from_node_seconds(self):
        report = make_report()
        profile = SPOT_PROFILES["tencent"]
        cost = account(report, instance="tencent")
        expected = 264.0 / 3600.0 * profile.on_demand_hourly * profile.spot_discount
        assert cost.spot_cost == pytest.approx(expected)
        assert cost.cloud == "tencent"
        assert cost.scheme == "HiTopKComm"

    def test_on_demand_baseline_excludes_overhead(self):
        report = make_report()
        cost = account(report, instance="tencent", baseline_nodes=4)
        # Baseline: churn-free per-iteration time x useful iterations.
        per_iter = 55.0 / 110
        baseline_seconds = per_iter * 100
        expected = baseline_seconds * 4 / 3600.0 * SPOT_PROFILES["tencent"].on_demand_hourly
        assert cost.on_demand_cost == pytest.approx(expected)

    def test_cost_per_kilo_iteration(self):
        cost = account(make_report(), instance="aws")
        assert cost.cost_per_kilo_iteration == pytest.approx(cost.spot_cost * 10)

    def test_savings_positive_without_churn(self):
        # No churn: spot runs the same seconds at a discount -> saves.
        report = make_report(
            wall_iterations=100,
            lost_iterations=0,
            overhead_seconds=0.0,
            node_seconds=220.0,  # 4 nodes x 55 s
        )
        cost = account(report, instance="tencent", baseline_nodes=4)
        profile = SPOT_PROFILES["tencent"]
        assert cost.savings_fraction == pytest.approx(1 - profile.spot_discount)

    def test_heavy_churn_erodes_savings(self):
        calm = account(
            make_report(overhead_seconds=0.0, wall_iterations=100, lost_iterations=0),
            instance="tencent",
            baseline_nodes=4,
        )
        churny = account(
            make_report(overhead_seconds=200.0, node_seconds=264.0 + 800.0),
            instance="tencent",
            baseline_nodes=4,
        )
        assert churny.savings_fraction < calm.savings_fraction

    def test_overrides(self):
        cost = account(
            make_report(), instance="tencent", on_demand_hourly=10.0, spot_discount=0.5
        )
        assert cost.spot_cost == pytest.approx(264.0 / 3600.0 * 10.0 * 0.5)

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            account(make_report(), instance="azure")

    def test_bad_discount_rejected(self):
        with pytest.raises(ValueError):
            account(make_report(), spot_discount=0.0)
