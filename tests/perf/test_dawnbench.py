"""DAWNBench case study (Tables 4-5)."""

import pytest

from repro.perf.dawnbench import (
    DAWNBENCH_LEADERBOARD,
    DawnbenchSimulator,
    PAPER_RECORD_SECONDS,
    PAPER_TABLE4,
)


@pytest.fixture(scope="module")
def sim():
    return DawnbenchSimulator()


@pytest.fixture(scope="module")
def record(sim):
    return sim.run()


class TestTable4:
    def test_phase_throughputs_near_paper(self, sim):
        for phase in sim.schedule.phases:
            result = sim.phase_result(phase)
            _, paper_throughput, _ = PAPER_TABLE4[phase.resolution]
            assert result.system_throughput == pytest.approx(
                paper_throughput, rel=0.25
            ), f"resolution {phase.resolution}"

    def test_throughput_decreases_with_resolution(self, sim):
        results = [sim.phase_result(p) for p in sim.schedule.phases]
        rates = [r.system_throughput for r in results]
        assert rates == sorted(rates, reverse=True)

    def test_scaling_efficiency_improves_with_resolution_beyond_96(self, sim):
        # Bigger inputs -> more compute to hide communication (Table 4:
        # 70% -> 83% from 128² to 224²).
        results = {p.resolution: sim.phase_result(p) for p in sim.schedule.phases}
        assert results[224].scaling_efficiency > results[128].scaling_efficiency


class TestTable5:
    def test_record_time_near_paper(self, record):
        assert record.total_seconds == pytest.approx(PAPER_RECORD_SECONDS, rel=0.10)

    def test_record_beats_leaderboard(self, record):
        # "our method achieves faster training time even with slower
        # interconnects".
        best_published = min(e.seconds for e in DAWNBENCH_LEADERBOARD)
        assert record.total_seconds < best_published + 5

    def test_reaches_93_percent(self, record):
        assert record.reached_target
        assert record.final_top5 >= 0.93

    def test_28_epochs(self, record):
        assert record.epochs == 28
        assert len(record.phases) == 4


class TestAblations:
    def test_all_dense_is_slower(self, sim, record):
        dense = sim.run_all_dense()
        assert dense.total_seconds > record.total_seconds

    def test_all_sparse_is_faster_but_misses_target(self, sim, record):
        # §5.6: "We cannot fully use MSTopK-SGD in the whole of 28 epochs
        # because it would cause accuracy loss."
        sparse = sim.run_all_sparse()
        assert sparse.total_seconds < record.total_seconds
        assert not sparse.reached_target

    def test_accuracy_curve_crosses_at_28(self, sim):
        assert sim.top5_accuracy(27) < 0.93 <= sim.top5_accuracy(28)

    def test_accuracy_monotone(self, sim):
        accs = [sim.top5_accuracy(e) for e in range(29)]
        assert all(a <= b for a, b in zip(accs, accs[1:]))
