"""Hot-path instrumentation: PhaseTimer and steps/sec measurement."""

import numpy as np
import pytest

from repro.api.registry import build_cluster, build_scheme, build_workload
from repro.perf.hotpath import (
    PhaseTimer,
    compare_hotpaths,
    measure_steps_per_sec,
    worker_batches,
)
from repro.train.trainer import DistributedTrainer
from repro.utils.seeding import new_rng


class TestPhaseTimer:
    def test_add_accumulates_seconds_and_calls(self):
        timer = PhaseTimer()
        timer.add("aggregate", 0.25)
        timer.add("aggregate", 0.75)
        timer.add("fuse", 0.5)
        assert timer.summary() == {"aggregate": 1.0, "fuse": 0.5}
        assert timer.calls == {"aggregate": 2, "fuse": 1}
        assert timer.total == 1.5
        assert timer.shares() == {"aggregate": 1.0 / 1.5, "fuse": 0.5 / 1.5}

    def test_phase_context_manager_records(self):
        timer = PhaseTimer()
        with timer.phase("work"):
            sum(range(1000))
        assert timer.calls["work"] == 1
        assert timer.seconds["work"] >= 0.0

    def test_reset_and_empty_shares(self):
        timer = PhaseTimer()
        timer.add("x", 1.0)
        timer.reset()
        assert timer.summary() == {}
        assert timer.shares() == {}
        assert timer.total == 0.0

    def test_merge_mapping_with_calls(self):
        timer = PhaseTimer()
        timer.add("aggregate", 1.0)
        timer.merge(
            {"forward_backward": 2.0, "fuse": 0.5},
            calls={"forward_backward": 4, "fuse": 4},
        )
        assert timer.summary() == {
            "aggregate": 1.0,
            "forward_backward": 2.0,
            "fuse": 0.5,
        }
        assert timer.calls == {"aggregate": 1, "forward_backward": 4, "fuse": 4}

    def test_merge_mapping_defaults_one_call_per_phase(self):
        timer = PhaseTimer()
        timer.merge({"forward_backward": 1.5})
        assert timer.calls == {"forward_backward": 1}

    def test_merge_other_timer(self):
        worker = PhaseTimer()
        worker.add("forward_backward", 0.25)
        worker.add("forward_backward", 0.25)
        parent = PhaseTimer()
        parent.add("aggregate", 0.5)
        parent.merge(worker)
        assert parent.summary() == {"aggregate": 0.5, "forward_backward": 0.5}
        assert parent.calls == {"aggregate": 1, "forward_backward": 2}

    def test_pool_worker_phases_reach_parent_timer(self):
        """The process backend's off-main-process compute is not dropped:
        per-phase shares include worker-side forward_backward/fuse."""
        from repro.exec.backend import ProcessBackend
        from repro.train.trainer import DistributedTrainer

        workload = build_workload("mlp-tiny", num_samples=64, rng=new_rng(2))
        network = build_cluster("tencent", 2, gpus_per_node=2)
        batches = worker_batches(workload.x, workload.y, 4, 8)
        with ProcessBackend(jobs=2) as pool:
            trainer = DistributedTrainer(
                workload.model,
                build_scheme("dense", network),
                seed=0,
                exec_backend=pool,
            )
            timer = PhaseTimer()
            trainer.timer = timer
            try:
                trainer.train_step(batches)
            finally:
                trainer.close()
        phases = timer.summary()
        assert {"forward_backward", "fuse", "aggregate", "apply"} <= set(phases)
        assert phases["forward_backward"] > 0.0
        # One worker-side record per phase per row reached the parent.
        assert timer.calls["forward_backward"] == 4


@pytest.fixture(scope="module")
def mlp_setup():
    workload = build_workload("mlp-tiny", num_samples=256, rng=new_rng(1))
    network = build_cluster("tencent", 2, gpus_per_node=2)
    batches = worker_batches(workload.x, workload.y, 4, 8)
    return workload, network, batches


class TestMeasurement:
    def test_measure_steps_per_sec_reports_phases(self, mlp_setup):
        workload, network, batches = mlp_setup
        trainer = DistributedTrainer(
            workload.model, build_scheme("mstopk", network, density=0.05), seed=0
        )
        report = measure_steps_per_sec(
            trainer, batches, steps=4, warmup=1, label="mlp"
        )
        assert report.steps == 4
        assert report.steps_per_sec > 0
        assert {"forward_backward", "fuse", "aggregate", "apply"} <= set(
            report.phase_seconds
        )
        assert 0.0 <= report.phase_share("aggregate") <= 1.0
        # The timer handed to the trainer is removed afterwards.
        assert trainer.timer is None

    def test_measure_validates_steps(self, mlp_setup):
        workload, network, batches = mlp_setup
        trainer = DistributedTrainer(
            workload.model, build_scheme("dense", network), seed=0
        )
        with pytest.raises(ValueError):
            measure_steps_per_sec(trainer, batches, steps=0)

    def test_compare_hotpaths_trains_both_paths_identically(self, mlp_setup):
        workload, network, batches = mlp_setup

        trainers = {}

        def make(legacy_hotpath):
            trainer = DistributedTrainer(
                workload.model,
                build_scheme("mstopk", network, density=0.05),
                seed=0,
                legacy_hotpath=legacy_hotpath,
            )
            trainers[legacy_hotpath] = trainer
            return trainer

        comparison = compare_hotpaths(make, batches, steps=3, warmup=1)
        assert comparison.vectorized.steps == comparison.legacy.steps == 3
        assert comparison.speedup > 0
        # Both paths consumed the same data and stayed bit-identical.
        for key in trainers[False].params:
            np.testing.assert_array_equal(
                trainers[False].params[key], trainers[True].params[key]
            )

    def test_worker_batches_shapes(self, mlp_setup):
        workload, _, batches = mlp_setup
        assert len(batches) == 4
        for bx, by in batches:
            assert len(bx) == 8 and len(by) == 8
