"""Table 3 reproduction: who wins, by how much, and proximity to paper.

We do not assert exact equality with the published numbers (the
substrate is a simulator) — we assert the *shape*: orderings, the
25–40% improvement band, the one workload where dense wins, and that
every modelled cell lands within a generous tolerance of the paper.
"""

import pytest

from repro.perf.throughput import PAPER_TABLE3, table3_rows


@pytest.fixture(scope="module")
def rows():
    return {(r.workload, r.scheme): r for r in table3_rows()}


def throughput(rows, workload, scheme):
    return rows[(workload, scheme)].throughput


class TestOrderings:
    def test_dense_sgd_always_slowest(self, rows):
        for workload in PAPER_TABLE3:
            dense = throughput(rows, workload, "Dense-SGD")
            assert dense < throughput(rows, workload, "2DTAR-SGD")
            assert dense < throughput(rows, workload, "MSTopK-SGD")

    def test_2dtar_wins_only_at_resnet_224(self, rows):
        # "2DTAR-SGD ... is slightly faster than our MSTopK-SGD in the
        # case of ResNet-50 with the input resolution of 224*224" (§5.5.2).
        w = "ResNet-50 (224*224)"
        assert throughput(rows, w, "2DTAR-SGD") > throughput(rows, w, "MSTopK-SGD")

    @pytest.mark.parametrize(
        "workload",
        ["ResNet-50 (96*96)", "VGG-19", "Transformer"],
    )
    def test_mstopk_beats_2dtar_elsewhere(self, rows, workload):
        assert throughput(rows, workload, "MSTopK-SGD") > throughput(
            rows, workload, "2DTAR-SGD"
        )

    @pytest.mark.parametrize(
        "workload",
        ["ResNet-50 (96*96)", "VGG-19", "Transformer"],
    )
    def test_improvement_in_25_40_percent_band(self, rows, workload):
        # "our MSTopK-SGD achieves 25%-40% improvement over 2DTAR-SGD"
        # (§5.5.2); allow a band of 15-50% for the simulated substrate.
        ratio = throughput(rows, workload, "MSTopK-SGD") / throughput(
            rows, workload, "2DTAR-SGD"
        )
        assert 1.15 < ratio < 1.50, f"{workload}: ratio {ratio:.3f}"


class TestPaperProximity:
    @pytest.mark.parametrize("workload", list(PAPER_TABLE3))
    @pytest.mark.parametrize("scheme", ["Dense-SGD", "2DTAR-SGD", "MSTopK-SGD"])
    def test_throughput_within_30_percent(self, rows, workload, scheme):
        modelled = throughput(rows, workload, scheme)
        paper, _ = PAPER_TABLE3[workload][scheme]
        assert modelled == pytest.approx(paper, rel=0.30), (
            f"{workload} / {scheme}: modelled {modelled:.0f} vs paper {paper}"
        )

    @pytest.mark.parametrize("workload", list(PAPER_TABLE3))
    def test_scaling_efficiency_sane(self, rows, workload):
        for scheme in ("Dense-SGD", "2DTAR-SGD", "MSTopK-SGD"):
            se = rows[(workload, scheme)].scaling_efficiency
            assert 0.05 < se <= 1.0
