"""Bit-exactness parity: the vectorized hot path vs the legacy loops.

The hot-path engine rewrote every scheme's aggregation, the trainer's
fusion, and the compression batch paths.  These tests pin all of it to
the pre-vectorisation reference (`repro.comm.legacy.legacy_aggregate`
and the trainer's ``legacy_hotpath`` step) — outputs, wire accounting,
error-feedback residuals, rng streams, losses, and parameters must match
bit for bit, for every registered scheme, under sync training and under
elastic world-size changes.
"""

import numpy as np
import pytest

from repro.api.registry import build_cluster, build_scheme, build_workload
from repro.comm.legacy import legacy_aggregate
from repro.elastic.elastic_trainer import ElasticTrainer
from repro.elastic.events import ChurnEvent, PoissonChurn, TraceSchedule
from repro.exec.backend import ProcessBackend
from repro.train.trainer import DistributedTrainer
from repro.utils.seeding import new_rng

#: The four registered scheme families of the convergence experiments.
SCHEMES = ("dense", "topk", "gtopk", "mstopk")
#: Every registered scheme builder (dense variants included).
ALL_SCHEMES = ("dense", "dense-ring", "2dtar", "topk", "gtopk", "mstopk", "naiveag-mstopk")


@pytest.fixture()
def network():
    return build_cluster("tencent", 4, gpus_per_node=2)


@pytest.fixture(scope="module")
def pool():
    """One shared 2-process pool for the whole module (spawn cost once)."""
    backend = ProcessBackend(jobs=2)
    yield backend
    backend.close()


class TestSchemeParity:
    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_aggregate_bit_identical_over_steps(self, network, name):
        """Outputs, accounting, EF state, and rng stream all match."""
        vec = build_scheme(name, network, density=0.05)
        ref = build_scheme(name, network, density=0.05)
        rng_data = np.random.default_rng(17)
        rng_vec, rng_ref = new_rng(5), new_rng(5)
        for step in range(4):
            grads = rng_data.standard_normal((8, 863))
            a = vec.aggregate(grads, rng=rng_vec)
            b = legacy_aggregate(ref, grads, rng=rng_ref)
            assert len(a.outputs) == len(b.outputs) == 8
            for out_a, out_b in zip(a.outputs, b.outputs):
                np.testing.assert_array_equal(out_a, out_b)
            assert a.inter_bytes == b.inter_bytes, (name, step)
            assert a.intra_bytes == b.intra_bytes, (name, step)
            for key in ("k", "k_tilde", "global_nnz"):
                assert a.extras.get(key) == b.extras.get(key), (name, step)
            ef_vec = getattr(vec, "ef", None)
            ef_ref = getattr(ref, "ef", None)
            if ef_vec is not None:
                assert list(ef_vec.keys()) == list(ef_ref.keys())
                for ef_key in ef_vec.keys():
                    np.testing.assert_array_equal(
                        ef_vec.residual(ef_key), ef_ref.residual(ef_key)
                    )
        # Identical rng consumption: the next draw must agree.
        assert rng_vec.integers(0, 1 << 30) == rng_ref.integers(0, 1 << 30)

    @pytest.mark.parametrize("name", SCHEMES)
    def test_matrix_and_list_inputs_agree(self, network, name):
        """The (W, d) matrix interface equals the historical list one."""
        s_mat = build_scheme(name, network, density=0.05)
        s_list = build_scheme(name, network, density=0.05)
        grads = np.random.default_rng(23).standard_normal((8, 101))
        a = s_mat.aggregate(grads, rng=new_rng(1))
        b = s_list.aggregate(list(grads), rng=new_rng(1))
        np.testing.assert_array_equal(a.outputs[0], b.outputs[0])

    def test_aggregate_does_not_mutate_input_matrix(self, network):
        for name in SCHEMES:
            scheme = build_scheme(name, network, density=0.05)
            grads = np.random.default_rng(2).standard_normal((8, 64))
            original = grads.copy()
            scheme.aggregate(grads, rng=new_rng(0))
            np.testing.assert_array_equal(grads, original)

    def test_world_size_validation_on_matrix(self, network):
        scheme = build_scheme("dense", network)
        with pytest.raises(ValueError):
            scheme.aggregate(np.zeros((3, 10)))


class TestTrainerParity:
    @pytest.mark.parametrize("workload_name", ["mlp", "cnn"])
    @pytest.mark.parametrize("scheme_name", SCHEMES)
    def test_sync_training_bit_identical(self, network, workload_name, scheme_name):
        workload = build_workload(workload_name, num_samples=256, rng=new_rng(7))
        vec = DistributedTrainer(
            workload.model, build_scheme(scheme_name, network, density=0.05), seed=7
        )
        ref = DistributedTrainer(
            workload.model,
            build_scheme(scheme_name, network, density=0.05),
            seed=7,
            legacy_hotpath=True,
        )
        report_vec = vec.train(workload.x, workload.y, epochs=2, local_batch=8)
        report_ref = ref.train(workload.x, workload.y, epochs=2, local_batch=8)
        assert report_vec.epoch_losses == report_ref.epoch_losses
        assert report_vec.epoch_metrics == report_ref.epoch_metrics
        assert report_vec.comm_seconds == report_ref.comm_seconds
        for key in vec.params:
            np.testing.assert_array_equal(vec.params[key], ref.params[key])

    def test_layout_computed_once_and_reused(self, network):
        workload = build_workload("mlp-tiny", num_samples=64, rng=new_rng(3))
        trainer = DistributedTrainer(
            workload.model, build_scheme("dense", network), seed=1
        )
        assert trainer.grad_dim == sum(p.size for p in trainer.params.values())
        assert trainer._grad_matrix.shape == (8, trainer.grad_dim)
        buffer_before = trainer._grad_matrix
        batches = [(workload.x[:4], workload.y[:4])] * 8
        trainer.train_step(batches)
        trainer.train_step(batches)
        # The fusion buffer is preallocated once and reused every step.
        assert trainer._grad_matrix is buffer_before


class TestProcessBackendParity:
    """The ``process`` execution backend vs the serial hot path.

    Same bar as the vectorized-vs-legacy pinning above: losses, metrics,
    comm accounting, parameters and EF residuals must match bit for bit
    for every registered scheme — parallelism may only move wall-clock.
    """

    @pytest.mark.parametrize("workload_name", ["mlp", "cnn"])
    @pytest.mark.parametrize("scheme_name", SCHEMES)
    def test_sync_training_bit_identical(self, network, pool, workload_name, scheme_name):
        workload = build_workload(workload_name, num_samples=256, rng=new_rng(7))
        serial = DistributedTrainer(
            workload.model, build_scheme(scheme_name, network, density=0.05), seed=7
        )
        parallel = DistributedTrainer(
            workload.model,
            build_scheme(scheme_name, network, density=0.05),
            seed=7,
            exec_backend=pool,
        )
        try:
            report_s = serial.train(workload.x, workload.y, epochs=2, local_batch=8)
            report_p = parallel.train(workload.x, workload.y, epochs=2, local_batch=8)
        finally:
            parallel.close()
        assert report_p.epoch_losses == report_s.epoch_losses
        assert report_p.epoch_metrics == report_s.epoch_metrics
        assert report_p.comm_seconds == report_s.comm_seconds
        for key in serial.params:
            np.testing.assert_array_equal(parallel.params[key], serial.params[key])
        ef_s = getattr(serial.scheme, "ef", None)
        ef_p = getattr(parallel.scheme, "ef", None)
        if ef_s is not None:
            for ef_key in ef_s.keys():
                np.testing.assert_array_equal(
                    ef_p.residual(ef_key), ef_s.residual(ef_key)
                )

    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_every_registered_scheme_one_epoch(self, network, pool, scheme_name):
        workload = build_workload("mlp-tiny", num_samples=128, rng=new_rng(3))
        serial = DistributedTrainer(
            workload.model, build_scheme(scheme_name, network, density=0.05), seed=5
        )
        parallel = DistributedTrainer(
            workload.model,
            build_scheme(scheme_name, network, density=0.05),
            seed=5,
            exec_backend=pool,
        )
        try:
            report_s = serial.train(workload.x, workload.y, epochs=1, local_batch=8)
            report_p = parallel.train(workload.x, workload.y, epochs=1, local_batch=8)
        finally:
            parallel.close()
        assert report_p.epoch_losses == report_s.epoch_losses
        for key in serial.params:
            np.testing.assert_array_equal(parallel.params[key], serial.params[key])

    def test_shared_matrix_is_the_aggregation_input(self, network, pool):
        """Zero-copy: the trainer's fusion buffer is the shared block."""
        workload = build_workload("mlp-tiny", num_samples=64, rng=new_rng(3))
        trainer = DistributedTrainer(
            workload.model, build_scheme("dense", network), seed=1, exec_backend=pool
        )
        try:
            engine = trainer._engine
            assert engine is not None
            assert trainer._grad_matrix is engine._grad.array
            batches = [(workload.x[:4], workload.y[:4])] * 8
            trainer.train_step(batches)
            assert trainer._grad_matrix is engine._grad.array
        finally:
            trainer.close()
        # close() hands back a private copy so training can continue inline.
        assert trainer._engine is None
        trainer.train_step([(workload.x[:4], workload.y[:4])] * 8)

    @pytest.mark.parametrize("scheme_name", SCHEMES)
    def test_elastic_bit_identical_under_churn(self, pool, scheme_name, tmp_path):
        workload = build_workload("mlp-tiny", num_samples=192, rng=new_rng(5))

        def run(exec_backend, subdir):
            trace = TraceSchedule(
                [
                    ChurnEvent(6, "revoke", warned=False),
                    ChurnEvent(13, "join"),
                    ChurnEvent(20, "revoke", warned=True),
                ]
            )
            trainer = ElasticTrainer(
                workload.model,
                scheme=scheme_name,
                density=0.05,
                num_nodes=3,
                gpus_per_node=2,
                min_nodes=1,
                seed=11,
                checkpoint_every=5,
                checkpoint_dir=tmp_path / subdir,
                exec_backend=exec_backend,
            )
            try:
                return trainer.run(
                    workload.x, workload.y, iterations=26, local_batch=8, schedule=trace
                )
            finally:
                trainer.close()

        par = run(pool, "par")
        ref = run(None, "ref")
        assert par.losses == ref.losses
        assert par.world_sizes == ref.world_sizes
        assert par.useful_iterations == ref.useful_iterations
        assert par.rollbacks == ref.rollbacks
        assert par.comm_seconds == ref.comm_seconds

    def test_elastic_poisson_churn_parity(self, pool, tmp_path):
        workload = build_workload("mlp-tiny", num_samples=192, rng=new_rng(5))

        def run(exec_backend, subdir):
            schedule = PoissonChurn(0.02, warned_fraction=0.5, rejoin_delay=5)
            trainer = ElasticTrainer(
                workload.model,
                scheme="mstopk",
                density=0.05,
                num_nodes=4,
                gpus_per_node=2,
                min_nodes=1,
                seed=3,
                checkpoint_every=4,
                checkpoint_dir=tmp_path / subdir,
                exec_backend=exec_backend,
            )
            try:
                return trainer.run(
                    workload.x, workload.y, iterations=30, local_batch=8,
                    schedule=schedule,
                )
            finally:
                trainer.close()

        par = run(pool, "par")
        ref = run(None, "ref")
        assert par.losses == ref.losses
        assert par.world_sizes == ref.world_sizes
        assert par.revocations == ref.revocations


class TestElasticParity:
    @pytest.mark.parametrize("scheme_name", SCHEMES)
    def test_elastic_bit_identical_under_churn(self, scheme_name, tmp_path):
        workload = build_workload("mlp-tiny", num_samples=192, rng=new_rng(5))
        trace = TraceSchedule(
            [
                ChurnEvent(6, "revoke", warned=False),
                ChurnEvent(13, "join"),
                ChurnEvent(20, "revoke", warned=True),
            ]
        )

        def run(legacy_hotpath, subdir):
            trainer = ElasticTrainer(
                workload.model,
                scheme=scheme_name,
                density=0.05,
                num_nodes=3,
                gpus_per_node=2,
                min_nodes=1,
                seed=11,
                checkpoint_every=5,
                checkpoint_dir=tmp_path / subdir,
                legacy_hotpath=legacy_hotpath,
            )
            return trainer.run(
                workload.x, workload.y, iterations=26, local_batch=8, schedule=trace
            )

        vec = run(False, "vec")
        ref = run(True, "ref")
        assert vec.losses == ref.losses
        assert vec.world_sizes == ref.world_sizes
        assert vec.useful_iterations == ref.useful_iterations
        assert vec.rollbacks == ref.rollbacks
        assert vec.comm_seconds == ref.comm_seconds

    def test_elastic_poisson_churn_parity(self, tmp_path):
        workload = build_workload("mlp-tiny", num_samples=192, rng=new_rng(5))
        schedule = PoissonChurn(0.02, warned_fraction=0.5, rejoin_delay=5)

        def run(legacy_hotpath, subdir):
            trainer = ElasticTrainer(
                workload.model,
                scheme="mstopk",
                density=0.05,
                num_nodes=4,
                gpus_per_node=2,
                min_nodes=1,
                seed=3,
                checkpoint_every=4,
                checkpoint_dir=tmp_path / subdir,
                legacy_hotpath=legacy_hotpath,
            )
            return trainer.run(
                workload.x, workload.y, iterations=30, local_batch=8, schedule=schedule
            )

        vec = run(False, "vec")
        ref = run(True, "ref")
        assert vec.losses == ref.losses
        assert vec.world_sizes == ref.world_sizes
        assert vec.revocations == ref.revocations
