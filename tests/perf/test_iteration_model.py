"""Iteration-time model composition."""

import pytest

from repro.models.profiles import resnet50_profile
from repro.perf.iteration_model import IterationModel, SchemeKind, io_visible_time


@pytest.fixture
def model_224(testbed):
    return IterationModel(
        network=testbed,
        profile=resnet50_profile(),
        scheme=SchemeKind.MSTOPK_HIER,
        resolution=224,
        local_batch=256,
    )


class TestComposition:
    def test_breakdown_components(self, model_224):
        breakdown = model_224.breakdown()
        for key in ("io", "ff_bp", "compression", "communication", "lars", "sync"):
            assert key in breakdown
            assert breakdown.get(key) >= 0

    def test_throughput_formula(self, model_224):
        t = model_224.iteration_time()
        assert model_224.throughput() == pytest.approx(256 * 128 / t)

    def test_scaling_efficiency_bounded(self, model_224):
        se = model_224.scaling_efficiency()
        assert 0 < se <= 1.0

    def test_ffbp_from_calibration(self, model_224):
        assert model_224.t_ffbp() == pytest.approx(256 / 1240)

    def test_string_scheme_coerced(self, testbed):
        model = IterationModel(
            network=testbed,
            profile=resnet50_profile(),
            scheme="2dtar",
            resolution=224,
            local_batch=256,
        )
        assert model.scheme is SchemeKind.DENSE_2DTAR

    def test_batch_validation(self, testbed):
        with pytest.raises(ValueError):
            IterationModel(
                network=testbed,
                profile=resnet50_profile(),
                scheme=SchemeKind.DENSE_TREE,
                resolution=224,
                local_batch=0,
            )


class TestSchemeEffects:
    def _model(self, testbed, kind, **kw):
        return IterationModel(
            network=testbed,
            profile=resnet50_profile(),
            scheme=kind,
            resolution=224,
            local_batch=256,
            **kw,
        )

    def test_topk_compression_exceeds_ffbp(self, testbed):
        # The Fig. 1 finding that motivates MSTopK.
        model = self._model(testbed, SchemeKind.TOPK_NAIVE)
        breakdown = model.breakdown()
        assert breakdown.get("compression") > breakdown.get("ff_bp")

    def test_mstopk_compression_negligible(self, testbed):
        model = self._model(testbed, SchemeKind.MSTOPK_HIER)
        breakdown = model.breakdown()
        assert breakdown.get("compression") < 0.01 * breakdown.get("ff_bp") + 0.005

    def test_dense_tree_has_zero_compression(self, testbed):
        model = self._model(testbed, SchemeKind.DENSE_TREE)
        assert model.breakdown().get("compression") == 0.0

    def test_pto_reduces_lars(self, testbed):
        with_pto = self._model(testbed, SchemeKind.MSTOPK_HIER, use_pto=True)
        without = self._model(testbed, SchemeKind.MSTOPK_HIER, use_pto=False)
        assert with_pto.t_lars() < without.t_lars()

    def test_datacache_reduces_io(self, testbed):
        cached = self._model(testbed, SchemeKind.MSTOPK_HIER, use_datacache=True)
        naive = self._model(testbed, SchemeKind.MSTOPK_HIER, use_datacache=False)
        assert cached.t_io() < naive.t_io() / 5


class TestIoModel:
    def test_cached_beats_naive(self):
        naive = io_visible_time(96, 256, 0.058, cached=False, workers=1)
        cached = io_visible_time(96, 256, 0.058, cached=True, workers=1)
        assert cached < naive / 10  # Fig. 9's ">10x" claim

    def test_workers_divide_decode(self):
        one = io_visible_time(224, 256, 0.2, cached=False, workers=1)
        eight = io_visible_time(224, 256, 0.2, cached=False, workers=8)
        assert eight < one / 3

    def test_text_pipeline_is_cheap(self):
        t = io_visible_time(0, 8, 0.25, cached=True, workers=1, text=True)
        assert t < 1e-3
