"""Scaling-efficiency sweeps + the §1 motivation claim."""

import pytest

from repro.perf.efficiency import efficiency_sweep, intro_claim


class TestIntroClaim:
    def test_baseline_speedup_near_40x(self):
        # §1: "128 Nvidia V100 GPUs ... can only achieve about 40x
        # speedup ... a very low scaling efficiency of 31%."
        point = intro_claim()
        assert point.world_size == 128
        assert 30 < point.speedup < 60, point.speedup
        assert 0.23 < point.efficiency < 0.47, point.efficiency


class TestSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return efficiency_sweep(node_counts=(1, 4, 16))

    def test_curve_shape(self, points):
        by = {(p.scheme, p.num_nodes): p for p in points}
        # Efficiency decays (within tolerance) with scale for every
        # scheme — the bandwidth terms saturate, so tails are flat.
        for scheme in ("Dense-SGD", "2DTAR-SGD", "MSTopK-SGD"):
            assert (
                by[(scheme, 1)].efficiency
                >= by[(scheme, 4)].efficiency - 0.01
                >= by[(scheme, 16)].efficiency - 0.02
            )
        # Crossing the node boundary costs the dense baseline dearly
        # (its single-node efficiency is itself capped by the naive I/O
        # and serial LARS it also carries).
        assert by[("Dense-SGD", 1)].efficiency > 1.3 * by[("Dense-SGD", 4)].efficiency
        # ... but the optimised schemes decay far more slowly.
        assert by[("MSTopK-SGD", 16)].efficiency > 2 * by[("Dense-SGD", 16)].efficiency

    def test_throughput_still_grows_with_nodes(self, points):
        by = {(p.scheme, p.num_nodes): p for p in points}
        for scheme in ("Dense-SGD", "2DTAR-SGD", "MSTopK-SGD"):
            assert by[(scheme, 16)].throughput > by[(scheme, 4)].throughput

    def test_single_node_efficiency_high(self, points):
        by = {(p.scheme, p.num_nodes): p for p in points}
        # Inside one node (NVLink only) even the dense baseline is fine.
        assert by[("2DTAR-SGD", 1)].efficiency > 0.8

    def test_point_consistency(self, points):
        for p in points:
            assert p.world_size == p.num_nodes * 8
            assert p.efficiency == pytest.approx(p.speedup / p.world_size)
