"""Matrix-native collectives are bit-identical to the ring/tree schedules.

The vectorised hot path replaces the per-rank Python loops with whole-
matrix operations; these tests pin every variant to the step-by-step
schedule simulations, bit for bit, across world sizes and unequal-chunk
dimensions.
"""

import numpy as np
import pytest

from repro.cluster.topology import ClusterTopology
from repro.collectives import (
    SparseVector,
    batched_scatter_add,
    broadcast_views,
    matrix_reduce_scatter,
    matrix_ring_allreduce,
    matrix_torus_allreduce_2d,
    matrix_tree_allreduce,
    ring_allreduce,
    ring_reduce_scatter,
    torus_allreduce_2d,
    tree_allreduce,
)


@pytest.mark.parametrize("p,d", [(1, 7), (2, 8), (3, 5), (4, 16), (5, 1), (8, 37), (6, 1003)])
class TestMatrixFolds:
    def test_reduce_scatter_matches_ring(self, p, d):
        mat = np.random.default_rng(p * 100 + d).standard_normal((p, d))
        flat = matrix_reduce_scatter(mat)
        expected = np.concatenate(ring_reduce_scatter(list(mat)))
        np.testing.assert_array_equal(flat, expected)

    def test_ring_allreduce_matches(self, p, d):
        mat = np.random.default_rng(p * 100 + d).standard_normal((p, d))
        out = matrix_ring_allreduce(mat)
        for reference in ring_allreduce(list(mat)):
            np.testing.assert_array_equal(out, reference)

    def test_tree_allreduce_matches(self, p, d):
        mat = np.random.default_rng(p * 100 + d).standard_normal((p, d))
        out = matrix_tree_allreduce(mat)
        np.testing.assert_array_equal(out, tree_allreduce(list(mat))[0])

    def test_inputs_not_mutated(self, p, d):
        mat = np.random.default_rng(0).standard_normal((p, d))
        original = mat.copy()
        matrix_reduce_scatter(mat)
        matrix_ring_allreduce(mat)
        matrix_tree_allreduce(mat)
        np.testing.assert_array_equal(mat, original)


@pytest.mark.parametrize("m,n,d", [(1, 1, 4), (1, 4, 10), (4, 1, 9), (2, 2, 8), (4, 2, 862), (3, 3, 100)])
def test_torus_matches_schedule(m, n, d):
    topo = ClusterTopology(m, n)
    mat = np.random.default_rng(m * 31 + n * 7 + d).standard_normal((m * n, d))
    out = matrix_torus_allreduce_2d(mat, topo)
    for reference in torus_allreduce_2d(list(mat), topo):
        np.testing.assert_array_equal(out, reference)


class TestValidation:
    def test_reduce_scatter_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            matrix_reduce_scatter(np.zeros(5))
        with pytest.raises(ValueError):
            matrix_reduce_scatter(np.zeros((0, 4)))

    def test_tree_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            matrix_tree_allreduce(np.zeros((2, 3, 4)))

    def test_torus_rejects_world_mismatch(self):
        with pytest.raises(ValueError):
            matrix_torus_allreduce_2d(np.zeros((3, 4)), ClusterTopology(2, 2))


class TestBatchedScatterAdd:
    def test_matches_sequential_add_at(self):
        rng = np.random.default_rng(3)
        length = 500
        vecs = [
            SparseVector(rng.standard_normal(40), rng.integers(0, length, 40), length)
            for _ in range(6)
        ]
        expected = np.zeros(length)
        for v in vecs:
            np.add.at(expected, v.indices, v.values)
        np.testing.assert_array_equal(batched_scatter_add(vecs, length), expected)

    def test_offsets_rebase_shard_selections(self):
        rng = np.random.default_rng(4)
        shard = SparseVector(rng.standard_normal(3), np.array([0, 2, 4]), 5)
        out = batched_scatter_add([shard, shard], 10, offsets=[0, 5])
        np.testing.assert_array_equal(out[:5], shard.to_dense())
        np.testing.assert_array_equal(out[5:], shard.to_dense())

    def test_rejects_out_of_range_and_empty(self):
        v = SparseVector(np.ones(1), np.array([3]), 4)
        with pytest.raises(ValueError):
            batched_scatter_add([v], 3)
        with pytest.raises(ValueError):
            batched_scatter_add([], 3)
        with pytest.raises(ValueError):
            batched_scatter_add([v], 4, offsets=[0, 1])


class TestBroadcastViews:
    def test_views_share_one_buffer(self):
        base = np.arange(5.0)
        views = broadcast_views(base, 3)
        assert len(views) == 3
        for v in views:
            np.testing.assert_array_equal(v, base)
            assert v.base is base

    def test_rejects_bad_world(self):
        with pytest.raises(ValueError):
            broadcast_views(np.arange(3.0), 0)
