"""All-Gather collectives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.all_gather import (
    all_gather,
    all_gather_concat,
    ring_all_gather,
)


class TestAllGather:
    def test_every_worker_sees_all(self, rng):
        xs = [rng.normal(size=3) for _ in range(4)]
        out = all_gather(xs)
        assert len(out) == 4
        for worker_view in out:
            for r, x in enumerate(xs):
                np.testing.assert_array_equal(worker_view[r], x)

    def test_views_are_independent_copies(self, rng):
        xs = [rng.normal(size=3) for _ in range(2)]
        out = all_gather(xs)
        out[0][1][0] = 123.0
        assert out[1][1][0] != 123.0

    def test_unequal_lengths_allowed(self):
        out = all_gather([np.zeros(2), np.zeros(5)])
        assert out[0][1].size == 5

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            all_gather([])


class TestRingAllGather:
    @given(p=st.integers(1, 8), chunk=st.integers(1, 16), seed=st.integers(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_matches_concat(self, p, chunk, seed):
        rng = np.random.default_rng(seed)
        xs = [rng.normal(size=chunk) for _ in range(p)]
        ring = ring_all_gather(xs)
        concat = all_gather_concat(xs)
        for r, c in zip(ring, concat):
            np.testing.assert_array_equal(r, c)

    def test_rank_order_preserved(self):
        xs = [np.full(2, float(r)) for r in range(4)]
        out = ring_all_gather(xs)
        np.testing.assert_array_equal(
            out[2], [0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0]
        )

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ValueError):
            ring_all_gather([np.zeros(2), np.zeros(3)])

    def test_single_worker(self, rng):
        x = rng.normal(size=5)
        [out] = ring_all_gather([x])
        np.testing.assert_array_equal(out, x)
