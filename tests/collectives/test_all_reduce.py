"""All-Reduce variants: ring, tree, 2D-torus — all must equal the sum."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import ClusterTopology
from repro.collectives.all_reduce import (
    ring_allreduce,
    torus_allreduce_2d,
    tree_allreduce,
)


def _reference(xs):
    return np.sum(xs, axis=0)


class TestRingAllReduce:
    @given(p=st.integers(1, 8), d=st.integers(1, 48), seed=st.integers(0, 30))
    @settings(max_examples=40, deadline=None)
    def test_equals_sum(self, p, d, seed):
        rng = np.random.default_rng(seed)
        xs = [rng.normal(size=d) for _ in range(p)]
        out = ring_allreduce(xs)
        for o in out:
            np.testing.assert_allclose(o, _reference(xs), rtol=1e-10, atol=1e-12)

    def test_all_workers_identical(self, rng):
        xs = [rng.normal(size=17) for _ in range(5)]
        out = ring_allreduce(xs)
        for o in out[1:]:
            np.testing.assert_array_equal(o, out[0])


class TestTreeAllReduce:
    @given(p=st.integers(1, 12), d=st.integers(1, 32), seed=st.integers(0, 30))
    @settings(max_examples=40, deadline=None)
    def test_equals_sum(self, p, d, seed):
        rng = np.random.default_rng(seed)
        xs = [rng.normal(size=d) for _ in range(p)]
        out = tree_allreduce(xs)
        for o in out:
            np.testing.assert_allclose(o, _reference(xs), rtol=1e-10, atol=1e-12)

    def test_non_power_of_two(self, rng):
        xs = [rng.normal(size=6) for _ in range(5)]
        out = tree_allreduce(xs)
        np.testing.assert_allclose(out[0], _reference(xs))

    def test_deterministic_accumulation_order(self, rng):
        xs = [rng.normal(size=8) for _ in range(7)]
        a = tree_allreduce(xs)
        b = tree_allreduce(xs)
        np.testing.assert_array_equal(a[0], b[0])


class TestTorus2D:
    @given(
        m=st.integers(1, 4),
        n=st.integers(1, 4),
        d=st.integers(1, 40),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_equals_sum(self, m, n, d, seed):
        rng = np.random.default_rng(seed)
        topo = ClusterTopology(m, n)
        xs = [rng.normal(size=d) for _ in range(topo.world_size)]
        out = torus_allreduce_2d(xs, topo)
        for o in out:
            np.testing.assert_allclose(o, _reference(xs), rtol=1e-9, atol=1e-11)

    def test_paper_shape_16x8_small_vector(self, rng):
        topo = ClusterTopology(16, 8)
        xs = [rng.normal(size=5) for _ in range(128)]
        out = torus_allreduce_2d(xs, topo)
        np.testing.assert_allclose(out[0], _reference(xs), rtol=1e-9)

    def test_world_size_mismatch(self, rng):
        topo = ClusterTopology(2, 2)
        with pytest.raises(ValueError):
            torus_allreduce_2d([rng.normal(size=4)] * 3, topo)

    def test_inputs_not_mutated(self, rng):
        topo = ClusterTopology(2, 2)
        xs = [rng.normal(size=9) for _ in range(4)]
        originals = [x.copy() for x in xs]
        torus_allreduce_2d(xs, topo)
        for x, o in zip(xs, originals):
            np.testing.assert_array_equal(x, o)
