"""Basic collective primitives."""

import numpy as np
import pytest

from repro.collectives.primitives import (
    broadcast,
    gather,
    reduce_sum,
    scatter,
    validate_group,
)


class TestValidateGroup:
    def test_accepts_uniform_group(self):
        group = validate_group([np.zeros(4), np.ones(4)])
        assert len(group) == 2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_group([])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="rank 1"):
            validate_group([np.zeros(4), np.zeros(5)])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            validate_group([np.zeros((2, 2))])

    def test_rejects_dtype_mismatch(self):
        with pytest.raises(ValueError):
            validate_group([np.zeros(4, dtype=np.float64), np.zeros(4, dtype=np.float32)])


class TestBroadcast:
    def test_every_worker_gets_copy(self, rng):
        x = rng.normal(size=8)
        copies = broadcast(x, 3)
        assert len(copies) == 3
        for c in copies:
            np.testing.assert_array_equal(c, x)
        copies[0][0] = 99.0  # copies are independent
        assert copies[1][0] != 99.0

    def test_invalid_world(self):
        with pytest.raises(ValueError):
            broadcast(np.zeros(2), 0)


class TestReduceGatherScatter:
    def test_reduce_sum(self, rng):
        tensors = [rng.normal(size=16) for _ in range(5)]
        np.testing.assert_allclose(reduce_sum(tensors), np.sum(tensors, axis=0))

    def test_reduce_does_not_mutate(self, rng):
        tensors = [rng.normal(size=4) for _ in range(3)]
        originals = [t.copy() for t in tensors]
        reduce_sum(tensors)
        for t, o in zip(tensors, originals):
            np.testing.assert_array_equal(t, o)

    def test_gather_preserves_rank_order(self):
        out = gather([np.array([1.0]), np.array([2.0])])
        assert out[0][0] == 1.0 and out[1][0] == 2.0

    def test_gather_empty(self):
        with pytest.raises(ValueError):
            gather([])

    def test_scatter_reassembles(self, rng):
        x = rng.normal(size=11)
        chunks = scatter(x, 3)
        np.testing.assert_array_equal(np.concatenate(chunks), x)

    def test_scatter_rejects_2d(self):
        with pytest.raises(ValueError):
            scatter(np.zeros((2, 2)), 2)
