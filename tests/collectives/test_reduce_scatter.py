"""Ring Reduce-Scatter correctness — step 1 of Algorithm 2."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.reduce_scatter import (
    reference_reduce_scatter,
    ring_reduce_scatter,
)
from repro.utils.partition import chunk_bounds


class TestRingReduceScatter:
    def test_two_workers(self, rng):
        xs = [rng.normal(size=10) for _ in range(2)]
        shards = ring_reduce_scatter(xs)
        total = xs[0] + xs[1]
        np.testing.assert_allclose(shards[0], total[:5])
        np.testing.assert_allclose(shards[1], total[5:])

    def test_owner_is_chunk_index(self, rng):
        # Worker i must own chunk i — Algorithm 2 Eq. (4) depends on it.
        p, d = 4, 23
        xs = [rng.normal(size=d) for _ in range(p)]
        shards = ring_reduce_scatter(xs)
        total = np.sum(xs, axis=0)
        for worker, (start, end) in enumerate(chunk_bounds(d, p)):
            np.testing.assert_allclose(shards[worker], total[start:end])

    def test_single_worker(self, rng):
        x = rng.normal(size=7)
        [shard] = ring_reduce_scatter([x])
        np.testing.assert_array_equal(shard, x)

    @given(
        p=st.integers(1, 9),
        d=st.integers(1, 64),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_reference(self, p, d, seed):
        rng = np.random.default_rng(seed)
        xs = [rng.normal(size=d) for _ in range(p)]
        ring = ring_reduce_scatter(xs)
        reference = reference_reduce_scatter(xs)
        assert len(ring) == len(reference)
        for r, ref in zip(ring, reference):
            np.testing.assert_allclose(r, ref, rtol=1e-10, atol=1e-12)

    def test_does_not_mutate_inputs(self, rng):
        xs = [rng.normal(size=8) for _ in range(4)]
        originals = [x.copy() for x in xs]
        ring_reduce_scatter(xs)
        for x, o in zip(xs, originals):
            np.testing.assert_array_equal(x, o)

    def test_d_smaller_than_p(self, rng):
        # Some workers own empty shards.
        xs = [rng.normal(size=2) for _ in range(4)]
        shards = ring_reduce_scatter(xs)
        sizes = [s.size for s in shards]
        assert sizes == [1, 1, 0, 0]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ring_reduce_scatter([np.zeros(4), np.zeros(5)])
