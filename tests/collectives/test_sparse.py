"""SparseVector and the sparse All-Gather aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.sparse import (
    SparseVector,
    coalesce,
    concat_sparse,
    sparse_allgather_reduce,
    sparsify_dense,
)


class TestSparseVector:
    def test_to_dense(self):
        sv = SparseVector(np.array([1.0, 2.0]), np.array([3, 0]), 5)
        np.testing.assert_array_equal(sv.to_dense(), [2.0, 0, 0, 1.0, 0])

    def test_to_dense_accumulates_duplicates(self):
        sv = SparseVector(np.array([1.0, 2.0]), np.array([1, 1]), 3)
        np.testing.assert_array_equal(sv.to_dense(), [0, 3.0, 0])

    def test_validation(self):
        with pytest.raises(ValueError):
            SparseVector(np.zeros(2), np.zeros(3, dtype=int), 5)
        with pytest.raises(ValueError):
            SparseVector(np.zeros(1), np.array([5]), 5)  # index out of range
        with pytest.raises(ValueError):
            SparseVector(np.zeros(1), np.array([-1]), 5)
        with pytest.raises(ValueError):
            SparseVector(np.zeros((1, 1)), np.zeros((1, 1), dtype=int), 5)

    def test_shifted(self):
        sv = SparseVector(np.array([1.0]), np.array([2]), 4)
        shifted = sv.shifted(4, 8)
        assert shifted.indices[0] == 6
        assert shifted.length == 8

    def test_nbytes_on_wire(self):
        # "the number of elements ... to be transmitted becomes 2k".
        sv = SparseVector(np.zeros(10), np.arange(10), 100)
        assert sv.nbytes_on_wire(4, 4) == 80

    def test_sparsify_dense(self, rng):
        x = rng.normal(size=20)
        sv = sparsify_dense(x, np.array([3, 7]))
        assert sv.values[0] == x[3] and sv.values[1] == x[7]


class TestCoalesce:
    def test_merges_duplicates(self):
        sv = SparseVector(np.array([1.0, 2.0, 3.0]), np.array([4, 1, 4]), 6)
        merged = coalesce(sv)
        assert merged.nnz == 2
        np.testing.assert_array_equal(merged.indices, [1, 4])
        np.testing.assert_array_equal(merged.values, [2.0, 4.0])

    def test_empty(self):
        sv = SparseVector(np.empty(0), np.empty(0, dtype=int), 5)
        assert coalesce(sv).nnz == 0

    @given(
        length=st.integers(1, 50),
        nnz=st.integers(0, 80),
        seed=st.integers(0, 30),
    )
    @settings(max_examples=40, deadline=None)
    def test_coalesce_preserves_dense(self, length, nnz, seed):
        rng = np.random.default_rng(seed)
        sv = SparseVector(
            rng.normal(size=nnz), rng.integers(0, length, size=nnz), length
        )
        np.testing.assert_allclose(coalesce(sv).to_dense(), sv.to_dense())


class TestConcatSparse:
    def test_concat(self):
        a = SparseVector(np.array([1.0]), np.array([0]), 4)
        b = SparseVector(np.array([2.0]), np.array([0]), 4)
        c = concat_sparse([a, b])
        np.testing.assert_array_equal(c.to_dense(), [3.0, 0, 0, 0])

    def test_length_mismatch(self):
        a = SparseVector(np.array([1.0]), np.array([0]), 4)
        b = SparseVector(np.array([2.0]), np.array([0]), 5)
        with pytest.raises(ValueError):
            concat_sparse([a, b])


class TestSparseAllGatherReduce:
    def test_equals_sum_of_densified(self, rng):
        vectors = []
        for _ in range(4):
            idx = rng.choice(30, size=5, replace=False)
            vectors.append(SparseVector(rng.normal(size=5), idx, 30))
        out = sparse_allgather_reduce(vectors)
        expected = np.sum([v.to_dense() for v in vectors], axis=0)
        for o in out:
            np.testing.assert_allclose(o, expected)

    def test_overlapping_indices_accumulate(self):
        a = SparseVector(np.array([1.0]), np.array([2]), 4)
        b = SparseVector(np.array([5.0]), np.array([2]), 4)
        out = sparse_allgather_reduce([a, b])
        assert out[0][2] == 6.0

    def test_length_mismatch_rejected(self):
        a = SparseVector(np.array([1.0]), np.array([0]), 4)
        b = SparseVector(np.array([1.0]), np.array([0]), 5)
        with pytest.raises(ValueError):
            sparse_allgather_reduce([a, b])

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            sparse_allgather_reduce([])
