"""The docs suite stays true: pages exist, are linked, and every command runs.

The acceptance bar for ``docs/``: every command a page shows is
exercised — either executed right here through the CLI entry point, or
explicitly accounted for as a command CI/the test suite already runs
(the ``KNOWN_EXERCISED`` map).  A documented command nobody runs is a
doc bug, and this test makes it a failing one.
"""

import pathlib
import re
import shlex

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
DOCS = REPO / "docs"
PAGES = ("architecture.md", "quickstart.md", "scenarios.md", "traces.md",
         "faults.md", "brain.md", "serve.md")

#: Documented commands this test does NOT execute, mapped to where they
#: are exercised instead.  Keep the rationale honest: if a command stops
#: being covered there, remove it here and cover it.
KNOWN_EXERCISED = {
    # The tier-1 suite itself (CI `test` job runs `python -m pytest tests -x -q`).
    "python -m pytest tests -x -q": "CI test job",
    # CI smoke-benchmarks job runs bench_sched through the schema gate.
    "python -m pytest benchmarks/bench_sched.py -q --benchmark-disable": (
        "CI smoke-benchmarks job"
    ),
    # Editable install; CI uses PYTHONPATH=src instead (this repo has no
    # third-party build deps, so the install path is trivial).
    "python setup.py develop": "install step (CI uses PYTHONPATH=src)",
    # The 10k-job day replay (~15 s each) — CI trace-smoke runs the same
    # path at the same scale through bench_trace_replay.py and gates it.
    "python -m repro sched --trace /tmp/big_day.jsonl": (
        "CI trace-smoke job (bench_trace_replay, 10k scale)"
    ),
    "python -m repro sched --trace /tmp/big_day.jsonl --set "
    "'policies=[\"bin-pack\", \"spread\", \"network-aware\"]' --jobs 0": (
        "CI trace-smoke job (bench_trace_replay) + exec pool parity in "
        "tests/sched/test_traces.py"
    ),
    # CI faults-smoke job runs the drill bench + regression gate; the
    # --jobs 4 CLI run is cmp'd byte-for-byte there and in
    # tests/faults/test_cli_faults.py.
    "python -m pytest benchmarks/bench_fault_drills.py -q --benchmark-disable": (
        "CI faults-smoke job"
    ),
    "python -m repro run --config examples/configs/fault_drill.json --jobs 4 --json": (
        "CI faults-smoke job + tests/faults/test_cli_faults.py "
        "(jobs-width byte parity)"
    ),
    # The socket daemon blocks until stopped, so the live-submission
    # trio can't run inline; the exact transport round trip (daemon
    # thread + client submit/tick/status/stop) runs in
    # tests/serve/test_socket.py.
    "python -m repro serve --config examples/configs/serve_smoke.json "
    "--socket /tmp/repro.sock": "tests/serve/test_socket.py (daemon thread)",
    "python -m repro submit --socket /tmp/repro.sock --job "
    "'{\"name\": \"late-job\", \"profile\": \"resnet50\", \"iterations\": 200}'": (
        "tests/serve/test_socket.py (send_ops round trip)"
    ),
    "python -m repro submit --socket /tmp/repro.sock --op '{\"op\": \"tick\"}' "
    "--op '{\"op\": \"status\"}'": "tests/serve/test_socket.py (op stream)",
    # The SIGKILL-then-recover sequence needs a process that dies and a
    # second process sharing its state dir — the CI serve-smoke job runs
    # exactly these commands and byte-compares the recovered payload;
    # the in-process equivalent is tests/serve/test_recovery.py.
    "python -m repro serve --config examples/configs/serve_smoke.json "
    "--trace examples/traces/sample_day.jsonl --limit 12 "
    "--state-dir /tmp/serve-day --kill-at tick:2 --kill-mode sigkill": (
        "CI serve-smoke job (real SIGKILL + restart)"
    ),
    "python -m repro serve --config examples/configs/serve_smoke.json "
    "--trace examples/traces/sample_day.jsonl --limit 12 "
    "--state-dir /tmp/serve-day --kill-at snapshot:2 --kill-mode sigkill": (
        "CI serve-smoke job (real SIGKILL + restart)"
    ),
    "python -m repro serve --config examples/configs/serve_smoke.json "
    "--trace examples/traces/sample_day.jsonl --limit 12 "
    "--state-dir /tmp/serve-day --out /tmp/serve-day/payload.json": (
        "CI serve-smoke job (recovered-run byte compare)"
    ),
}

#: Non-python shell lines that may appear in fences (ignored).
IGNORED_PREFIXES = ("export ", "cd ", "pip ", "#")


def bash_commands(page: str) -> list[str]:
    """All command lines inside ```bash fences of one page."""
    text = (DOCS / page).read_text()
    commands: list[str] = []
    for block in re.findall(r"```bash\n(.*?)```", text, flags=re.DOTALL):
        for line in block.splitlines():
            line = line.strip()
            if not line or line.startswith(IGNORED_PREFIXES):
                continue
            commands.append(line)
    return commands


ALL_COMMANDS = sorted({cmd for page in PAGES for cmd in bash_commands(page)})


class TestDocsExist:
    @pytest.mark.parametrize("page", PAGES)
    def test_page_exists_with_content(self, page):
        path = DOCS / page
        assert path.exists(), f"docs/{page} is missing"
        assert len(path.read_text()) > 500

    def test_readme_links_every_page(self):
        readme = (REPO / "README.md").read_text()
        for page in PAGES:
            assert f"docs/{page}" in readme, f"README does not link docs/{page}"

    def test_pages_cross_link(self):
        assert "architecture.md" in (DOCS / "quickstart.md").read_text()
        assert "quickstart.md" in (DOCS / "scenarios.md").read_text()
        assert "traces.md" in (DOCS / "scenarios.md").read_text()
        assert "scenarios.md" in (DOCS / "traces.md").read_text()
        assert "faults.md" in (DOCS / "scenarios.md").read_text()
        assert "scenarios.md" in (DOCS / "faults.md").read_text()
        assert "brain.md" in (DOCS / "scenarios.md").read_text()
        assert "brain.md" in (DOCS / "faults.md").read_text()
        assert "faults.md" in (DOCS / "brain.md").read_text()
        assert "scenarios.md" in (DOCS / "brain.md").read_text()
        assert "serve.md" in (DOCS / "scenarios.md").read_text()
        assert "faults.md" in (DOCS / "serve.md").read_text()
        assert "traces.md" in (DOCS / "serve.md").read_text()
        assert "serve.md" in (DOCS / "architecture.md").read_text()

    def test_architecture_has_mermaid_subsystem_map(self):
        text = (DOCS / "architecture.md").read_text()
        assert "```mermaid" in text
        for subsystem in ("repro.api", "repro.sched", "repro.elastic",
                          "repro.comm", "repro.cluster", "repro.perf",
                          "repro.faults", "repro.brain", "repro.serve"):
            assert subsystem in text, subsystem

    def test_docs_reference_only_existing_paths(self):
        """Every examples/... or src/... path a page mentions exists."""
        pattern = re.compile(r"(?:examples|src|benchmarks|results)/[\w./-]+")
        for page in PAGES:
            for ref in pattern.findall((DOCS / page).read_text()):
                ref = ref.rstrip(".")
                assert (REPO / ref).exists(), f"{page} references missing {ref}"


class TestEveryDocumentedCommandRuns:
    def test_commands_were_collected(self):
        # The cookbook should be substantial: a docs change that drops
        # the fences (or renames the language tag) fails loudly.
        assert len(ALL_COMMANDS) >= 12, ALL_COMMANDS

    @pytest.mark.parametrize("command", ALL_COMMANDS)
    def test_documented_command_is_exercised(self, command, capsys, monkeypatch):
        if command in KNOWN_EXERCISED:
            return
        argv = shlex.split(command)
        assert argv[:3] == ["python", "-m", "repro"], (
            f"undocumented command shape {command!r}: execute it here or add "
            "it to KNOWN_EXERCISED with a justification"
        )
        from repro.api.cli import main

        monkeypatch.chdir(REPO)  # docs paths are repo-root relative
        assert main(argv[3:]) == 0, command
        out = capsys.readouterr().out
        assert out.strip(), f"{command!r} produced no output"
