"""gTop-k global top-k aggregation (extension baseline)."""

import numpy as np
import pytest

from repro.collectives.sparse import SparseVector
from repro.comm.gtopk import GlobalTopK, merge_topk
from repro.compression.exact_topk import topk_argpartition
from tests.conftest import make_worker_grads


class TestMergeTopK:
    def test_keeps_global_top(self):
        a = SparseVector(np.array([5.0, 1.0]), np.array([0, 1]), 6)
        b = SparseVector(np.array([4.0, 0.5]), np.array([2, 3]), 6)
        merged = merge_topk(a, b, 2)
        assert merged.nnz == 2
        assert set(merged.indices.tolist()) == {0, 2}

    def test_sums_shared_indices(self):
        a = SparseVector(np.array([1.0]), np.array([3]), 5)
        b = SparseVector(np.array([2.0]), np.array([3]), 5)
        merged = merge_topk(a, b, 1)
        assert merged.indices[0] == 3
        assert merged.values[0] == 3.0

    def test_under_k_union_passes_through(self):
        a = SparseVector(np.array([1.0]), np.array([0]), 5)
        b = SparseVector(np.array([2.0]), np.array([1]), 5)
        merged = merge_topk(a, b, 4)
        assert merged.nnz == 2

    def test_length_mismatch(self):
        a = SparseVector(np.array([1.0]), np.array([0]), 5)
        b = SparseVector(np.array([1.0]), np.array([0]), 6)
        with pytest.raises(ValueError):
            merge_topk(a, b, 1)


class TestGlobalTopK:
    def test_output_has_exactly_k_nonzeros(self, small_cluster, rng):
        scheme = GlobalTopK(small_cluster, density=0.05, error_feedback=False)
        grads = make_worker_grads(rng, 8, 200)
        result = scheme.aggregate(grads, rng=rng)
        k = result.extras["k"]
        assert result.extras["global_nnz"] <= k
        assert np.count_nonzero(result.outputs[0]) <= k

    def test_outputs_identical_across_ranks(self, small_cluster, rng):
        scheme = GlobalTopK(small_cluster, density=0.05)
        grads = make_worker_grads(rng, 8, 100)
        result = scheme.aggregate(grads, rng=rng)
        for out in result.outputs[1:]:
            np.testing.assert_array_equal(out, result.outputs[0])

    def test_two_workers_equals_direct_merge(self, rng):
        from repro.cluster.cloud_presets import make_cluster

        net = make_cluster(1, "tencent", gpus_per_node=2)
        scheme = GlobalTopK(net, density=0.2, error_feedback=False)
        grads = make_worker_grads(rng, 2, 50)
        result = scheme.aggregate(grads)
        k = result.extras["k"]
        expected = merge_topk(
            topk_argpartition(grads[0], k), topk_argpartition(grads[1], k), k
        ).to_dense()
        np.testing.assert_allclose(result.outputs[0], expected)

    def test_global_support_smaller_than_naiveag(self, small_cluster, rng):
        from repro.comm.naive_allgather import NaiveAllGather

        grads = make_worker_grads(rng, 8, 500)
        gtopk = GlobalTopK(small_cluster, density=0.02, error_feedback=False)
        naive = NaiveAllGather(small_cluster, density=0.02, error_feedback=False)
        nnz_g = np.count_nonzero(gtopk.aggregate(grads, rng=rng).outputs[0])
        nnz_n = np.count_nonzero(naive.aggregate(grads, rng=rng).outputs[0])
        assert nnz_g < nnz_n  # gTop-k keeps k, NaiveAG keeps up to P*k

    def test_trains_with_error_feedback(self, rng):
        # gTop-k must be usable end-to-end through the trainer.
        from repro.cluster.cloud_presets import make_cluster
        from repro.models.nn.mlp import MLPClassifier
        from repro.optim.sgd import SGD
        from repro.train.synthetic import make_spiral_classification
        from repro.train.trainer import DistributedTrainer

        net = make_cluster(2, "tencent", gpus_per_node=2)
        x, y = make_spiral_classification(512, num_classes=4, rng=rng)
        model = MLPClassifier(input_dim=2, hidden=(16,), num_classes=4)
        trainer = DistributedTrainer(
            model, GlobalTopK(net, density=0.1), optimizer=SGD(lr=0.1), seed=0
        )
        report = trainer.train(x, y, epochs=6, local_batch=16)
        assert report.epoch_losses[-1] < report.epoch_losses[0]

    def test_time_model_structure(self, testbed):
        breakdown = GlobalTopK(testbed, density=0.001).time_model(25_000_000)
        assert set(breakdown.steps) == {"select", "merge_tree", "broadcast"}
        assert breakdown.total > 0

    def test_density_validation(self, small_cluster):
        with pytest.raises(ValueError):
            GlobalTopK(small_cluster, density=0.0)
