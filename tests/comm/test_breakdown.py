"""TimeBreakdown container."""

import pytest

from repro.comm.breakdown import TimeBreakdown


class TestTimeBreakdown:
    def test_add_and_total(self):
        b = TimeBreakdown()
        b.add("a", 1.0).add("b", 2.0).add("a", 0.5)
        assert b.get("a") == 1.5
        assert b.total == 3.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TimeBreakdown().add("x", -1.0)

    def test_scaled(self):
        b = TimeBreakdown({"a": 2.0, "b": 4.0}).scaled(0.5)
        assert b.get("a") == 1.0 and b.get("b") == 2.0

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            TimeBreakdown({"a": 1.0}).scaled(-1)

    def test_merged_preserves_order(self):
        a = TimeBreakdown({"x": 1.0, "y": 2.0})
        b = TimeBreakdown({"y": 3.0, "z": 4.0})
        merged = a.merged(b)
        assert list(merged.steps) == ["x", "y", "z"]
        assert merged.get("y") == 5.0
        # Originals untouched.
        assert a.get("y") == 2.0

    def test_fraction(self):
        b = TimeBreakdown({"a": 1.0, "b": 3.0})
        assert b.fraction("b") == pytest.approx(0.75)
        assert TimeBreakdown().fraction("a") == 0.0

    def test_contains_and_getitem(self):
        b = TimeBreakdown({"a": 1.0})
        assert "a" in b and "z" not in b
        assert b["a"] == 1.0

    def test_format_mentions_total(self):
        out = TimeBreakdown({"io": 0.5}).format()
        assert "io" in out and "total" in out
