"""NaiveAG — the flat sparse baseline."""

import numpy as np
import pytest

from repro.comm.naive_allgather import NaiveAllGather
from repro.compression.mstopk import MSTopK
from tests.conftest import make_worker_grads


class TestFunctional:
    def test_outputs_identical_across_ranks(self, small_cluster, rng):
        scheme = NaiveAllGather(small_cluster, density=0.1)
        grads = make_worker_grads(rng, 8, 100)
        result = scheme.aggregate(grads, rng=rng)
        for out in result.outputs[1:]:
            np.testing.assert_array_equal(out, result.outputs[0])

    def test_output_is_sum_of_selections(self, small_cluster, rng):
        scheme = NaiveAllGather(small_cluster, density=0.1, error_feedback=False)
        grads = make_worker_grads(rng, 8, 100)
        result = scheme.aggregate(grads, rng=rng)
        expected = np.sum([s.to_dense() for s in result.extras["selections"]], axis=0)
        np.testing.assert_allclose(result.outputs[0], expected)

    def test_density_one_equals_dense_sum(self, small_cluster, rng):
        scheme = NaiveAllGather(small_cluster, density=1.0, error_feedback=False)
        grads = make_worker_grads(rng, 8, 40)
        result = scheme.aggregate(grads, rng=rng)
        np.testing.assert_allclose(result.outputs[0], np.sum(grads, axis=0))

    def test_nnz_bounded_by_world_k(self, small_cluster, rng):
        scheme = NaiveAllGather(small_cluster, density=0.05, error_feedback=False)
        grads = make_worker_grads(rng, 8, 200)
        result = scheme.aggregate(grads, rng=rng)
        k = result.extras["k"]
        assert np.count_nonzero(result.outputs[0]) <= 8 * k

    def test_error_feedback_mass_conservation(self, small_cluster, rng):
        # Over iterations, transmitted + residual == all gradients, per worker.
        scheme = NaiveAllGather(small_cluster, density=0.1, error_feedback=True)
        d = 60
        totals = [np.zeros(d) for _ in range(8)]
        sent_totals = [np.zeros(d) for _ in range(8)]
        for _ in range(5):
            grads = make_worker_grads(rng, 8, d)
            result = scheme.aggregate(grads, rng=rng)
            for w in range(8):
                totals[w] += grads[w]
                sent_totals[w] += result.extras["selections"][w].to_dense()
        for w in range(8):
            np.testing.assert_allclose(
                sent_totals[w] + scheme.ef.residual(w), totals[w], atol=1e-9
            )

    def test_custom_compressor(self, small_cluster, rng):
        scheme = NaiveAllGather(
            small_cluster, density=0.1, compressor=MSTopK(), error_feedback=False
        )
        grads = make_worker_grads(rng, 8, 100)
        result = scheme.aggregate(grads, rng=rng)
        assert np.count_nonzero(result.outputs[0]) > 0


class TestCostModel:
    def test_grows_with_world_size(self, small_cluster, testbed):
        d = 10_000_000
        small = NaiveAllGather(small_cluster, density=0.01).time_model(d).total
        large = NaiveAllGather(testbed, density=0.01).time_model(d).total
        assert large > small

    def test_linear_in_density(self, testbed):
        d = 50_000_000
        low = NaiveAllGather(testbed, density=0.001).time_model(d).total
        high = NaiveAllGather(testbed, density=0.01).time_model(d).total
        assert high > 5 * low

    def test_validation(self, small_cluster):
        with pytest.raises(ValueError):
            NaiveAllGather(small_cluster, density=0.0)
        with pytest.raises(ValueError):
            NaiveAllGather(small_cluster, sparse_goodput=0.0)
