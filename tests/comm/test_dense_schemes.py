"""Dense aggregation schemes: exactness and cost-model shape."""

import numpy as np
import pytest

from repro.comm.dense import RingAllReduce, Torus2DAllReduce, TreeAllReduce
from tests.conftest import make_worker_grads


@pytest.fixture(params=[RingAllReduce, TreeAllReduce, Torus2DAllReduce])
def dense_scheme(request, small_cluster):
    return request.param(small_cluster)


class TestFunctionalExactness:
    def test_outputs_equal_global_sum(self, dense_scheme, rng):
        grads = make_worker_grads(rng, dense_scheme.topology.world_size, 77)
        result = dense_scheme.aggregate(grads)
        expected = np.sum(grads, axis=0)
        assert len(result.outputs) == dense_scheme.topology.world_size
        for out in result.outputs:
            np.testing.assert_allclose(out, expected, rtol=1e-10)

    def test_world_size_validation(self, dense_scheme, rng):
        with pytest.raises(ValueError):
            dense_scheme.aggregate(make_worker_grads(rng, 3, 10))

    def test_shape_validation(self, dense_scheme, rng):
        grads = make_worker_grads(rng, dense_scheme.topology.world_size, 10)
        grads[-1] = rng.normal(size=11)
        with pytest.raises(ValueError):
            dense_scheme.aggregate(grads)

    def test_breakdown_positive(self, dense_scheme, rng):
        grads = make_worker_grads(rng, dense_scheme.topology.world_size, 50)
        result = dense_scheme.aggregate(grads)
        assert result.time > 0
        assert result.inter_bytes > 0


class TestCostShape:
    """Fig. 7's dense-scheme ordering on the paper testbed."""

    def test_2dtar_beats_tree_at_scale(self, testbed):
        d = 100_000_000
        tree = TreeAllReduce(testbed, wire_bytes=2).time_model(d).total
        torus = Torus2DAllReduce(testbed, wire_bytes=2).time_model(d).total
        assert torus < tree

    def test_tree_beats_flat_ring_on_latency(self, testbed):
        # At tiny sizes the flat ring's 2(P-1) latency terms dominate.
        d = 1_000
        ring = RingAllReduce(testbed, wire_bytes=2).time_model(d).total
        tree = TreeAllReduce(testbed, wire_bytes=2).time_model(d).total
        assert tree < ring

    def test_costs_scale_linearly_at_large_d(self, testbed):
        scheme = Torus2DAllReduce(testbed, wire_bytes=2)
        t1 = scheme.time_model(50_000_000).total
        t2 = scheme.time_model(100_000_000).total
        assert t2 == pytest.approx(2 * t1, rel=0.1)

    def test_2dtar_breakdown_has_three_phases(self, testbed):
        breakdown = Torus2DAllReduce(testbed).time_model(10_000_000)
        assert set(breakdown.steps) == {
            "reduce_scatter",
            "inter_allreduce",
            "intra_allgather",
        }

    def test_2dtar_inter_phase_dominates(self, testbed):
        breakdown = Torus2DAllReduce(testbed).time_model(50_000_000)
        assert breakdown.fraction("inter_allreduce") > 0.5

    def test_fp16_halves_bandwidth_term(self, testbed):
        d = 100_000_000
        fp32 = Torus2DAllReduce(testbed, wire_bytes=4).time_model(d).total
        fp16 = Torus2DAllReduce(testbed, wire_bytes=2).time_model(d).total
        assert fp16 == pytest.approx(fp32 / 2, rel=0.05)
