"""HiTopKComm (Algorithm 2) — functional semantics and cost structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cloud_presets import make_cluster
from repro.collectives.reduce_scatter import reference_reduce_scatter
from repro.comm.hitopkcomm import (
    HiTopKComm,
    STEP_INTER_ALLGATHER,
    STEP_INTRA_ALLGATHER,
    STEP_MSTOPK,
    STEP_REDUCE_SCATTER,
)
from repro.compression.base import density_to_k
from repro.compression.exact_topk import ExactTopK
from repro.utils.partition import chunk_bounds
from tests.conftest import make_worker_grads


class TestFunctionalSemantics:
    def test_outputs_identical_everywhere(self, small_cluster, rng):
        scheme = HiTopKComm(small_cluster, density=0.1)
        grads = make_worker_grads(rng, 8, 120)
        result = scheme.aggregate(grads, rng=rng)
        assert len(result.outputs) == 8
        for out in result.outputs[1:]:
            np.testing.assert_array_equal(out, result.outputs[0])

    def test_density_one_equals_dense_sum(self, small_cluster, rng):
        # With ρ = 1 nothing is dropped: Algorithm 2 reduces to a
        # hierarchical dense all-reduce.
        scheme = HiTopKComm(small_cluster, density=1.0, error_feedback=False)
        grads = make_worker_grads(rng, 8, 64)
        result = scheme.aggregate(grads, rng=rng)
        np.testing.assert_allclose(
            result.outputs[0], np.sum(grads, axis=0), rtol=1e-10
        )

    def test_equals_manual_algorithm2(self, tiny_cluster, rng):
        """Step-by-step re-derivation with exact top-k (deterministic)."""
        m, n = 2, 2
        d = 40
        density = 0.2
        scheme = HiTopKComm(
            tiny_cluster,
            density=density,
            compressor=ExactTopK("sort"),
            error_feedback=False,
        )
        grads = make_worker_grads(rng, m * n, d)
        result = scheme.aggregate(grads)

        # Manual: per node reduce-scatter, per-shard exact top-k,
        # cross-node accumulate, concatenate.
        bounds = chunk_bounds(d, n)
        expected = np.zeros(d)
        for node in range(m):
            shards = reference_reduce_scatter(grads[node * n : (node + 1) * n])
            for local, shard in enumerate(shards):
                k = density_to_k(shard.size, density)
                sv = ExactTopK("sort").select(shard, k)
                start, _ = bounds[local]
                np.add.at(expected, sv.indices + start, sv.values)
        np.testing.assert_allclose(result.outputs[0], expected, rtol=1e-10)

    def test_nnz_bounded_by_rho_d_m(self, small_cluster, rng):
        # Accumulated non-zeros per shard ≤ m * k̃ -> total ≤ ~ρ d m.
        d, density = 400, 0.05
        scheme = HiTopKComm(small_cluster, density=density, error_feedback=False)
        grads = make_worker_grads(rng, 8, d)
        result = scheme.aggregate(grads, rng=rng)
        m = small_cluster.num_nodes
        n = small_cluster.gpus_per_node
        k_tilde = density_to_k(d // n, density)
        assert np.count_nonzero(result.outputs[0]) <= m * n * k_tilde

    @given(
        m=st.integers(1, 3),
        n=st.integers(1, 4),
        d=st.integers(8, 120),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=30, deadline=None)
    def test_shapes_and_identity_hold_for_any_topology(self, m, n, d, seed):
        rng = np.random.default_rng(seed)
        net = make_cluster(m, "tencent", gpus_per_node=n)
        scheme = HiTopKComm(net, density=0.25, error_feedback=False)
        grads = [rng.normal(size=d) for _ in range(m * n)]
        result = scheme.aggregate(grads, rng=rng)
        assert result.outputs[0].size == d
        for out in result.outputs[1:]:
            np.testing.assert_array_equal(out, result.outputs[0])


class TestErrorFeedback:
    def test_shard_residuals_created_per_rank(self, small_cluster, rng):
        scheme = HiTopKComm(small_cluster, density=0.1)
        grads = make_worker_grads(rng, 8, 100)
        scheme.aggregate(grads, rng=rng)
        assert scheme.ef is not None
        assert len(scheme.ef) == 8
        # Residual shapes match the owner's shard size (d/n each).
        bounds = chunk_bounds(100, small_cluster.gpus_per_node)
        for rank in range(8):
            local = small_cluster.topology.local_rank_of(rank)
            start, end = bounds[local]
            assert scheme.ef.residual(rank).size == end - start

    def test_residual_reinjected_next_round(self, small_cluster, rng):
        # A coordinate dropped in round 1 must influence round 2: feed a
        # gradient with one huge coordinate plus noise; with EF the big
        # coordinate survives even if a first tiny-k round missed it.
        scheme = HiTopKComm(small_cluster, density=0.02)
        d = 200
        base = np.zeros(d)
        base[137] = 0.5  # below round-1 selection at this density? maybe
        grads = [base + 0.001 * rng.normal(size=d) for _ in range(8)]
        total = np.zeros(d)
        for _ in range(6):
            result = scheme.aggregate(grads, rng=rng)
            total += result.outputs[0]
        # After several rounds EF must have pushed coordinate 137 through.
        assert total[137] > 0.5

    def test_ef_disabled_keeps_no_state(self, small_cluster, rng):
        scheme = HiTopKComm(small_cluster, density=0.1, error_feedback=False)
        scheme.aggregate(make_worker_grads(rng, 8, 64), rng=rng)
        assert scheme.ef is None


class TestCostModel:
    def test_breakdown_has_four_steps(self, testbed):
        breakdown = HiTopKComm(testbed, density=0.01).time_model(25_000_000)
        assert list(breakdown.steps) == [
            STEP_REDUCE_SCATTER,
            STEP_MSTOPK,
            STEP_INTER_ALLGATHER,
            STEP_INTRA_ALLGATHER,
        ]

    def test_inter_allgather_dominates_at_paper_scale(self, testbed):
        # Fig. 8: "the most time-consuming part is the
        # inter-communication with the All-Gather operation".
        for d in (25_000_000, 110_000_000):
            breakdown = HiTopKComm(testbed, density=0.01).time_model(d)
            inter = breakdown.get(STEP_INTER_ALLGATHER)
            assert inter == max(breakdown.steps.values())

    def test_mstopk_step_negligible(self, testbed):
        breakdown = HiTopKComm(testbed, density=0.01).time_model(25_000_000)
        assert breakdown.fraction(STEP_MSTOPK) < 0.15

    def test_inter_step_linear_in_density(self, testbed):
        d = 50_000_000
        low = HiTopKComm(testbed, density=0.001).time_model(d)
        high = HiTopKComm(testbed, density=0.01).time_model(d)
        assert high.get(STEP_INTER_ALLGATHER) > 5 * low.get(STEP_INTER_ALLGATHER)

    def test_beats_dense_at_paper_settings(self, testbed):
        from repro.comm.dense import Torus2DAllReduce

        d = 100_000_000
        sparse = HiTopKComm(
            testbed, density=0.01, value_bytes=2, dense_wire_bytes=2
        ).time_model(d).total
        dense = Torus2DAllReduce(testbed, wire_bytes=2).time_model(d).total
        assert sparse < dense / 2

    def test_density_validation(self, small_cluster):
        with pytest.raises(ValueError):
            HiTopKComm(small_cluster, density=0.0)
        with pytest.raises(ValueError):
            HiTopKComm(small_cluster, density=1.5)
