"""Decision logic of the built-in brains, against hand-built snapshots.

A stub pricing oracle with a fixed scaling curve makes every decision
boundary explicit: the throughput brain's grow/shrink rules, the
rollback-risk pricing on scale-ups, and the health brain's
migrate-else-shrink repair (most-critical job first, cleanest target
first, one promise per target per tick).
"""

import pytest

from repro.api.config import BrainConfig
from repro.brain.builtins import HealthMigrateBrain, StaticBrain, ThroughputBrain
from repro.brain.signals import BrainObservation, JobSignal, NodeSignal


class _StubSpotProfile:
    spot_discount = 0.3


class _StubScheduler:
    """Pricing oracle: per-size iteration seconds from an explicit curve."""

    spot_profile = _StubSpotProfile()

    def __init__(self, curves):
        #: job name -> {node_count: iteration_seconds}
        self.curves = curves

    def iteration_seconds(self, spec, *, nodes, contention=1.0, **_):
        return self.curves[spec][nodes]

    def _hourly_rate(self, spec, nodes):
        return 2.0 * nodes

    def _job_gpus(self, spec):
        return 2


def _node(node, *, suspicion=0.0, up=True, free=2, tenants=0, quarantined=False):
    return NodeSignal(
        node=node,
        up=up,
        free_gpus=free,
        tenants=tenants,
        suspicion=suspicion,
        quarantined=quarantined,
    )


def _job(name, nodes, *, min_nodes=1, max_nodes=3, priority=0, deadline=None):
    return JobSignal(
        name=name,
        nodes=tuple(nodes),
        min_nodes=min_nodes,
        max_nodes=max_nodes,
        priority=priority,
        deadline_seconds=deadline,
        preference="spot",
        progress=0.5,
        remaining=100.0,
        contention=1,
        throughput_it_per_s=1.0,
        hourly_usd=2.0 * len(nodes),
    )


def _observation(nodes, jobs, curves, *, threshold=2.0):
    return BrainObservation(
        now=120.0,
        nodes=nodes,
        jobs=jobs,
        quarantine_threshold=threshold,
        checkpoint_iterations=25,
        spot_discount=0.3,
        queued=0,
        scheduler=_StubScheduler(curves),
        specs={job.name: job.name for job in jobs},
    )


#: Perfect scaling 1 -> 2 (0.5 s/it per extra node), useless third node.
GOOD_THEN_FLAT = {1: 1.0, 2: 0.5, 3: 0.499}
#: Already no better than one node at two.
FLAT = {1: 1.0, 2: 0.999, 3: 0.998}


class TestStaticBrain:
    def test_never_decides(self):
        obs = _observation([_node(0)], [_job("a", [0])], {"a": GOOD_THEN_FLAT})
        assert StaticBrain(BrainConfig(name="static")).decide(obs) == []


class TestThroughputBrain:
    def test_grows_on_efficient_margin(self):
        obs = _observation(
            [_node(0), _node(1)], [_job("a", [0])], {"a": GOOD_THEN_FLAT}
        )
        actions = ThroughputBrain(BrainConfig(name="throughput")).decide(obs)
        assert [a.kind for a in actions] == ["grow"]
        assert actions[0].job == "a" and actions[0].dst == 1

    def test_rollback_risk_prices_out_a_gray_target(self):
        # Same perfect margin, but the only free node is nearly quarantined
        # (suspicion 0.9 of threshold 2.0 stays under the 0.5 gray cutoff
        # yet prices 0.45 of risk off the margin): 1.0 - 0.45 < 0.7.
        obs = _observation(
            [_node(0), _node(1, suspicion=0.9)],
            [_job("a", [0])],
            {"a": GOOD_THEN_FLAT},
        )
        brain = ThroughputBrain(BrainConfig(name="throughput"))
        assert brain.decide(obs) == []
        # With risk pricing disabled the same snapshot grows.
        fearless = ThroughputBrain(BrainConfig(name="throughput", rollback_weight=0.0))
        assert [a.kind for a in fearless.decide(obs)] == ["grow"]

    def test_sheds_a_useless_last_node(self):
        obs = _observation(
            [_node(0), _node(1, suspicion=0.2)],
            [_job("a", [0, 1], max_nodes=2)],
            {"a": FLAT},
        )
        actions = ThroughputBrain(BrainConfig(name="throughput")).decide(obs)
        assert [a.kind for a in actions] == ["shrink"]
        # The most-suspect allocation node is the one shed.
        assert actions[0].src == 1

    def test_respects_gang_floor(self):
        obs = _observation(
            [_node(0), _node(1)],
            [_job("a", [0, 1], min_nodes=2, max_nodes=2)],
            {"a": FLAT},
        )
        assert ThroughputBrain(BrainConfig(name="throughput")).decide(obs) == []


class TestHealthMigrateBrain:
    def test_migrates_off_gray_node_to_cleanest(self):
        # Node 1 is over the 0.5 * 2.0 = 1.0 gray cutoff; nodes 2 and 3
        # are free, node 3 cleaner.
        obs = _observation(
            [
                _node(0),
                _node(1, suspicion=1.4),
                _node(2, suspicion=0.3),
                _node(3),
            ],
            [_job("a", [0, 1], max_nodes=2)],
            {"a": GOOD_THEN_FLAT},
        )
        actions = HealthMigrateBrain(BrainConfig(name="health-migrate")).decide(obs)
        assert [a.kind for a in actions] == ["migrate"]
        assert actions[0].src == 1 and actions[0].dst == 3

    def test_shrinks_when_no_clean_replacement(self):
        obs = _observation(
            [_node(0), _node(1, suspicion=1.4)],
            [_job("a", [0, 1], max_nodes=2)],
            {"a": GOOD_THEN_FLAT},
        )
        actions = HealthMigrateBrain(BrainConfig(name="health-migrate")).decide(obs)
        assert [a.kind for a in actions] == ["shrink"]
        assert actions[0].src == 1

    def test_gang_floor_blocks_preemptive_shrink(self):
        obs = _observation(
            [_node(0), _node(1, suspicion=1.4)],
            [_job("a", [0, 1], min_nodes=2, max_nodes=2)],
            {"a": GOOD_THEN_FLAT},
        )
        assert HealthMigrateBrain(BrainConfig(name="health-migrate")).decide(obs) == []

    def test_one_promise_per_target_per_tick(self):
        # Two jobs both want off their gray node; only one free clean
        # node exists, so the second repair degrades to a shrink.
        obs = _observation(
            [
                _node(0, free=0, tenants=1),
                _node(1, suspicion=1.4, free=0, tenants=1),
                _node(2, free=0, tenants=1),
                _node(3, suspicion=1.4, free=0, tenants=1),
                _node(4),
            ],
            [
                _job("a", [0, 1], priority=1, max_nodes=2),
                _job("b", [2, 3], max_nodes=2),
            ],
            {"a": GOOD_THEN_FLAT, "b": GOOD_THEN_FLAT},
        )
        actions = HealthMigrateBrain(BrainConfig(name="health-migrate")).decide(obs)
        by_job = {a.job: a for a in actions}
        # Higher-priority job repairs first and takes the clean node.
        assert by_job["a"].kind == "migrate" and by_job["a"].dst == 4
        assert by_job["b"].kind == "shrink" and by_job["b"].src == 3

    def test_rescale_pass_covers_unrepaired_jobs(self):
        # No gray nodes at all: the brain still sheds job a's useless
        # second node via the throughput rules.
        obs = _observation(
            [_node(0), _node(1)],
            [_job("a", [0, 1], max_nodes=2)],
            {"a": FLAT},
        )
        actions = HealthMigrateBrain(BrainConfig(name="health-migrate")).decide(obs)
        assert [a.kind for a in actions] == ["shrink"]

    def test_without_ledger_nothing_is_gray(self):
        # quarantine_threshold == inf (no fault plan): cutoff is inf, so
        # even a "suspect" node only sees the rescale pass.
        obs = _observation(
            [_node(0), _node(1, suspicion=5.0)],
            [_job("a", [0, 1], max_nodes=2)],
            {"a": GOOD_THEN_FLAT},
            threshold=float("inf"),
        )
        actions = HealthMigrateBrain(BrainConfig(name="health-migrate")).decide(obs)
        assert all(a.kind != "migrate" for a in actions)


class TestObservationOracle:
    def test_throughput_is_clean_curve(self):
        obs = _observation([_node(0)], [_job("a", [0])], {"a": GOOD_THEN_FLAT})
        assert obs.throughput("a", 1) == pytest.approx(1.0)
        assert obs.throughput("a", 2) == pytest.approx(2.0)
        assert obs.throughput("a", 0) == 0.0

    def test_suspicion_fraction_and_rollback(self):
        obs = _observation(
            [_node(0, suspicion=1.0)], [_job("a", [0])], {"a": GOOD_THEN_FLAT}
        )
        assert obs.suspicion_fraction(0) == pytest.approx(0.5)
        assert obs.expected_rollback_iterations(0) == pytest.approx(
            0.5 * 25 / 2.0
        )

    def test_gray_includes_down_and_quarantined(self):
        obs = _observation(
            [
                _node(0, up=False),
                _node(1, quarantined=True),
                _node(2, suspicion=1.2),
                _node(3),
            ],
            [_job("a", [0])],
            {"a": GOOD_THEN_FLAT},
        )
        assert obs.gray_nodes(cutoff=1.0) == [0, 1, 2]

    def test_clean_candidates_exclude_allocation_and_full_nodes(self):
        obs = _observation(
            [
                _node(0),
                _node(1, free=1),  # too full for a 2-GPU slice
                _node(2, suspicion=0.3),
                _node(3, tenants=1),
            ],
            [_job("a", [0])],
            {"a": GOOD_THEN_FLAT},
        )
        job = obs.job("a")
        # Node 0 is the job's own; node 1 lacks GPUs; 3 beats 2 (cleaner
        # wins over emptier: suspicion sorts before tenants).
        assert obs.clean_candidates(job, 2, cutoff=1.0) == [3, 2]
