"""BrainDriver through the real scheduler: the gray-storm decision replay.

These tests drive the committed gray storm end to end and audit the
decision log the driver leaves behind: structure, phase vocabulary,
per-tick action cap (with its decline entries), and the per-job dwell
spacing no two applied actions may violate.
"""

import pytest

from repro.api.facade import run_sched
from repro.brain.drill import brain_storm_config, run_brain_drills
from repro.brain.log import PHASES

APPLY_PHASES = ("migrate", "shrink", "grow")


def _storm_report(brain: str, **brain_overrides):
    data = brain_storm_config(brain).to_dict()
    data["brain"].update(brain_overrides)
    from repro.api.config import SchedConfig

    return next(iter(run_sched(SchedConfig.from_dict(data)).values()))


@pytest.fixture(scope="module")
def health_report():
    return _storm_report("health-migrate")


class TestBrainLogStructure:
    def test_summary_shape(self, health_report):
        log = health_report.brain_log
        assert log["brain"] == "health-migrate"
        assert log["ticks"] >= 1
        assert log["events"] == len(log["entries"])
        assert len(log["digest"]) == 16 and int(log["digest"], 16) >= 0

    def test_entries_schema(self, health_report):
        entries = health_report.brain_log["entries"]
        for index, entry in enumerate(entries):
            assert entry["seq"] == index
            assert entry["t"] >= 0
            assert entry["phase"] in PHASES

    def test_counters_match_entries(self, health_report):
        log = health_report.brain_log
        by_phase = {}
        for entry in log["entries"]:
            by_phase[entry["phase"]] = by_phase.get(entry["phase"], 0) + 1
        assert log["migrations"] == by_phase.get("migrate", 0)
        assert log["shrinks"] == by_phase.get("shrink", 0)
        assert log["grows"] == by_phase.get("grow", 0)
        assert log["declined"] == by_phase.get("decline", 0)

    def test_storm_triggers_a_migration_with_reason(self, health_report):
        migrations = [
            e for e in health_report.brain_log["entries"] if e["phase"] == "migrate"
        ]
        assert migrations, "the gray storm never triggered a health migration"
        for entry in migrations:
            detail = entry["detail"]
            assert "suspicion" in detail["reason"]
            assert detail["src"] != detail["dst"]

    def test_static_run_has_no_brain_log(self):
        report = _storm_report("static")
        assert report.brain_log is None


class TestDriverInvariants:
    def test_dwell_spacing_per_job(self, health_report):
        # No job may be rescaled twice within min_dwell virtual seconds
        # (120 s on the default config).
        applied = {}
        for entry in health_report.brain_log["entries"]:
            if entry["phase"] in APPLY_PHASES:
                applied.setdefault(entry["job"], []).append(entry["t"])
        assert applied
        for job, times in applied.items():
            gaps = [b - a for a, b in zip(times, times[1:])]
            assert all(gap >= 120.0 - 1e-9 for gap in gaps), (job, times)

    def test_action_cap_declines_overflow(self):
        # The default storm tick at t=120 applies two shrinks; capping
        # max_actions at 1 must decline the overflow, not drop it
        # silently.
        report = _storm_report("health-migrate", max_actions=1)
        log = report.brain_log
        assert log["declined"] >= 1
        declines = [e for e in log["entries"] if e["phase"] == "decline"]
        assert any("cap" in e["detail"]["reason"] for e in declines)

    def test_tick_entries_record_gray_nodes(self, health_report):
        ticks = [
            e for e in health_report.brain_log["entries"] if e["phase"] == "tick"
        ]
        assert ticks
        for entry in ticks:
            detail = entry["detail"]
            assert detail["jobs"] >= 0
            # Idle ticks (no running jobs) skip the observation and so
            # record no gray set.
            if detail["jobs"]:
                assert detail["gray"] == sorted(detail["gray"])


class TestDrillScorecard:
    def test_drill_rows_cover_requested_brains(self):
        results = run_brain_drills(["static", "health-migrate"])
        assert [r["brain"] for r in results] == ["static", "health-migrate"]
        static, brain = results
        assert static["brain_digest"] is None
        assert brain["brain_digest"]
        # The PR's acceptance bar, at the API level.
        assert brain["storm_goodput"] > static["storm_goodput"]
        assert brain["mean_jct_s"] < static["mean_jct_s"]
        assert brain["usd_per_kiter"] < static["usd_per_kiter"]
        assert brain["fairness"] >= static["fairness"]

    def test_aliases_resolve_in_drills(self):
        results = run_brain_drills(["health"])
        assert results[0]["brain"] == "health-migrate"
