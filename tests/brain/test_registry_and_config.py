"""Brain registry, Action schema, and BrainConfig validation.

The registry contract mirrors every other pluggable subsystem: built-in
names and aliases resolve, ``build_brain`` constructs from config, and
an invalid ``brain`` section fails at config-load time with one clear
``ConfigError`` — never mid-simulation.
"""

import pytest

from repro.api.config import BrainConfig, ConfigError, SchedConfig
from repro.brain.base import ACTION_KINDS, BRAINS, Action, build_brain
from repro.brain.builtins import HealthMigrateBrain, StaticBrain, ThroughputBrain


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BRAINS.available()) == {"static", "throughput", "health-migrate"}

    def test_aliases_resolve(self):
        assert BRAINS.canonical("none") == "static"
        assert BRAINS.canonical("noop") == "static"
        assert BRAINS.canonical("rescale") == "throughput"
        assert BRAINS.canonical("health") == "health-migrate"
        assert BRAINS.canonical("migrate") == "health-migrate"

    def test_build_brain_constructs_by_name(self):
        assert isinstance(build_brain(BrainConfig(name="static")), StaticBrain)
        assert isinstance(build_brain(BrainConfig(name="rescale")), ThroughputBrain)
        assert isinstance(
            build_brain(BrainConfig(name="health-migrate")), HealthMigrateBrain
        )

    def test_only_static_is_inactive(self):
        assert StaticBrain.active is False
        assert ThroughputBrain.active is True
        assert HealthMigrateBrain.active is True


class TestAction:
    def test_known_kinds(self):
        assert set(ACTION_KINDS) == {"migrate", "shrink", "grow"}
        for kind in ACTION_KINDS:
            assert Action(kind, "job").kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown action kind"):
            Action("explode", "job")

    def test_frozen(self):
        action = Action("migrate", "job", src=1, dst=2)
        with pytest.raises(AttributeError):
            action.dst = 3


def _sched_data(brain: dict) -> dict:
    return {
        "name": "brain-cfg",
        "cluster": {"num_nodes": 2},
        "jobs": [{"name": "a", "iterations": 10}],
        "brain": brain,
    }


class TestBrainConfigValidation:
    def test_defaults_validate(self):
        config = SchedConfig.from_dict(_sched_data({"name": "health-migrate"}))
        assert config.brain.name == "health-migrate"
        assert config.brain.interval == 60.0

    def test_round_trips(self):
        data = _sched_data({"name": "throughput", "interval": 30.0, "max_actions": 4})
        config = SchedConfig.from_dict(data)
        again = SchedConfig.from_dict(config.to_dict())
        assert again == config
        assert again.to_dict()["brain"]["interval"] == 30.0

    @pytest.mark.parametrize(
        "brain, fragment",
        [
            ({"name": "bogus"}, "unknown brain"),
            ({"name": "static", "interval": 0}, "interval must be > 0"),
            ({"name": "static", "interval": -5}, "interval must be > 0"),
            ({"name": "static", "min_dwell": -1}, "min_dwell must be >= 0"),
            (
                {"name": "static", "migrate_suspicion": 0},
                "migrate_suspicion must be in (0, 1]",
            ),
            (
                {"name": "static", "migrate_suspicion": 1.5},
                "migrate_suspicion must be in (0, 1]",
            ),
            (
                {"name": "static", "grow_efficiency": 0},
                "grow_efficiency must be in (0, 1]",
            ),
            (
                {"name": "static", "shrink_efficiency": 1.0},
                "shrink_efficiency must be in [0, 1)",
            ),
            (
                {"name": "static", "rollback_weight": -0.1},
                "rollback_weight must be >= 0",
            ),
            ({"name": "static", "max_actions": 0}, "max_actions must be >= 1"),
        ],
    )
    def test_invalid_sections_fail_at_load(self, brain, fragment):
        with pytest.raises(ConfigError) as excinfo:
            SchedConfig.from_dict(_sched_data(brain))
        assert fragment in str(excinfo.value)

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown"):
            SchedConfig.from_dict(_sched_data({"name": "static", "wat": 1}))

    def test_alias_accepted_in_config(self):
        config = SchedConfig.from_dict(_sched_data({"name": "health"}))
        assert build_brain(config.brain).active
