"""The brain determinism contract, at the payload byte level.

Three invariants gate the subsystem (mirrored in CI's ``brain-smoke``):

1. ``brain: static`` (or any alias of it) is *byte-identical* to a
   config with no brain section at all — the inactive brain constructs
   no driver, extends no horizon, logs no events;
2. repeat runs of an active brain are byte-identical — decisions are
   pure functions of the observation on the virtual clock;
3. the CLI payload is byte-identical between ``--jobs 1`` and a
   4-worker process pool (the policy grid fans out, the simulation
   does not change).
"""

import json
import os
import pathlib
import subprocess
import sys

from repro.api.config import SchedConfig
from repro.api.facade import run_sched
from repro.brain.drill import brain_storm_config
from repro.sched.scheduler import payload_for_reports

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
GRAY_STORM_CONFIG = REPO / "examples" / "configs" / "gray_storm.json"


def _payload_json(config: SchedConfig) -> str:
    reports = list(run_sched(config).values())
    return json.dumps(
        payload_for_reports(reports), sort_keys=True, separators=(",", ":")
    )


class TestStaticIsNoBrain:
    def test_static_byte_identical_to_unset(self):
        data = brain_storm_config("static").to_dict()
        with_static = SchedConfig.from_dict(data)
        data_none = dict(data)
        del data_none["brain"]
        data_none["name"] = data["name"]  # same label, same bench id
        without = SchedConfig.from_dict(data_none)
        assert _payload_json(with_static) == _payload_json(without)

    def test_alias_of_static_is_also_inactive(self):
        data = brain_storm_config("static").to_dict()
        data["brain"]["name"] = "noop"
        aliased = SchedConfig.from_dict(data)
        assert _payload_json(aliased) == _payload_json(
            SchedConfig.from_dict(brain_storm_config("static").to_dict())
        )


class TestRepeatRunIdentity:
    def test_active_brain_repeat_byte_identical(self):
        config = brain_storm_config("health-migrate")
        assert _payload_json(config) == _payload_json(config)

    def test_throughput_brain_repeat_byte_identical(self):
        config = brain_storm_config("throughput")
        assert _payload_json(config) == _payload_json(config)


class TestJobsWidthInvariance:
    def test_cli_brain_payload_bit_identical_across_jobs(self):
        """The acceptance bar: --jobs 1 vs --jobs 4, byte for byte."""
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        outputs = []
        for jobs in ("1", "4"):
            proc = subprocess.run(
                [
                    sys.executable, "-m", "repro", "sched",
                    "--config", str(GRAY_STORM_CONFIG),
                    "--set", "brain.name=health-migrate",
                    "--jobs", jobs, "--json",
                ],
                capture_output=True, text=True, timeout=300, env=env,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        brain_meta = json.loads(outputs[0])["meta"]["brain"]
        assert all(entry["migrations"] >= 0 for entry in brain_meta.values())
        assert any(entry["events"] > 0 for entry in brain_meta.values())
