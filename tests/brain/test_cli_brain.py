"""CLI surface of the brain subsystem: discovery and failure modes.

Every user mistake — unknown brain name, out-of-range signal knob —
must reach the shell as one actionable ``error:`` line and exit code 2,
never a traceback.
"""

import os
import pathlib
import subprocess
import sys

from repro.api.cli import main
from repro.brain.base import BRAINS

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
GRAY_STORM_CONFIG = REPO / "examples" / "configs" / "gray_storm.json"
MULTI_TENANT_CONFIG = REPO / "examples" / "configs" / "multi_tenant.json"


class TestDiscovery:
    def test_list_brains(self, capsys):
        assert main(["list", "brains"]) == 0
        out = capsys.readouterr().out
        for name in BRAINS.available():
            assert name in out
        assert "aliases:" in out  # e.g. rescale, health

    def test_list_all_includes_brains_group(self, capsys):
        assert main(["list"]) == 0
        assert "brains:" in capsys.readouterr().out


class TestFailureModes:
    def test_unknown_brain_name(self, capsys):
        assert main([
            "sched", "--config", str(GRAY_STORM_CONFIG),
            "--set", "brain.name=bogus",
        ]) == 2
        err = capsys.readouterr().err
        assert "unknown brain 'bogus'" in err
        assert "health-migrate" in err  # the registered alternatives

    def test_zero_interval(self, capsys):
        assert main([
            "sched", "--config", str(GRAY_STORM_CONFIG),
            "--set", "brain.name=throughput", "--set", "brain.interval=0",
        ]) == 2
        assert "interval must be > 0" in capsys.readouterr().err

    def test_out_of_range_migrate_suspicion(self, capsys):
        assert main([
            "sched", "--config", str(GRAY_STORM_CONFIG),
            "--set", "brain.name=health-migrate",
            "--set", "brain.migrate_suspicion=1.5",
        ]) == 2
        assert "migrate_suspicion must be in (0, 1]" in capsys.readouterr().err

    def test_zero_max_actions(self, capsys):
        assert main([
            "sched", "--config", str(MULTI_TENANT_CONFIG),
            "--set", "brain.name=throughput", "--set", "brain.max_actions=0",
        ]) == 2
        assert "max_actions must be >= 1" in capsys.readouterr().err

    def test_unknown_brain_key(self, capsys):
        assert main([
            "sched", "--config", str(GRAY_STORM_CONFIG),
            "--set", "brain.name=static", "--set", "brain.wat=1",
        ]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_failures_are_one_line_no_traceback(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        for argv in (
            ["sched", "--config", str(GRAY_STORM_CONFIG),
             "--set", "brain.name=bogus"],
            ["sched", "--config", str(GRAY_STORM_CONFIG),
             "--set", "brain.name=throughput", "--set", "brain.interval=-1"],
            ["sched", "--config", str(GRAY_STORM_CONFIG),
             "--set", "brain.name=health-migrate",
             "--set", "brain.migrate_suspicion=0"],
            ["sched", "--config", str(MULTI_TENANT_CONFIG),
             "--set", "brain.name=static", "--set", "brain.shrink_efficiency=1"],
            ["sched", "--config", str(MULTI_TENANT_CONFIG),
             "--set", "brain.name=static", "--set", "brain.rollback_weight=-2"],
        ):
            proc = subprocess.run(
                [sys.executable, "-m", "repro", *argv],
                capture_output=True, text=True, timeout=120, env=env,
            )
            assert proc.returncode == 2, argv
            assert "Traceback" not in proc.stderr, argv
            lines = [line for line in proc.stderr.splitlines() if line.strip()]
            assert len(lines) == 1 and lines[0].startswith("error: "), proc.stderr
