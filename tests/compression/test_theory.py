"""Contraction-property checks — do the operators satisfy EF theory?"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.dgc import DGCTopK
from repro.compression.exact_topk import topk_argpartition
from repro.compression.mstopk import mstopk_select
from repro.compression.randomk import RandomK
from repro.compression.theory import (
    CompressionDiagnostics,
    contraction_factor,
    residual_norm_bound,
    topk_contraction_bound,
)
from repro.utils.seeding import new_rng


class TestContractionFactor:
    @given(d=st.integers(10, 500), seed=st.integers(0, 40))
    @settings(max_examples=50, deadline=None)
    def test_exact_topk_meets_theoretical_bound(self, d, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=d)
        k = max(1, d // 10)
        sent = topk_argpartition(x, k)
        assert contraction_factor(x, sent) <= topk_contraction_bound(d, k) + 1e-12

    def test_mstopk_is_a_contraction(self, rng):
        # MSTopK is approximate: it may exceed the exact top-k bound
        # inside the threshold band, but it must stay a contraction
        # (< 1), which is what EF convergence needs.
        for _ in range(20):
            x = rng.normal(size=2000)
            sent = mstopk_select(x, 100, rng=rng)
            assert contraction_factor(x, sent) < 1.0

    def test_dgc_is_a_contraction(self, rng):
        x = rng.normal(size=2000)
        sent = DGCTopK(sample_fraction=0.1).select(x, 100, rng=rng)
        assert contraction_factor(x, sent) < 1.0

    def test_randomk_contraction_in_expectation(self):
        rng = new_rng(0)
        x = rng.normal(size=500)
        comp = RandomK(scale=False)
        factors = [
            contraction_factor(x, comp.select(x, 50, rng=rng)) for _ in range(50)
        ]
        # E[factor] = 1 - k/d for unscaled random-k on isotropic data.
        assert np.mean(factors) == pytest.approx(0.9, abs=0.05)

    def test_full_selection_is_lossless(self, rng):
        x = rng.normal(size=100)
        assert contraction_factor(x, topk_argpartition(x, 100)) == pytest.approx(0.0)

    def test_zero_vector(self):
        x = np.zeros(10)
        sent = topk_argpartition(x, 2)
        assert contraction_factor(x, sent) == 0.0

    def test_length_mismatch(self, rng):
        x = rng.normal(size=10)
        with pytest.raises(ValueError):
            contraction_factor(rng.normal(size=11), topk_argpartition(x, 2))


class TestBounds:
    def test_bound_monotone_in_k(self):
        assert topk_contraction_bound(100, 50) < topk_contraction_bound(100, 10)

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            topk_contraction_bound(10, 11)
        with pytest.raises(ValueError):
            topk_contraction_bound(0, 0)

    def test_residual_bound_finite_and_positive(self):
        bound = residual_norm_bound(1.0, d=1000, k=1)
        assert np.isfinite(bound) and bound > 0

    def test_residual_bound_shrinks_with_density(self):
        assert residual_norm_bound(1.0, 100, 50) < residual_norm_bound(1.0, 100, 5)

    def test_empirical_residual_within_theory(self):
        # Run EF top-k and check residual norms respect the bound scaled
        # by the observed gradient norm.
        from repro.compression.error_feedback import ErrorFeedback

        rng = new_rng(1)
        ef = ErrorFeedback()
        d, k = 400, 100
        grad_bound = 0.0
        for _ in range(100):
            g = rng.normal(size=d)
            grad_bound = max(grad_bound, float(np.linalg.norm(g)))
            corrected = ef.apply("w", g)
            sent = topk_argpartition(corrected, k)
            ef.update("w", corrected, sent)
        bound = residual_norm_bound(grad_bound, d, k)
        assert float(np.linalg.norm(ef.residual("w"))) <= bound


class TestDiagnostics:
    def test_streaming_record(self, rng):
        diag = CompressionDiagnostics()
        for _ in range(5):
            x = rng.normal(size=300)
            diag.record(x, topk_argpartition(x, 30))
        assert diag.samples == 5
        assert diag.satisfies_contraction()
        assert 0 < diag.mean_energy_kept <= 1

    def test_empty_diagnostics(self):
        diag = CompressionDiagnostics()
        assert not diag.satisfies_contraction()
        assert diag.mean_energy_kept == 0.0
