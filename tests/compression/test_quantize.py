"""FP16 / QSGD quantisers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.quantize import FP16Quantizer, QSGDQuantizer
from repro.utils.seeding import new_rng


class TestFP16:
    def test_roundtrip_close(self, rng):
        x = rng.normal(size=1000)
        back = FP16Quantizer().roundtrip(x)
        np.testing.assert_allclose(back, x, rtol=1e-3, atol=1e-4)

    def test_wire_bytes_are_two_per_element(self, rng):
        x = rng.normal(size=1000)
        q = FP16Quantizer().encode(x)
        assert q.nbytes == 2 * x.size

    def test_dtype_restored(self, rng):
        x = rng.normal(size=10).astype(np.float64)
        assert FP16Quantizer().roundtrip(x).dtype == np.float64


class TestQSGD:
    def test_roundtrip_bounded_error(self, rng):
        x = rng.normal(size=500)
        back = QSGDQuantizer(levels=255).roundtrip(x, rng=rng)
        # Per-coordinate error bounded by norm / levels.
        bound = np.linalg.norm(x) / 255 + 1e-12
        assert np.max(np.abs(back - x)) <= bound * 1.0 + 1e-9

    def test_unbiased(self):
        rng = new_rng(0)
        x = rng.normal(size=32)
        quant = QSGDQuantizer(levels=8)
        acc = np.zeros_like(x)
        trials = 4000
        for _ in range(trials):
            acc += quant.roundtrip(x, rng=rng)
        np.testing.assert_allclose(acc / trials, x, atol=0.05)

    def test_zero_vector(self, rng):
        x = np.zeros(16)
        back = QSGDQuantizer().roundtrip(x, rng=rng)
        np.testing.assert_array_equal(back, x)

    def test_levels_validation(self):
        with pytest.raises(ValueError):
            QSGDQuantizer(levels=0)

    @given(seed=st.integers(0, 50), levels=st.sampled_from([1, 4, 16, 255]))
    @settings(max_examples=30, deadline=None)
    def test_signs_preserved(self, seed, levels):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=64)
        back = QSGDQuantizer(levels=levels).roundtrip(x, rng=rng)
        nonzero = back != 0
        assert np.all(np.sign(back[nonzero]) == np.sign(x[nonzero]))
