"""Random-k sparsification."""

import numpy as np
import pytest

from repro.compression.randomk import RandomK
from repro.utils.seeding import new_rng


class TestRandomK:
    def test_exactly_k_unique(self, rng):
        sv = RandomK().select(rng.normal(size=200), 20, rng=rng)
        assert sv.nnz == 20
        assert len(np.unique(sv.indices)) == 20

    def test_unscaled_values_match_source(self, rng):
        x = rng.normal(size=100)
        sv = RandomK(scale=False).select(x, 10, rng=rng)
        np.testing.assert_array_equal(sv.values, x[sv.indices])

    def test_scaled_is_unbiased(self):
        # E[densify(randomk_scaled(x))] == x: average many draws.
        rng = new_rng(0)
        x = rng.normal(size=64)
        comp = RandomK(scale=True)
        acc = np.zeros_like(x)
        trials = 3000
        for _ in range(trials):
            acc += comp.select(x, 8, rng=rng).to_dense()
        np.testing.assert_allclose(acc / trials, x, atol=0.15)

    def test_k_zero(self, rng):
        assert RandomK().select(rng.normal(size=10), 0, rng=rng).nnz == 0

    def test_k_out_of_range(self, rng):
        with pytest.raises(ValueError):
            RandomK().select(rng.normal(size=10), 11, rng=rng)

    def test_different_draws_differ(self):
        x = new_rng(0).normal(size=1000)
        comp = RandomK()
        rng = new_rng(1)
        a = comp.select(x, 50, rng=rng).indices
        b = comp.select(x, 50, rng=rng).indices
        assert not np.array_equal(a, b)
