"""MSTopK (Algorithm 1) — the paper's core operator.

Key guarantees tested:

* **exactness of k** — always returns exactly ``k`` entries (Algorithm
  2's fixed-size All-Gather depends on it), property-tested;
* **head inclusion** — every element with ``|x| >= thres1`` is selected,
  so the approximation differs from exact top-k only inside the
  ``[thres2, thres1)`` band;
* **high recall** on well-behaved gradients;
* graceful handling of the degenerate distributions the paper's
  pseudo-code ignores (constants, ties, tiny inputs).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.exact_topk import exact_threshold, topk_argpartition
from repro.compression.mstopk import (
    MSTopK,
    mstopk_select,
    mstopk_threshold_search,
)
from repro.utils.seeding import new_rng


class TestExactK:
    @given(
        d=st.integers(1, 3000),
        density_pct=st.integers(1, 100),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=80, deadline=None)
    def test_returns_exactly_k(self, d, density_pct, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=d)
        k = max(1, (d * density_pct) // 100)
        sv = mstopk_select(x, k, rng=rng)
        assert sv.nnz == k
        # All indices unique and in range.
        assert len(np.unique(sv.indices)) == k

    def test_k_zero(self, rng):
        sv = mstopk_select(rng.normal(size=100), 0)
        assert sv.nnz == 0

    def test_k_equals_d(self, rng):
        x = rng.normal(size=64)
        sv = mstopk_select(x, 64)
        assert sv.nnz == 64
        np.testing.assert_allclose(sv.to_dense(), x)

    def test_k_out_of_range(self, rng):
        with pytest.raises(ValueError):
            mstopk_select(rng.normal(size=10), 11)
        with pytest.raises(ValueError):
            mstopk_select(rng.normal(size=10), -1)


class TestApproximationQuality:
    def test_values_are_original_entries(self, rng):
        x = rng.normal(size=500)
        sv = mstopk_select(x, 25, rng=rng)
        np.testing.assert_array_equal(sv.values, x[sv.indices])

    def test_head_elements_always_included(self, rng):
        x = rng.normal(size=2000)
        k = 40
        search = mstopk_threshold_search(np.abs(x), k)
        sv = mstopk_select(x, k, rng=rng)
        selected = set(sv.indices.tolist())
        if search.thres1 > 0:
            head = np.flatnonzero(np.abs(x) >= search.thres1)
            if head.size <= k:
                assert set(head.tolist()) <= selected

    def test_high_recall_on_gaussian(self, rng):
        x = rng.normal(size=20_000)
        k = 200
        approx = set(mstopk_select(x, k, rng=rng).indices.tolist())
        exact = set(topk_argpartition(x, k).indices.tolist())
        recall = len(approx & exact) / k
        assert recall > 0.7, f"recall {recall} too low"

    def test_selected_mass_close_to_exact(self, rng):
        # The L1 mass captured must be close to the exact top-k mass.
        x = rng.normal(size=20_000)
        k = 200
        approx_mass = np.abs(mstopk_select(x, k, rng=rng).values).sum()
        exact_mass = np.abs(topk_argpartition(x, k).values).sum()
        assert approx_mass >= 0.9 * exact_mass

    def test_more_samplings_never_hurt_much(self, rng):
        x = rng.normal(size=10_000)
        k = 100
        exact = set(topk_argpartition(x, k).indices.tolist())
        recall_10 = len(
            set(mstopk_select(x, k, n_samplings=10, rng=new_rng(0)).indices.tolist())
            & exact
        )
        recall_40 = len(
            set(mstopk_select(x, k, n_samplings=40, rng=new_rng(0)).indices.tolist())
            & exact
        )
        assert recall_40 >= recall_10 - 5


class TestDegenerateInputs:
    def test_constant_vector(self):
        x = np.full(100, 3.0)
        sv = mstopk_select(x, 10)
        assert sv.nnz == 10
        np.testing.assert_array_equal(sv.values, np.full(10, 3.0))

    def test_zero_vector(self):
        sv = mstopk_select(np.zeros(50), 5)
        assert sv.nnz == 5

    def test_one_hot_vector(self):
        x = np.zeros(100)
        x[42] = 7.0
        sv = mstopk_select(x, 1)
        assert sv.nnz == 1
        assert 42 in sv.indices

    def test_heavy_ties(self):
        x = np.concatenate([np.full(50, 2.0), np.full(50, 1.0)])
        sv = mstopk_select(x, 10)
        assert sv.nnz == 10
        # All selected magnitudes must be 2.0 (the larger tie group).
        np.testing.assert_array_equal(np.abs(sv.values), np.full(10, 2.0))

    def test_negative_values_selected_by_magnitude(self):
        x = np.array([0.1, -5.0, 0.2, 4.0, -0.3])
        sv = mstopk_select(x, 2)
        assert set(sv.indices.tolist()) == {1, 3}

    def test_tiny_input(self):
        sv = mstopk_select(np.array([1.0]), 1)
        assert sv.nnz == 1

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            mstopk_select(np.zeros((3, 3)), 2)


class TestThresholdSearch:
    def test_brackets_exact_threshold(self, rng):
        x = np.abs(rng.normal(size=5000))
        k = 50
        search = mstopk_threshold_search(x, k)
        thres = exact_threshold(x, k)
        # thres1 selects at most k elements; thres2 selects more than k.
        if search.thres1 > 0:
            assert search.k1 <= k
            assert int(np.count_nonzero(x >= search.thres1)) <= k
        if search.thres2 > 0:
            assert search.k2 > k
            assert int(np.count_nonzero(x >= search.thres2)) > k
            # thres2 undershoots the exact threshold; thres1 brackets it
            # from the other side up to tie granularity.
            assert search.thres2 <= thres
            assert search.thres2 < search.thres1 or search.thres1 == 0

    def test_invalid_samplings(self):
        with pytest.raises(ValueError):
            mstopk_threshold_search(np.abs(np.random.default_rng(0).normal(size=10)), 2, 0)


class TestCompressorInterface:
    def test_select_density(self, rng):
        comp = MSTopK()
        sv = comp.select_density(rng.normal(size=1000), 0.01, rng=rng)
        assert sv.nnz == 10

    def test_repr(self):
        assert "30" in repr(MSTopK(30))

    def test_invalid_n_samplings(self):
        with pytest.raises(ValueError):
            MSTopK(0)

    def test_deterministic_given_same_rng_seed(self, rng):
        x = rng.normal(size=4000)
        a = mstopk_select(x, 40, rng=new_rng(5))
        b = mstopk_select(x, 40, rng=new_rng(5))
        np.testing.assert_array_equal(a.indices, b.indices)
