"""DGC double-sampling selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.dgc import DGCTopK
from repro.compression.exact_topk import topk_argpartition
from repro.utils.seeding import new_rng


class TestDGC:
    @given(d=st.integers(10, 2000), seed=st.integers(0, 40))
    @settings(max_examples=50, deadline=None)
    def test_returns_exactly_k(self, d, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=d)
        k = max(1, d // 20)
        sv = DGCTopK(sample_fraction=0.2).select(x, k, rng=rng)
        assert sv.nnz == k
        assert len(np.unique(sv.indices)) == k

    def test_good_recall_with_large_sample(self, rng):
        x = rng.normal(size=10_000)
        k = 100
        approx = set(
            DGCTopK(sample_fraction=0.3).select(x, k, rng=new_rng(1)).indices.tolist()
        )
        exact = set(topk_argpartition(x, k).indices.tolist())
        assert len(approx & exact) / k > 0.7

    def test_k_zero_and_full(self, rng):
        x = rng.normal(size=50)
        assert DGCTopK().select(x, 0, rng=rng).nnz == 0
        assert DGCTopK().select(x, 50, rng=rng).nnz == 50

    def test_fallback_on_undershoot(self):
        # A vector with one giant element and a tiny sample makes the
        # threshold estimate overshoot; DGC must still return k entries.
        rng = new_rng(3)
        x = np.ones(1000) * 0.001
        x[1] = 100.0
        sv = DGCTopK(sample_fraction=0.01).select(x, 10, rng=rng)
        assert sv.nnz == 10
        assert 1 in sv.indices  # the giant element must be found

    def test_validation(self):
        with pytest.raises(ValueError):
            DGCTopK(sample_fraction=0.0)
        with pytest.raises(ValueError):
            DGCTopK(sample_fraction=1.5)
        with pytest.raises(ValueError):
            DGCTopK(headroom=0.5)

    def test_values_match_source(self, rng):
        x = rng.normal(size=500)
        sv = DGCTopK(sample_fraction=0.2).select(x, 20, rng=rng)
        np.testing.assert_array_equal(sv.values, x[sv.indices])
