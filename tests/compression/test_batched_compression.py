"""Batched compression is bit-identical to the per-shard scalar paths.

Covers the multi-shard MSTopK threshold search / selection, the batched
exact top-k, the base-class fallback used by non-vectorised compressors,
batched error feedback, and the regression for the old
``thres1 == 0.0`` "unset" sentinel (frozen-layer / all-zero gradients).
"""

import numpy as np
import pytest

from repro.compression.base import TopKCompressor
from repro.compression.dgc import DGCTopK
from repro.compression.error_feedback import ErrorFeedback
from repro.compression.exact_topk import ExactTopK
from repro.compression.mstopk import (
    MSTopK,
    mstopk_select,
    mstopk_select_batch,
    mstopk_threshold_search,
    mstopk_threshold_search_batch,
)
from repro.compression.randomk import RandomK
from repro.utils.seeding import new_rng


def _shards(rng, sizes):
    return [rng.standard_normal(s) for s in sizes]


class TestBatchedThresholdSearch:
    def test_matches_scalar_search_exactly(self):
        rng = np.random.default_rng(0)
        shards = _shards(rng, (431, 431, 100, 37, 1000))
        ks = [22, 5, 10, 3, 100]
        mags = [np.abs(s) for s in shards]
        batch = mstopk_threshold_search_batch(mags, ks)
        for mag, k, got in zip(mags, ks, batch):
            assert got == mstopk_threshold_search(mag, k)

    def test_unequal_lengths_never_perturb_results(self):
        # Padding must not leak into counts or the per-shard mean/max.
        rng = np.random.default_rng(1)
        shards = _shards(rng, (100, 999))
        mags = [np.abs(s) for s in shards]
        batch = mstopk_threshold_search_batch(mags, [10, 50])
        assert batch[0] == mstopk_threshold_search(mags[0], 10)
        assert batch[1] == mstopk_threshold_search(mags[1], 50)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            mstopk_threshold_search_batch([np.abs(np.ones(4))], [1], 0)
        with pytest.raises(ValueError):
            mstopk_threshold_search_batch([np.abs(np.ones(4))], [1, 2])
        with pytest.raises(ValueError):
            mstopk_threshold_search_batch([np.abs(np.ones(4))], [5])
        assert mstopk_threshold_search_batch([], []) == []


class TestSentinelRegression:
    """The old code used ``thres1 == 0.0`` to mean "never bracketed"."""

    def test_all_zero_gradient_with_k_equal_d_brackets(self):
        # A frozen layer's shard: every sampled threshold is 0.0 and
        # selects all d elements.  With k == d that IS a valid bracket
        # (k1 = d at thres1 = 0.0); the sentinel made it look unset.
        search = mstopk_threshold_search(np.zeros(32), 32)
        assert search.found1
        assert search.k1 == 32
        assert search.thres1 == 0.0

    def test_all_zero_gradient_with_k_below_d_reports_unset(self):
        search = mstopk_threshold_search(np.zeros(32), 8)
        assert not search.found1
        assert search.k1 == 0

    def test_frozen_layer_select_returns_exactly_k(self):
        rng = new_rng(0)
        sv = mstopk_select(np.zeros(50), 7, rng=rng)
        assert sv.nnz == 7
        assert len(np.unique(sv.indices)) == 7
        np.testing.assert_array_equal(sv.values, np.zeros(7))

    def test_frozen_layer_batch_matches_scalar_and_rng_stream(self):
        shards = [np.zeros(50), np.full(60, 2.5), np.zeros(10)]
        ks = [7, 6, 10]
        ra, rb = new_rng(3), new_rng(3)
        scalar = [mstopk_select(x, k, rng=ra) for x, k in zip(shards, ks)]
        batch = mstopk_select_batch(shards, ks, rng=rb)
        for a, b in zip(scalar, batch):
            np.testing.assert_array_equal(a.indices, b.indices)
            np.testing.assert_array_equal(a.values, b.values)
        assert ra.integers(0, 1 << 30) == rb.integers(0, 1 << 30)


class TestBatchedSelect:
    @pytest.mark.parametrize("compressor", [MSTopK(), ExactTopK(), ExactTopK(method="sort"), DGCTopK(), RandomK()])
    def test_select_batch_matches_sequential(self, compressor):
        rng_data = np.random.default_rng(5)
        mat = rng_data.standard_normal((8, 300))
        ra, rb = new_rng(11), new_rng(11)
        scalar = [compressor.select(row, 15, rng=ra) for row in mat]
        batch = compressor.select_batch(mat, 15, rng=rb)
        for a, b in zip(scalar, batch):
            np.testing.assert_array_equal(np.sort(a.indices), np.sort(b.indices))
            np.testing.assert_array_equal(a.indices, b.indices)
            np.testing.assert_array_equal(a.values, b.values)
        # The batched path must consume the rng stream identically.
        assert ra.integers(0, 1 << 30) == rb.integers(0, 1 << 30)

    def test_unequal_shards_and_edge_ks(self):
        rng_data = np.random.default_rng(6)
        shards = _shards(rng_data, (40, 41, 12))
        ks = [0, 41, 5]
        ra, rb = new_rng(2), new_rng(2)
        scalar = [mstopk_select(x, k, rng=ra) for x, k in zip(shards, ks)]
        batch = mstopk_select_batch(shards, ks, rng=rb)
        for a, b in zip(scalar, batch):
            np.testing.assert_array_equal(a.indices, b.indices)
            np.testing.assert_array_equal(a.values, b.values)

    def test_base_class_validation(self):
        comp = MSTopK()
        with pytest.raises(ValueError):
            comp.select_batch(np.zeros((2, 4)), [1])
        with pytest.raises(ValueError):
            comp.select_batch(np.zeros((2, 4)), [1, 9])
        with pytest.raises(ValueError):
            comp.select_batch([np.zeros((2, 2))], [1])

    def test_exact_topk_batch_is_argpartition_rowwise(self):
        mat = np.random.default_rng(7).standard_normal((5, 200))
        comp = ExactTopK()
        batch = comp.select_batch(mat, 9)
        for row, sv in zip(mat, batch):
            reference = comp.select(row, 9)
            np.testing.assert_array_equal(sv.indices, reference.indices)
            np.testing.assert_array_equal(sv.values, reference.values)


class TestBatchedErrorFeedback:
    def test_apply_and_update_match_scalar_over_steps(self):
        comp = ExactTopK()
        ef_scalar, ef_batch = ErrorFeedback(), ErrorFeedback()
        rng_data = np.random.default_rng(8)
        for _ in range(4):
            mat = rng_data.standard_normal((5, 64))
            corrected_scalar = np.stack(
                [ef_scalar.apply(r, mat[r]) for r in range(5)]
            )
            corrected_batch = ef_batch.apply_batch(range(5), mat)
            np.testing.assert_array_equal(corrected_scalar, corrected_batch)
            sents = [comp.select(corrected_scalar[r], 6) for r in range(5)]
            for r in range(5):
                ef_scalar.update(r, corrected_scalar[r], sents[r])
            ef_batch.update_batch(range(5), corrected_batch, sents)
            assert list(ef_scalar.keys()) == list(ef_batch.keys())
            for r in range(5):
                np.testing.assert_array_equal(
                    ef_scalar.residual(r), ef_batch.residual(r)
                )

    def test_scaled_values_keep_difference(self):
        # RandomK transmits scaled values; the residual must keep the
        # difference exactly as the scalar rule does.
        ef_scalar, ef_batch = ErrorFeedback(), ErrorFeedback()
        comp = RandomK()
        mat = np.random.default_rng(9).standard_normal((3, 32))
        ra, rb = new_rng(4), new_rng(4)
        sents_a = [comp.select(mat[r], 4, rng=ra) for r in range(3)]
        sents_b = comp.select_batch(mat, 4, rng=rb)
        for r in range(3):
            ef_scalar.update(r, mat[r], sents_a[r])
        ef_batch.update_batch(range(3), mat, sents_b)
        for r in range(3):
            np.testing.assert_array_equal(ef_scalar.residual(r), ef_batch.residual(r))

    def test_validation(self):
        ef = ErrorFeedback()
        with pytest.raises(ValueError):
            ef.apply_batch([0, 1], np.zeros(4))
        with pytest.raises(ValueError):
            ef.update_batch([0], np.zeros((2, 4)), [])


def test_custom_compressor_inherits_batch_loop():
    class FirstK(TopKCompressor):
        name = "first-k"

        def select(self, x, k, *, rng=None):
            x = self._validate(x, k)
            from repro.collectives.sparse import SparseVector

            idx = np.arange(k, dtype=np.int64)
            return SparseVector(x[idx], idx, x.size)

    comp = FirstK()
    out = comp.select_batch(np.arange(12.0).reshape(3, 4), 2)
    assert [sv.nnz for sv in out] == [2, 2, 2]
    np.testing.assert_array_equal(out[1].values, [4.0, 5.0])
