"""Exact top-k: the sort and argpartition paths must agree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.exact_topk import (
    ExactTopK,
    exact_threshold,
    naive_topk_sort,
    topk_argpartition,
)


class TestAgreement:
    @given(d=st.integers(1, 500), seed=st.integers(0, 50))
    @settings(max_examples=60, deadline=None)
    def test_same_selected_magnitude_mass(self, d, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=d)
        k = max(1, d // 10)
        by_sort = naive_topk_sort(x, k)
        by_part = topk_argpartition(x, k)
        assert by_sort.nnz == by_part.nnz == k
        # Selected |value| multisets must be identical (ties may swap
        # indices but not magnitudes).
        np.testing.assert_allclose(
            np.sort(np.abs(by_sort.values)), np.sort(np.abs(by_part.values))
        )

    def test_sort_orders_by_descending_magnitude(self, rng):
        x = rng.normal(size=100)
        sv = naive_topk_sort(x, 10)
        mags = np.abs(sv.values)
        assert np.all(mags[:-1] >= mags[1:])


class TestEdgeCases:
    def test_k_zero(self, rng):
        assert naive_topk_sort(rng.normal(size=10), 0).nnz == 0
        assert topk_argpartition(rng.normal(size=10), 0).nnz == 0

    def test_k_equals_d(self, rng):
        x = rng.normal(size=10)
        sv = topk_argpartition(x, 10)
        np.testing.assert_allclose(np.sort(sv.to_dense()), np.sort(x))

    def test_k_out_of_range(self, rng):
        with pytest.raises(ValueError):
            topk_argpartition(rng.normal(size=5), 6)
        with pytest.raises(ValueError):
            naive_topk_sort(rng.normal(size=5), -1)

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            topk_argpartition(np.zeros((2, 2)), 1)


class TestExactThreshold:
    def test_known_values(self):
        x = np.array([5.0, -3.0, 1.0, -4.0, 2.0])
        assert exact_threshold(x, 1) == 5.0
        assert exact_threshold(x, 2) == 4.0
        assert exact_threshold(x, 5) == 1.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            exact_threshold(np.zeros(3), 0)

    def test_threshold_selects_at_least_k(self, rng):
        x = rng.normal(size=1000)
        k = 50
        thres = exact_threshold(x, k)
        assert np.count_nonzero(np.abs(x) >= thres) >= k


class TestCompressorClass:
    def test_method_validation(self):
        with pytest.raises(ValueError):
            ExactTopK("bogus")

    def test_sort_name_is_nn_topk(self):
        assert ExactTopK("sort").name == "nn.topk"

    def test_select_dispatch(self, rng):
        x = rng.normal(size=100)
        a = ExactTopK("sort").select(x, 5)
        b = ExactTopK("argpartition").select(x, 5)
        np.testing.assert_allclose(
            np.sort(np.abs(a.values)), np.sort(np.abs(b.values))
        )
