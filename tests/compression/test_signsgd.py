"""EF-SignSGD compression (related-work baseline)."""

import numpy as np
import pytest

from repro.compression.signsgd import (
    SignCompressed,
    SignSGDCompressor,
    signsgd_allreduce,
)
from repro.utils.seeding import new_rng


class TestWireFormat:
    def test_roundtrip_magnitude(self, rng):
        comp = SignSGDCompressor()
        g = rng.normal(size=100)
        msg = comp.compress("w", g)
        dense = msg.to_dense()
        # The reconstruction has the right signs and a single magnitude.
        nonzero = dense != 0
        assert np.all(np.sign(dense[nonzero]) == np.sign(g[nonzero]))
        assert len(np.unique(np.abs(dense[nonzero]))) == 1

    def test_compression_ratio(self):
        msg = SignCompressed(np.ones(3200, dtype=np.int8), 1.0, 3200)
        # 1 bit/coordinate + 4-byte scale vs 4 bytes/coordinate FP32.
        assert msg.nbytes_on_wire == 3200 // 8 + 4
        assert msg.nbytes_on_wire < 3200 * 4 / 30


class TestErrorFeedback:
    def test_residual_is_quantisation_error(self, rng):
        comp = SignSGDCompressor()
        g = rng.normal(size=64)
        msg = comp.compress("w", g)
        np.testing.assert_allclose(msg.to_dense() + comp.residual("w"), g, atol=1e-12)

    def test_mass_conservation_over_iterations(self, rng):
        comp = SignSGDCompressor()
        total_grad = np.zeros(80)
        total_sent = np.zeros(80)
        for _ in range(10):
            g = rng.normal(size=80)
            total_grad += g
            total_sent += comp.compress("w", g).to_dense()
        np.testing.assert_allclose(
            total_sent + comp.residual("w"), total_grad, atol=1e-9
        )

    def test_reset(self, rng):
        comp = SignSGDCompressor()
        comp.compress("w", rng.normal(size=8))
        comp.reset()
        assert comp.residual("w") is None


class TestAggregation:
    def test_allreduce_averages_scaled_signs(self, rng):
        comps = [SignSGDCompressor() for _ in range(4)]
        grads = [rng.normal(size=32) for _ in range(4)]
        messages = [c.compress(0, g) for c, g in zip(comps, grads)]
        total = signsgd_allreduce(messages)
        expected = np.sum([m.to_dense() for m in messages], axis=0)
        np.testing.assert_allclose(total, expected)

    def test_length_mismatch(self, rng):
        a = SignSGDCompressor().compress("w", rng.normal(size=8))
        b = SignSGDCompressor().compress("w", rng.normal(size=9))
        with pytest.raises(ValueError):
            signsgd_allreduce([a, b])

    def test_empty_group(self):
        with pytest.raises(ValueError):
            signsgd_allreduce([])


class TestConvergenceSignal:
    def test_ef_signsgd_minimises_quadratic(self):
        # EF-SignSGD on f(w) = ||w||^2/2: must converge to ~0 (the EF
        # theorem this scheme motivated).
        rng = new_rng(0)
        comp = SignSGDCompressor()
        w = rng.normal(size=16) * 5
        lr = 0.05
        for _ in range(600):
            g = w.copy()  # gradient of the quadratic
            step = comp.compress("w", g).to_dense()
            w -= lr * step
        assert np.linalg.norm(w) < 1.0
