"""Error feedback — the residual algebra sparsified SGD depends on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.error_feedback import ErrorFeedback
from repro.compression.exact_topk import topk_argpartition
from repro.compression.mstopk import mstopk_select
from repro.utils.seeding import new_rng


class TestResidualAlgebra:
    def test_first_apply_is_identity(self, rng):
        ef = ErrorFeedback()
        g = rng.normal(size=10)
        np.testing.assert_array_equal(ef.apply("w", g), g)

    def test_corrected_equals_sent_plus_residual(self, rng):
        # The EF invariant: corrected = densify(sent) + residual.
        ef = ErrorFeedback()
        g = rng.normal(size=100)
        corrected = ef.apply(0, g)
        sent = topk_argpartition(corrected, 10)
        ef.update(0, corrected, sent)
        np.testing.assert_allclose(
            sent.to_dense() + ef.residual(0), corrected, atol=1e-12
        )

    @given(d=st.integers(4, 200), seed=st.integers(0, 30))
    @settings(max_examples=40, deadline=None)
    def test_mass_conservation_over_iterations(self, d, seed):
        # Over T iterations: sum(gradients) = sum(sent) + final residual.
        rng = np.random.default_rng(seed)
        ef = ErrorFeedback()
        k = max(1, d // 10)
        total_grad = np.zeros(d)
        total_sent = np.zeros(d)
        for _ in range(8):
            g = rng.normal(size=d)
            total_grad += g
            corrected = ef.apply("w", g)
            sent = topk_argpartition(corrected, k)
            ef.update("w", corrected, sent)
            total_sent += sent.to_dense()
        np.testing.assert_allclose(
            total_sent + ef.residual("w"), total_grad, atol=1e-9
        )

    def test_residual_bounded_for_topk(self):
        # With top-k + EF the residual norm stays bounded (contraction
        # property of top-k, Stich et al. 2018).
        rng = new_rng(0)
        ef = ErrorFeedback()
        d, k = 256, 64  # keep 25% -> strong contraction
        norms = []
        for _ in range(200):
            g = rng.normal(size=d)
            corrected = ef.apply("w", g)
            sent = topk_argpartition(corrected, k)
            ef.update("w", corrected, sent)
            norms.append(float(np.linalg.norm(ef.residual("w"))))
        # Bounded: the last 100 norms don't trend upward vs the middle.
        assert np.mean(norms[-50:]) < 3.0 * np.mean(norms[50:100]) + 1.0

    def test_works_with_mstopk(self, rng):
        ef = ErrorFeedback()
        g = rng.normal(size=500)
        corrected = ef.apply("w", g)
        sent = mstopk_select(corrected, 25, rng=rng)
        ef.update("w", corrected, sent)
        np.testing.assert_allclose(
            sent.to_dense() + ef.residual("w"), corrected, atol=1e-12
        )


class TestBookkeeping:
    def test_independent_keys(self, rng):
        ef = ErrorFeedback()
        for key in ("a", "b"):
            g = rng.normal(size=10)
            corrected = ef.apply(key, g)
            ef.update(key, corrected, topk_argpartition(corrected, 2))
        assert len(ef) == 2
        assert set(ef.keys()) == {"a", "b"}

    def test_reset_single_key(self, rng):
        ef = ErrorFeedback()
        g = rng.normal(size=10)
        ef.update("a", g, topk_argpartition(g, 2))
        ef.reset("a")
        assert ef.residual("a") is None

    def test_reset_all(self, rng):
        ef = ErrorFeedback()
        g = rng.normal(size=10)
        ef.update("a", g, topk_argpartition(g, 2))
        ef.update("b", g, topk_argpartition(g, 2))
        ef.reset()
        assert len(ef) == 0

    def test_shape_mismatch_rejected(self, rng):
        ef = ErrorFeedback()
        g = rng.normal(size=10)
        ef.update("w", g, topk_argpartition(g, 2))
        with pytest.raises(ValueError):
            ef.apply("w", rng.normal(size=11))

    def test_sent_length_mismatch_rejected(self, rng):
        ef = ErrorFeedback()
        g = rng.normal(size=10)
        with pytest.raises(ValueError):
            ef.update("w", g, topk_argpartition(rng.normal(size=12), 2))

    def test_total_norm(self, rng):
        ef = ErrorFeedback()
        assert ef.total_norm() == 0.0
        g = rng.normal(size=10)
        ef.update("w", g, topk_argpartition(g, 10))  # all sent -> residual 0
        assert ef.total_norm() == pytest.approx(0.0, abs=1e-12)
