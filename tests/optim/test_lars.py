"""LARS: the layer-wise rate of paper Eq. (11)."""

import numpy as np
import pytest

from repro.optim.lars import LARS, lars_coefficient, lars_coefficients


class TestCoefficient:
    def test_eq11_value(self):
        w = np.array([3.0, 4.0])  # ||w|| = 5
        g = np.array([0.6, 0.8])  # ||g|| = 1
        lam = lars_coefficient(
            w, g, eta=0.1, trust_coefficient=0.001, weight_decay=0.01
        )
        expected = 0.001 * 0.1 * 5.0 / (1.0 + 0.01 * 5.0)
        assert lam == pytest.approx(expected)

    def test_zero_norm_falls_back_to_eta(self):
        assert lars_coefficient(np.zeros(3), np.ones(3), eta=0.2) == 0.2
        assert lars_coefficient(np.ones(3), np.zeros(3), eta=0.2) == 0.2

    def test_vectorised(self, rng):
        weights = [rng.normal(size=4) for _ in range(5)]
        grads = [rng.normal(size=4) for _ in range(5)]
        lam = lars_coefficients(weights, grads, eta=0.1)
        assert lam.shape == (5,)
        assert np.all(lam > 0)

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            lars_coefficients([rng.normal(size=2)], [], eta=0.1)


class TestOptimizer:
    def test_skip_keywords(self, rng):
        opt = LARS(lr=0.1)
        params = {"fc.weight": rng.normal(size=4), "fc.bias": rng.normal(size=2)}
        grads = {k: rng.normal(size=v.shape) for k, v in params.items()}
        rates = opt.learning_rates(params, grads)
        assert rates["fc.bias"] == 0.1  # biases use the global rate
        assert rates["fc.weight"] != 0.1

    def test_bn_params_skipped(self, rng):
        opt = LARS(lr=0.1)
        params = {"layer1.bn1.gamma": rng.normal(size=4)}
        grads = {"layer1.bn1.gamma": rng.normal(size=4)}
        assert opt.learning_rates(params, grads)["layer1.bn1.gamma"] == 0.1

    def test_step_moves_params(self, rng):
        opt = LARS(lr=0.1)
        params = {"w.weight": rng.normal(size=8)}
        before = params["w.weight"].copy()
        opt.step(params, {"w.weight": rng.normal(size=8)})
        assert not np.array_equal(params["w.weight"], before)

    def test_precomputed_rates_used(self, rng):
        # Injecting PTO-computed rates must match recomputing them.
        params_a = {"w.weight": rng.normal(size=8)}
        params_b = {k: v.copy() for k, v in params_a.items()}
        grads = {"w.weight": rng.normal(size=8)}
        opt_a, opt_b = LARS(lr=0.1), LARS(lr=0.1)
        rates = opt_a.learning_rates(params_a, grads)
        opt_a.step(params_a, grads)
        opt_b.step(params_b, grads, precomputed_rates=rates)
        np.testing.assert_allclose(params_a["w.weight"], params_b["w.weight"])

    def test_reduces_quadratic_loss(self):
        opt = LARS(lr=1.0, trust_coefficient=0.1, weight_decay=0.0)
        params = {"w.weight": np.array([5.0, -4.0])}
        for _ in range(300):
            opt.step(params, {"w.weight": params["w.weight"].copy()})
        assert np.linalg.norm(params["w.weight"]) < 1.0
