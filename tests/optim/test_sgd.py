"""Momentum SGD update rule."""

import numpy as np
import pytest

from repro.optim.sgd import SGD


class TestVanilla:
    def test_plain_sgd_step(self):
        opt = SGD(lr=0.1, momentum=0.0)
        params = {"w": np.array([1.0, 2.0])}
        opt.step(params, {"w": np.array([1.0, -1.0])})
        np.testing.assert_allclose(params["w"], [0.9, 2.1])

    def test_lr_override(self):
        opt = SGD(lr=0.1, momentum=0.0)
        params = {"w": np.array([1.0])}
        opt.step(params, {"w": np.array([1.0])}, lr=0.5)
        np.testing.assert_allclose(params["w"], [0.5])

    def test_weight_decay(self):
        opt = SGD(lr=0.1, momentum=0.0, weight_decay=0.1)
        params = {"w": np.array([1.0])}
        opt.step(params, {"w": np.array([0.0])})
        np.testing.assert_allclose(params["w"], [1.0 - 0.1 * 0.1])


class TestMomentum:
    def test_velocity_accumulates(self):
        opt = SGD(lr=1.0, momentum=0.5)
        params = {"w": np.array([0.0])}
        g = {"w": np.array([1.0])}
        opt.step(params, g)  # v=1, w=-1
        np.testing.assert_allclose(params["w"], [-1.0])
        opt.step(params, g)  # v=1.5, w=-2.5
        np.testing.assert_allclose(params["w"], [-2.5])

    def test_nesterov_differs(self):
        plain = SGD(lr=0.1, momentum=0.9)
        nesterov = SGD(lr=0.1, momentum=0.9, nesterov=True)
        p1 = {"w": np.array([1.0])}
        p2 = {"w": np.array([1.0])}
        g = {"w": np.array([1.0])}
        plain.step(p1, g)
        nesterov.step(p2, g)
        assert p1["w"][0] != p2["w"][0]

    def test_state_size_and_reset(self):
        opt = SGD(momentum=0.9)
        params = {"a": np.zeros(3), "b": np.zeros(5)}
        grads = {"a": np.ones(3), "b": np.ones(5)}
        opt.step(params, grads)
        assert opt.state_size() == 8
        opt.reset()
        assert opt.state_size() == 0


class TestValidation:
    def test_hyperparameter_validation(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)
        with pytest.raises(ValueError):
            SGD(momentum=1.0)
        with pytest.raises(ValueError):
            SGD(weight_decay=-1)

    def test_missing_gradient(self):
        opt = SGD()
        with pytest.raises(KeyError):
            opt.step({"w": np.zeros(2)}, {})

    def test_shape_mismatch(self):
        opt = SGD()
        with pytest.raises(ValueError):
            opt.step({"w": np.zeros(2)}, {"w": np.zeros(3)})

    def test_converges_on_quadratic(self):
        # Minimise ||w||^2 / 2: gradient = w.
        opt = SGD(lr=0.1, momentum=0.9)
        params = {"w": np.array([5.0, -3.0])}
        for _ in range(200):
            opt.step(params, {"w": params["w"].copy()})
        assert np.linalg.norm(params["w"]) < 1e-3
