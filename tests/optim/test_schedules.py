"""LR and resolution schedules."""

import pytest

from repro.optim.schedules import (
    PolynomialDecay,
    ProgressiveResizeSchedule,
    ResolutionPhase,
    StepDecay,
    WarmupSchedule,
)


class TestWarmup:
    def test_linear_ramp(self):
        sched = WarmupSchedule(peak=1.0, warmup_epochs=10)
        assert sched.lr(0) == 0.0
        assert sched.lr(5) == pytest.approx(0.5)
        assert sched.lr(10) == 1.0
        assert sched.lr(50) == 1.0

    def test_delegates_after_warmup(self):
        sched = WarmupSchedule(
            peak=1.0, warmup_epochs=5, after=StepDecay(base=1.0, milestones=(10,))
        )
        assert sched.lr(14) == 1.0  # 9 epochs after warmup: before milestone
        assert sched.lr(16) == pytest.approx(0.1)

    def test_negative_epoch(self):
        with pytest.raises(ValueError):
            WarmupSchedule(peak=1.0, warmup_epochs=5).lr(-1)


class TestDecays:
    def test_step_decay_milestones(self):
        sched = StepDecay(base=0.8, milestones=(30, 60, 80), factor=0.1)
        assert sched.lr(29) == pytest.approx(0.8)
        assert sched.lr(30) == pytest.approx(0.08)
        assert sched.lr(85) == pytest.approx(0.0008)

    def test_polynomial_decay(self):
        sched = PolynomialDecay(base=1.0, total_epochs=10, power=2.0)
        assert sched.lr(0) == 1.0
        assert sched.lr(5) == pytest.approx(0.25)
        assert sched.lr(10) == 0.0
        assert sched.lr(20) == 0.0  # clamped

    def test_polynomial_floor(self):
        sched = PolynomialDecay(base=1.0, total_epochs=10, floor=0.1)
        assert sched.lr(10) == pytest.approx(0.1)


class TestProgressiveResize:
    def test_dawnbench_schedule_matches_paper(self):
        # §5.6: 13 @ 96², 11 @ 128², 3 @ 224², 1 @ 288² (bs 128).
        sched = ProgressiveResizeSchedule.dawnbench_28_epoch()
        assert sched.total_epochs == 28
        assert sched.phase_at(0).resolution == 96
        assert sched.phase_at(12).resolution == 96
        assert sched.phase_at(13).resolution == 128
        assert sched.phase_at(24).resolution == 224
        assert sched.phase_at(27).resolution == 288
        assert sched.phase_at(27).local_batch == 128

    def test_scheme_switching(self):
        # MSTopK for the warmup phase, dense afterwards (§5.6).
        sched = ProgressiveResizeSchedule.dawnbench_28_epoch()
        assert sched.phase_at(5).comm_scheme == "mstopk"
        assert sched.phase_at(20).comm_scheme == "2dtar"

    def test_epoch_out_of_range(self):
        sched = ProgressiveResizeSchedule.dawnbench_28_epoch()
        with pytest.raises(IndexError):
            sched.phase_at(28)
        with pytest.raises(ValueError):
            sched.phase_at(-1)

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            ResolutionPhase(0, 96, 256, "mstopk")
        with pytest.raises(ValueError):
            ResolutionPhase(1, 0, 256, "mstopk")
        with pytest.raises(ValueError):
            ResolutionPhase(1, 96, 0, "mstopk")
