"""LAMB optimizer."""

import numpy as np
import pytest

from repro.optim.lamb import LAMB


class TestLamb:
    def test_step_moves_params(self, rng):
        opt = LAMB(lr=0.01)
        params = {"w": rng.normal(size=8)}
        before = params["w"].copy()
        opt.step(params, {"w": rng.normal(size=8)})
        assert not np.array_equal(params["w"], before)

    def test_converges_on_quadratic(self):
        opt = LAMB(lr=0.05, weight_decay=0.0)
        params = {"w": np.array([5.0, -3.0, 2.0])}
        for _ in range(500):
            opt.step(params, {"w": params["w"].copy()})
        assert np.linalg.norm(params["w"]) < 0.5

    def test_trust_ratio(self, rng):
        opt = LAMB()
        w = np.array([3.0, 4.0])
        u = np.array([1.0, 0.0])
        assert opt.trust_ratio(w, u) == pytest.approx(5.0)

    def test_trust_ratio_degenerate(self):
        opt = LAMB()
        assert opt.trust_ratio(np.zeros(2), np.ones(2)) == 1.0

    def test_precomputed_ratios_match_internal(self, rng):
        params_a = {"w": rng.normal(size=8)}
        params_b = {k: v.copy() for k, v in params_a.items()}
        grads = {"w": rng.normal(size=8)}
        opt_a, opt_b = LAMB(lr=0.01), LAMB(lr=0.01)
        updates = opt_a.updates(params_a, grads)
        ratios = {"w": opt_a.trust_ratio(params_a["w"], updates["w"])}
        opt_a.step(params_a, grads)
        opt_b.step(params_b, grads, precomputed_ratios=ratios)
        np.testing.assert_allclose(params_a["w"], params_b["w"])

    def test_updates_is_pure(self, rng):
        opt = LAMB()
        params = {"w": rng.normal(size=4)}
        grads = {"w": rng.normal(size=4)}
        u1 = opt.updates(params, grads)
        u2 = opt.updates(params, grads)
        np.testing.assert_allclose(u1["w"], u2["w"])

    def test_validation(self):
        with pytest.raises(ValueError):
            LAMB(lr=0.0)
        with pytest.raises(ValueError):
            LAMB(betas=(1.0, 0.9))
        opt = LAMB()
        with pytest.raises(ValueError):
            opt.step({"w": np.zeros(2)}, {"w": np.zeros(3)})
