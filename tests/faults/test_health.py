"""Node-health ledger: suspicion decay, quarantine, probe-back.

The ledger is pure arithmetic over FaultLog-style observations — no
RNG, no wall clock — so its timeline depends only on the fault plan.
That property is what lets every placement policy compared against one
storm see the identical quarantine/probe schedule.
"""

import pytest

from repro.faults.health import (
    KIND_WEIGHTS,
    HealthPolicy,
    NodeHealthLedger,
)


def _ledger(threshold=2.0, half_life=300.0, cooldown=180.0):
    return NodeHealthLedger(
        HealthPolicy(
            quarantine_threshold=threshold,
            half_life_s=half_life,
            probe_cooldown_s=cooldown,
        )
    )


class TestSuspicion:
    def test_unknown_node_is_clean(self):
        assert _ledger().suspicion(3, now=100.0) == 0.0

    def test_observation_adds_kind_weight(self):
        ledger = _ledger()
        ledger.observe(0, 10.0, "node-crash")
        assert ledger.suspicion(0, 10.0) == pytest.approx(
            KIND_WEIGHTS["node-crash"]
        )
        ledger.observe(1, 10.0, "nic-degrade")
        assert ledger.suspicion(1, 10.0) == pytest.approx(
            KIND_WEIGHTS["nic-degrade"]
        )

    def test_unknown_kind_uses_default_weight(self):
        ledger = _ledger()
        ledger.observe(0, 0.0, "made-up-fault")
        assert 0 < ledger.suspicion(0, 0.0) < KIND_WEIGHTS["node-crash"]

    def test_score_halves_every_half_life(self):
        ledger = _ledger(half_life=100.0)
        ledger.observe(0, 0.0, "node-crash")
        assert ledger.suspicion(0, 100.0) == pytest.approx(0.5)
        assert ledger.suspicion(0, 200.0) == pytest.approx(0.25)

    def test_crashes_weigh_more_than_nic_flaps(self):
        assert KIND_WEIGHTS["node-crash"] > KIND_WEIGHTS["nic-degrade"]
        assert KIND_WEIGHTS["gray-net"] > KIND_WEIGHTS["nic-degrade"]


class TestQuarantine:
    def test_single_event_below_threshold_no_quarantine(self):
        ledger = _ledger(threshold=1.5)
        assert ledger.observe(0, 10.0, "node-crash") is False
        assert not ledger.is_quarantined(0)

    def test_repeat_offender_quarantined(self):
        ledger = _ledger(threshold=1.5, half_life=300.0)
        assert ledger.observe(0, 10.0, "node-crash") is False
        assert ledger.observe(0, 40.0, "node-crash") is True
        assert ledger.is_quarantined(0)
        assert ledger.quarantined_nodes() == [0]

    def test_observe_while_quarantined_does_not_requarantine(self):
        ledger = _ledger(threshold=1.5)
        ledger.observe(0, 0.0, "node-crash")
        assert ledger.observe(0, 10.0, "node-crash") is True
        assert ledger.observe(0, 20.0, "node-crash") is False  # already in
        assert ledger.is_quarantined(0)

    def test_decay_can_prevent_quarantine(self):
        ledger = _ledger(threshold=1.5, half_life=50.0)
        ledger.observe(0, 0.0, "node-crash")
        # Ten half-lives later the first strike is forgotten.
        assert ledger.observe(0, 500.0, "node-crash") is False


class TestProbe:
    def test_probe_due_after_cooldown(self):
        ledger = _ledger(threshold=1.5, cooldown=200.0)
        ledger.observe(0, 0.0, "node-crash")
        ledger.observe(0, 10.0, "node-crash")
        assert ledger.due_probes(now=100.0) == []
        assert ledger.next_boundary(now=100.0) == pytest.approx(210.0)
        assert ledger.due_probes(now=210.0) == [0]

    def test_probe_unquarantines_and_halves_score(self):
        ledger = _ledger(threshold=1.5, half_life=1e9, cooldown=100.0)
        ledger.observe(0, 0.0, "node-crash")
        ledger.observe(0, 0.0, "node-crash")
        assert ledger.is_quarantined(0)
        score = ledger.probe(0, 100.0)
        assert not ledger.is_quarantined(0)
        assert score == pytest.approx(1.0)  # 2.0 decayed (negligibly), halved
        assert ledger.suspicion(0, 100.0) == pytest.approx(1.0)

    def test_probed_node_can_requarantine(self):
        ledger = _ledger(threshold=1.5, half_life=1e9, cooldown=100.0)
        ledger.observe(0, 0.0, "node-crash")
        ledger.observe(0, 0.0, "node-crash")
        ledger.probe(0, 100.0)
        assert ledger.observe(0, 110.0, "node-crash") is True

    def test_next_boundary_none_without_pending_probes(self):
        ledger = _ledger()
        assert ledger.next_boundary(0.0) is None
        ledger.observe(0, 0.0, "node-crash")  # below threshold
        assert ledger.next_boundary(0.0) is None


class TestSummaryAndValidation:
    def test_summary_counts_lifecycle(self):
        ledger = _ledger(threshold=1.5, cooldown=50.0)
        ledger.observe(0, 0.0, "node-crash")
        ledger.observe(0, 10.0, "node-crash")
        for node in ledger.due_probes(70.0):
            ledger.probe(node, 70.0)
        ledger.observe(1, 80.0, "straggler")
        summary = ledger.summary()
        assert summary["quarantines"] == 1
        assert summary["probes"] == 1
        assert summary["quarantined_end"] == []
        assert 0 in summary["suspects"] and 1 in summary["suspects"]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"quarantine_threshold": 0.0},
            {"quarantine_threshold": -1.0},
            {"half_life_s": 0.0},
            {"probe_cooldown_s": -1.0},
        ],
    )
    def test_bad_policy_rejected(self, kwargs):
        params = {
            "quarantine_threshold": 2.0,
            "half_life_s": 300.0,
            "probe_cooldown_s": 180.0,
        }
        params.update(kwargs)
        with pytest.raises(ValueError):
            NodeHealthLedger(HealthPolicy(**params))

    def test_timeline_is_deterministic(self):
        # Same observations, same answers — no RNG, no wall clock.
        def play():
            ledger = _ledger(threshold=1.5)
            out = []
            for t, kind in ((5.0, "node-crash"), (20.0, "gray-net"),
                            (60.0, "node-crash")):
                out.append(ledger.observe(0, t, kind))
            out.append(round(ledger.suspicion(0, 90.0), 12))
            out.append(ledger.next_boundary(90.0))
            return out

        assert play() == play()


class TestThresholdBoundary:
    """The exact-threshold and mid-window edges the brain reads through."""

    def test_score_exactly_at_threshold_quarantines(self):
        # Two same-instant crashes on a 2.0 threshold: score == threshold
        # exactly.  The non-quarantine path is score < threshold, so the
        # boundary itself quarantines.
        ledger = _ledger(threshold=2.0 * KIND_WEIGHTS["node-crash"])
        assert ledger.observe(0, 10.0, "node-crash") is False
        assert ledger.observe(0, 10.0, "node-crash") is True
        assert ledger.is_quarantined(0)

    def test_score_epsilon_below_threshold_does_not(self):
        ledger = _ledger(threshold=2.0 * KIND_WEIGHTS["node-crash"] + 1e-9)
        ledger.observe(0, 10.0, "node-crash")
        assert ledger.observe(0, 10.0, "node-crash") is False
        assert not ledger.is_quarantined(0)

    def test_no_probe_due_during_active_window(self):
        ledger = _ledger(threshold=1.0, cooldown=100.0)
        ledger.observe(0, 0.0, "node-crash")
        assert ledger.is_quarantined(0)
        assert ledger.due_probes(99.9) == []
        assert ledger.due_probes(100.0) == [0]

    def test_observation_during_window_keeps_probe_schedule(self):
        # A fault landing mid-quarantine raises suspicion but must not
        # push the probe out (or re-count a quarantine).
        ledger = _ledger(threshold=1.0, cooldown=100.0)
        ledger.observe(0, 0.0, "node-crash")
        boundary = ledger.next_boundary(1.0)
        assert ledger.observe(0, 50.0, "gray-net") is False
        assert ledger.next_boundary(51.0) == boundary
        assert ledger.quarantines == 1

    def test_probe_at_exact_due_time_halves_and_releases(self):
        ledger = _ledger(threshold=1.0, half_life=1e9, cooldown=100.0)
        ledger.observe(0, 0.0, "node-crash")
        score = ledger.probe(0, 100.0)
        assert not ledger.is_quarantined(0)
        assert score == pytest.approx(KIND_WEIGHTS["node-crash"] / 2.0)


class TestConfigLoadBoundary:
    """Health knobs are rejected at config load, before any simulation."""

    def test_zero_half_life_rejected_by_plan(self):
        from repro.faults.plan import FaultPlan
        from repro.faults.registry import FaultError

        with pytest.raises(FaultError, match="health_half_life must be > 0"):
            FaultPlan.from_config(
                {"events": [{"kind": "node-crash", "at": 10}],
                 "health_half_life": 0},
                seed=7,
                target="sched",
            )

    def test_zero_half_life_rejected_by_sched_config(self):
        # Surfaces as FaultError (a ValueError the CLI maps to one
        # ``error:`` line + exit 2), raised while the section validates.
        from repro.api.config import SchedConfig

        data = {
            "name": "hl",
            "cluster": {"num_nodes": 2},
            "jobs": [{"name": "a", "iterations": 10}],
            "faults": {
                "events": [{"kind": "node-crash", "at": 10}],
                "health_half_life": 0.0,
            },
        }
        with pytest.raises(ValueError, match="health_half_life must be > 0"):
            SchedConfig.from_dict(data)
