"""Fault storms through the multi-tenant scheduler.

Crashes evict tenants through the same membership machinery churn uses:
survivors above the job's ``min_nodes`` shrink in place; below the
floor the job is requeued and its recovery latency closes when the
scheduler re-places it.  ``duration > 0`` on a crash schedules node
repair.  Everything replays bit-identically on the process backend.
"""

import dataclasses
import json

from repro.api.config import (
    ClusterConfig,
    ExecConfig,
    FaultConfig,
    FaultsConfig,
    JobConfig,
    SchedConfig,
)
from repro.api.facade import run_sched
from repro.sched.scheduler import payload_for_reports


def _sched_config(events, *, num_nodes=4, jobs=None, policies=("bin-pack",),
                  seed=11, exec_section=None):
    return SchedConfig(
        name="fault-sched-unit",
        seed=seed,
        cluster=ClusterConfig(
            instance="tencent", num_nodes=num_nodes, gpus_per_node=2
        ),
        policies=tuple(policies),
        jobs=tuple(jobs) if jobs else (
            JobConfig(
                name="prod",
                profile="resnet50",
                scheme="mstopk",
                density=0.01,
                iterations=200,
                min_nodes=1,
                max_nodes=3,
            ),
        ),
        faults=FaultsConfig(events=tuple(events)),
        **({"exec": exec_section} if exec_section else {}),
    )


def _entries(report, phase, kind=None):
    return [
        e
        for e in report.fault_log["entries"]
        if e["phase"] == phase and (kind is None or e["kind"] == kind)
    ]


class TestCrashRecovery:
    def test_crash_shrinks_survivors_above_floor(self):
        reports = run_sched(_sched_config(
            [FaultConfig(kind="node-crash", at=40)]
        ))
        report = reports["bin-pack"]
        log = report.fault_log
        assert log["injected"] == 1 and log["recovered"] == 1
        (recover,) = _entries(report, "recover", "node-crash")
        assert recover["detail"]["action"] == "shrunk to surviving nodes"
        assert log["lost_iterations"] > 0  # progress rolled back to a checkpoint
        assert report.summary()["jobs_done"] == 1

    def test_crash_with_duration_repairs_the_node(self):
        reports = run_sched(_sched_config(
            [FaultConfig(kind="node-crash", at=10, duration=20)]
        ))
        report = reports["bin-pack"]
        (repair,) = _entries(report, "repair")
        assert repair["t"] >= 30  # crash at 10 + repair after 20 virtual s
        assert report.fault_log["nodes_down_end"] == []

    def test_permanent_crash_leaves_node_down(self):
        reports = run_sched(_sched_config(
            [FaultConfig(kind="node-crash", at=40)]
        ))
        report = reports["bin-pack"]
        assert len(report.fault_log["nodes_down_end"]) == 1
        assert _entries(report, "repair") == []

    def test_below_min_nodes_requeues_then_replaces(self):
        # Two nodes, the job needs both; an AZ reclaim takes half the
        # cluster, dropping the job below its floor.  With a repair
        # scheduled, the job is re-placed and the recovery latency is the
        # requeue-to-replacement gap.
        config = _sched_config(
            [FaultConfig(kind="az-reclaim", at=30, duration=50, fraction=0.5)],
            num_nodes=2,
            jobs=[
                JobConfig(
                    name="wide",
                    profile="resnet50",
                    scheme="mstopk",
                    density=0.01,
                    iterations=150,
                    min_nodes=2,
                    max_nodes=2,
                ),
            ],
        )
        report = run_sched(config)["bin-pack"]
        log = report.fault_log
        assert log["requeues"] == 1
        assert log["injected"] == 1 and log["recovered"] == 1
        (recover,) = _entries(report, "recover", "az-reclaim")
        assert recover["detail"]["action"] == "requeued job re-placed"
        assert recover["detail"]["latency_s"] >= 50  # waits out the repair
        assert report.summary()["jobs_done"] == 1

    def test_crash_on_empty_cluster_absorbed(self):
        # Crash an explicit node that is already down: first crash takes
        # it, the second finds nothing up at that address.
        reports = run_sched(_sched_config(
            [
                FaultConfig(kind="node-crash", at=10, node=0),
                FaultConfig(kind="node-crash", at=20, node=0),
            ]
        ))
        report = reports["bin-pack"]
        log = report.fault_log
        assert log["injected"] == 2  # attempts; the second one hit nothing
        assert log["absorbed"] == 1
        (absorb,) = _entries(report, "absorb")
        assert absorb["t"] == 20.0


class TestPerformanceFaults:
    def test_nic_degrade_stretches_makespan(self):
        base = run_sched(_sched_config([]))["bin-pack"]
        degraded = run_sched(_sched_config(
            [FaultConfig(kind="nic-degrade", at=10, duration=200, scale=0.3)]
        ))["bin-pack"]
        assert degraded.makespan_s > base.makespan_s
        assert degraded.summary()["jobs_done"] == base.summary()["jobs_done"]

    def test_straggler_stretches_makespan(self):
        base = run_sched(_sched_config([]))["bin-pack"]
        slowed = run_sched(_sched_config(
            [FaultConfig(kind="straggler", at=10, duration=200, stretch=3.0)]
        ))["bin-pack"]
        assert slowed.makespan_s > base.makespan_s

    def test_gray_net_inject_logs_link_telemetry(self):
        report = run_sched(_sched_config(
            [FaultConfig(kind="gray-net", at=10, duration=100, node=1,
                         loss_rate=0.1, jitter=0.5)]
        ))["bin-pack"]
        (inject,) = _entries(report, "inject", "gray-net")
        detail = inject["detail"]
        assert detail["node"] == 1
        assert detail["loss_rate"] == 0.1
        assert detail["jitter"] == 0.5
        assert detail["jitter_dist"] == "exp"
        # Realised stretch: >= the pure retransmission floor 1/(1-loss).
        assert detail["stretch"] >= 1.0 / (1.0 - 0.1) - 1e-9
        (detect,) = _entries(report, "detect", "gray-net")
        assert detect["detail"]["source"] == "per-link loss/latency telemetry"

    def test_gray_net_stretches_makespan_and_recovers(self):
        base = run_sched(_sched_config([]))["bin-pack"]
        gray = run_sched(_sched_config(
            [FaultConfig(kind="gray-net", at=10, duration=25, node=0,
                         loss_rate=0.2, jitter=0.5)]
        ))["bin-pack"]
        assert gray.makespan_s > base.makespan_s
        assert gray.summary()["jobs_done"] == base.summary()["jobs_done"]
        (recover,) = _entries(gray, "recover", "gray-net")
        assert recover["detail"]["action"] == "link health restored"

    def test_no_faults_attribute_means_no_fault_log(self):
        config = dataclasses.replace(_sched_config([]), faults=None)
        report = run_sched(config)["bin-pack"]
        assert report.fault_log is None
        payload = payload_for_reports([report])
        assert "faults" not in payload["meta"]


def _flap_train_config(policies=("bin-pack",)):
    """A crash flap train that quarantines node 0, then probes it back."""
    config = _sched_config(
        [FaultConfig(kind="node-crash", at=10, duration=15, node=0,
                     repeat=3, period=30)],
        policies=policies,
        jobs=[
            JobConfig(
                name="prod",
                profile="resnet50",
                scheme="mstopk",
                density=0.01,
                iterations=600,  # long enough to outlive the probe at ~100 s
                min_nodes=1,
                max_nodes=3,
            ),
        ],
    )
    return dataclasses.replace(
        config,
        faults=dataclasses.replace(
            config.faults,
            quarantine_threshold=1.5,
            health_half_life=300.0,
            probe_cooldown=60.0,
        ),
    )


class TestHealthLedgerLifecycle:
    def test_flap_train_quarantines_then_probes_back(self):
        report = run_sched(_flap_train_config())["bin-pack"]
        (quarantine,) = _entries(report, "quarantine")
        assert quarantine["detail"]["node"] == 0
        assert quarantine["detail"]["suspicion"] >= 1.5
        probe_at = quarantine["detail"]["probe_at"]
        assert probe_at == quarantine["t"] + 60.0
        probes = _entries(report, "probe")
        assert probes and probes[0]["kind"] == "health"
        assert probes[0]["fault_id"] == -1
        assert probes[0]["t"] >= probe_at
        assert probes[0]["detail"]["action"] == (
            "cool-down elapsed; node returned to candidate pool"
        )
        health = report.fault_log["health"]
        assert health["quarantines"] == 1
        assert health["probes"] >= 1
        assert health["quarantined_end"] == []

    def test_health_timeline_identical_across_policies(self):
        # The ledger is driven by the fault plan alone, so every policy
        # sees the same quarantine/probe schedule — that is what makes
        # the policy comparison fair.
        reports = run_sched(
            _flap_train_config(policies=("bin-pack", "spread", "fault-aware"))
        )
        timelines = {
            policy: [
                (e["phase"], e["t"], e.get("detail", {}).get("node"))
                for e in report.fault_log["entries"]
                if e["phase"] in ("quarantine", "probe")
            ]
            for policy, report in reports.items()
        }
        assert len({json.dumps(t) for t in timelines.values()}) == 1
        healths = {
            json.dumps(r.fault_log["health"], sort_keys=True)
            for r in reports.values()
        }
        assert len(healths) == 1

    def test_health_summary_present_without_storm(self):
        report = run_sched(_sched_config([]))["bin-pack"]
        health = report.fault_log["health"]
        assert health["quarantines"] == 0
        assert health["suspects"] == []


class TestSchedDeterminism:
    def test_every_policy_sees_the_same_storm(self):
        reports = run_sched(_sched_config(
            [FaultConfig(kind="node-crash", at=40, duration=60)],
            policies=("bin-pack", "spread"),
        ))
        logs = {p: r.fault_log for p, r in reports.items()}
        assert all(log["injected"] == 1 for log in logs.values())
        payload = payload_for_reports(list(reports.values()))
        assert set(payload["meta"]["faults"]) == {"bin-pack", "spread"}

    def test_process_backend_parity(self):
        events = [
            FaultConfig(kind="nic-degrade", at=20, duration=40, scale=0.4),
            FaultConfig(kind="node-crash", at=50, duration=80),
            FaultConfig(kind="straggler", at=30, duration=40, stretch=2.0),
        ]
        serial = run_sched(_sched_config(events, policies=("bin-pack", "spread")))
        pooled = run_sched(_sched_config(
            events,
            policies=("bin-pack", "spread"),
            exec_section=ExecConfig(backend="process", jobs=2),
        ))
        for policy in serial:
            a, b = serial[policy], pooled[policy]
            assert json.dumps(a.fault_log, sort_keys=True) == json.dumps(
                b.fault_log, sort_keys=True
            )
            assert a.summary() == b.summary()

    def test_repeat_runs_byte_identical(self):
        config = _sched_config(
            [FaultConfig(kind="az-reclaim", at=30, duration=50, fraction=0.5)]
        )
        first = run_sched(config)["bin-pack"].fault_log
        second = run_sched(config)["bin-pack"].fault_log
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
        assert first["digest"] == second["digest"]
