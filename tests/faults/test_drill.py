"""End-to-end fault drills through the facade: recovery + determinism.

The ISSUE acceptance bar lives here: a seeded fault-storm drill (seven
composed fault kinds, including the unwarned crash, the fail-slow disk,
the gray link, and the AZ-wide reclaim) completes with recovery on
every registered scheme; the gray-failure policy drill shows
``fault-aware`` beating every fault-blind baseline on goodput under the
storm; and the event log + BENCH payload are byte-identical across
repeat runs and ``--jobs`` widths.
"""

import json
import pathlib

import pytest

from repro.api.config import RunConfig, SchedConfig
from repro.api.facade import run
from repro.api.registry import SCHEMES
from repro.faults.drill import (
    DRILL_COLUMNS,
    GRAY_STORM_EVENTS,
    GRAY_STORM_HEALTH,
    POLICY_DRILL_COLUMNS,
    POLICY_DRILL_POLICIES,
    STORM_EVENTS,
    drill_config,
    drills_payload,
    gray_storm_config,
    run_drills,
    run_policy_drills,
)

REPO = pathlib.Path(__file__).resolve().parent.parent.parent


def _config(events, *, num_nodes=4, min_nodes=1, iterations=40,
            checkpoint_every=10, seed=7, checkpoint_timeout=None):
    faults = {"events": events}
    if checkpoint_timeout is not None:
        faults["checkpoint_timeout"] = checkpoint_timeout
    return RunConfig.from_dict(
        {
            "name": "fault-unit",
            "seed": seed,
            "cluster": {
                "instance": "tencent",
                "num_nodes": num_nodes,
                "gpus_per_node": 2,
            },
            "comm": {"scheme": "mstopk", "density": 0.05},
            "train": {"model": "mlp-tiny", "num_samples": 256, "local_batch": 8},
            "elastic": {
                "iterations": iterations,
                "schedule": "none",
                "checkpoint_every": checkpoint_every,
                "min_nodes": min_nodes,
            },
            "faults": faults,
        }
    )


def _phases(report, phase):
    return [e for e in report.faults["entries"] if e["phase"] == phase]


class TestStormRecoveryEveryScheme:
    def test_storm_composes_required_kinds(self):
        kinds = {event["kind"] for event in STORM_EVENTS}
        # >= 3 kinds composed, the unwarned crash and AZ reclaim included.
        assert {"node-crash", "az-reclaim"} <= kinds
        assert len(kinds) >= 3

    def test_every_registered_scheme_recovers(self):
        results = run_drills()
        assert [r["scheme"] for r in results] == SCHEMES.available()
        for result in results:
            assert result["injected"] == len(STORM_EVENTS), result
            assert result["recovered"] == result["injected"], result
            assert result["absorbed"] == 0, result
            assert result["corrupt_checkpoints"] >= 1, result
            assert result["lost_iterations"] > 0, result
            assert result["detect_recover_s"] > 0, result
            # Storm goodput is real but strictly below the baseline.
            assert 0 < result["storm_goodput"] < result["baseline_goodput"]

    def test_drill_scores_latency_and_goodput_vs_baseline(self):
        payload = drills_payload(schemes=["mstopk"])
        assert payload["columns"] == DRILL_COLUMNS
        (row,) = payload["rows"]
        idx = {c: i for i, c in enumerate(DRILL_COLUMNS)}
        assert 0 < row[idx["goodput_ratio"]] < 1
        assert row[idx["storm_usd_per_kiter"]] > row[idx["baseline_usd_per_kiter"]]
        assert payload["meta"]["digests"]["mstopk"] == row[idx["log_digest"]]


class TestDeterminism:
    def test_repeat_runs_byte_identical(self):
        config = drill_config("topk", storm=True)
        first, second = run(config), run(config)
        canon = lambda r: json.dumps(r.faults, sort_keys=True)  # noqa: E731
        assert canon(first) == canon(second)
        assert json.dumps(first.bench_payload(), sort_keys=True) == json.dumps(
            second.bench_payload(), sort_keys=True
        )

    def test_log_timestamps_are_virtual(self):
        report = run(drill_config("dense", storm=True))
        total = report.elastic_run.total_seconds
        for entry in report.faults["entries"]:
            assert 0 <= entry["t"] <= total + 1e-9

    def test_payload_embeds_log_and_summary(self):
        report = run(drill_config("dense", storm=True))
        meta = report.bench_payload()["meta"]
        assert meta["faults"]["summary"]["injected"] == len(STORM_EVENTS)
        assert meta["faults"]["entries"] == report.faults["entries"]
        summary = report.summary
        assert summary["fault_injections"] == len(STORM_EVENTS)
        assert summary["fault_recoveries"] == len(STORM_EVENTS)

    def test_no_faults_section_leaves_payload_unchanged(self):
        report = run(drill_config("dense", storm=False))
        assert report.faults is None
        assert "faults" not in report.bench_payload()["meta"]
        assert "fault_injections" not in report.summary


class TestInjectionEdgeCases:
    def test_crash_at_min_nodes_floor_absorbed(self):
        config = _config(
            [{"kind": "node-crash", "at": 15}], num_nodes=2, min_nodes=2
        )
        report = run(config)
        assert report.faults["summary"]["absorbed"] == 1
        assert report.faults["summary"]["recovered"] == 0
        assert report.elastic_run.rollbacks == 0

    def test_explicit_node_crash_hits_that_node(self):
        config = _config([{"kind": "node-crash", "at": 15, "node": 2}])
        report = run(config)
        (inject,) = _phases(report, "inject")
        assert inject["detail"]["nodes"] == [2]
        (recover,) = _phases(report, "recover")
        assert recover["detail"]["lost_iterations"] == 5  # rolled back to ckpt(10)

    def test_corrupt_initial_checkpoint_forces_scratch_restart(self):
        # The trainer checkpoints at iteration 0, so an early corruption
        # hits that initial snapshot; the crash that follows finds no
        # intact slot and restarts from scratch.
        config = _config(
            [
                {"kind": "checkpoint-corrupt", "at": 5},
                {"kind": "node-crash", "at": 7},
            ]
        )
        report = run(config)
        assert report.elastic_run.corrupt_checkpoints == 1
        assert report.elastic_run.lost_iterations == 7

    def test_all_checkpoints_corrupt_restarts_from_scratch(self):
        # Damage both double-buffered slots, then crash: the rebuild walks
        # the stack, rejects both via CRC, and restarts from iteration 0.
        config = _config(
            [
                {"kind": "checkpoint-corrupt", "at": 12},
                {"kind": "checkpoint-corrupt", "at": 22},
                {"kind": "node-crash", "at": 25},
            ]
        )
        report = run(config)
        assert report.elastic_run.corrupt_checkpoints == 2
        assert report.elastic_run.lost_iterations == 25
        assert report.elastic_run.useful_iterations == 40

    def test_nic_window_expires_with_recover_entry(self):
        config = _config(
            [{"kind": "nic-degrade", "at": 10, "duration": 8, "scale": 0.5}]
        )
        report = run(config)
        (recover,) = _phases(report, "recover")
        assert recover["kind"] == "nic-degrade"
        assert recover["detail"]["action"] == "bandwidth restored"
        assert recover["t"] > 0

    def test_straggler_slows_iterations_in_window(self):
        base = run(_config([], seed=3))

        slowed = run(
            _config(
                [{"kind": "straggler", "at": 10, "duration": 20, "stretch": 3.0}],
                seed=3,
            )
        )
        assert slowed.elastic_run.total_seconds > base.elastic_run.total_seconds
        assert slowed.elastic_run.useful_iterations == base.elastic_run.useful_iterations

    def test_gray_net_slows_run_and_logs_link_detail(self):
        base = run(_config([], seed=3))
        gray = run(
            _config(
                [{"kind": "gray-net", "at": 10, "duration": 20,
                  "loss_rate": 0.1, "jitter": 0.5}],
                seed=3,
            )
        )
        assert gray.elastic_run.total_seconds > base.elastic_run.total_seconds
        assert gray.elastic_run.useful_iterations == base.elastic_run.useful_iterations
        (inject,) = _phases(gray, "inject")
        assert inject["detail"]["loss_rate"] == 0.1
        assert inject["detail"]["jitter"] == 0.5
        (recover,) = _phases(gray, "recover")
        assert recover["detail"]["action"] == "link health restored"

    def test_gray_net_digest_differs_from_nic_degrade(self):
        # Same window, both slow communication — but they are distinct
        # fault kinds with distinct log streams, not aliases.
        gray = run(
            _config(
                [{"kind": "gray-net", "at": 10, "duration": 20,
                  "loss_rate": 0.3, "jitter": 0.0}],
                seed=3,
            )
        )
        nic = run(
            _config(
                [{"kind": "nic-degrade", "at": 10, "duration": 20, "scale": 0.7}],
                seed=3,
            )
        )
        assert gray.faults["summary"]["digest"] != nic.faults["summary"]["digest"]

    def test_disk_slow_stretches_checkpoint_writes(self):
        base = run(_config([], seed=3))
        slow = run(
            _config(
                [{"kind": "disk-slow", "at": 5, "duration": 30, "stretch": 4.0}],
                seed=3,
            )
        )
        # No budget configured: the writes just take stretch times longer.
        assert slow.elastic_run.total_seconds > base.elastic_run.total_seconds
        assert slow.faults["summary"]["checkpoint_retries"] == 0
        (recover,) = _phases(slow, "recover")
        assert recover["detail"]["action"] == "disk speed restored"

    def test_disk_slow_with_budget_abandons_and_retries(self):
        report = run(
            _config(
                [{"kind": "disk-slow", "at": 5, "duration": 30, "stretch": 6.0}],
                seed=3,
                checkpoint_timeout=4.0,
            )
        )
        summary = report.faults["summary"]
        assert summary["checkpoint_retries"] >= 1
        actions = [
            e["detail"].get("action")
            for e in report.faults["entries"]
            if e["kind"] == "disk-slow"
        ]
        assert "checkpoint write exceeded budget; abandoned" in actions
        assert "retried on fallback slot" in actions


class TestPolicyDrill:
    """The tentpole scorecard: fault-aware vs the fault-blind built-ins."""

    @pytest.fixture(scope="class")
    def results(self):
        return run_policy_drills(seed=7)

    def test_covers_all_four_policies(self, results):
        assert [r["policy"] for r in results] == list(POLICY_DRILL_POLICIES)
        for result in results:
            assert set(POLICY_DRILL_COLUMNS) <= set(result)

    def test_fault_aware_beats_every_fault_blind_baseline(self, results):
        by_policy = {r["policy"]: r for r in results}
        aware = by_policy["fault-aware"]
        for blind in ("bin-pack", "spread", "network-aware"):
            assert aware["storm_goodput"] > by_policy[blind]["storm_goodput"], blind
            assert aware["goodput_ratio"] > by_policy[blind]["goodput_ratio"], blind
            assert aware["usd_per_kiter"] < by_policy[blind]["usd_per_kiter"], blind

    def test_storm_quarantines_the_repeat_offender(self, results):
        expanded = sum(e.get("repeat", 1) for e in GRAY_STORM_EVENTS)
        for result in results:
            assert result["injected"] == expanded
            # The ledger timeline is policy-independent: every policy
            # sees the same flap train and the same quarantine.
            assert result["quarantines"] == 1

    def test_repeat_runs_identical(self, results):
        again = run_policy_drills(seed=7)
        assert json.dumps(again, sort_keys=True) == json.dumps(
            results, sort_keys=True
        )

    def test_payload_embeds_policy_drill(self):
        payload = drills_payload(schemes=["mstopk"])
        drill = payload["meta"]["policy_drill"]
        assert drill["columns"] == list(POLICY_DRILL_COLUMNS)
        assert len(drill["rows"]) == len(POLICY_DRILL_POLICIES)
        assert set(drill["digests"]) == set(POLICY_DRILL_POLICIES)


class TestCommittedGrayStormConfig:
    def test_example_config_matches_generator(self):
        # examples/configs/gray_storm.json is the CLI twin of
        # gray_storm_config(storm=True): drift in either direction breaks
        # the docs walkthrough and the CI smoke gate.
        on_disk = SchedConfig.from_dict(
            json.loads((REPO / "examples" / "configs" / "gray_storm.json").read_text())
        )
        assert on_disk == gray_storm_config(storm=True)

    def test_storm_health_knobs_round_trip(self):
        config = gray_storm_config(storm=True)
        assert config.faults.quarantine_threshold == (
            GRAY_STORM_HEALTH["quarantine_threshold"]
        )
        assert config.faults.health_half_life == GRAY_STORM_HEALTH["health_half_life"]
        assert config.faults.probe_cooldown == GRAY_STORM_HEALTH["probe_cooldown"]

    def test_baseline_variant_has_no_faults(self):
        assert gray_storm_config(storm=False).faults is None


@pytest.mark.parametrize("jobs", [2])
def test_pool_width_invariance_in_process(jobs):
    """ParallelSweeper at any width returns the serial drill bit for bit."""
    from repro.exec.sweeper import ParallelSweeper

    serial = drills_payload(schemes=["dense", "mstopk"])
    pooled = drills_payload(
        schemes=["dense", "mstopk"],
        sweeper=ParallelSweeper("process", jobs=jobs),
    )
    assert json.dumps(serial, sort_keys=True) == json.dumps(pooled, sort_keys=True)
