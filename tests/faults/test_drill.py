"""End-to-end fault drills through the facade: recovery + determinism.

The ISSUE acceptance bar lives here: a seeded fault-storm drill (five
composed fault kinds, including the unwarned crash and the AZ-wide
reclaim) completes with recovery on every registered scheme, and the
event log + BENCH payload are byte-identical across repeat runs and
``--jobs`` widths.
"""

import json

import pytest

from repro.api.config import RunConfig
from repro.api.facade import run
from repro.api.registry import SCHEMES
from repro.faults.drill import (
    DRILL_COLUMNS,
    STORM_EVENTS,
    drill_config,
    drills_payload,
    run_drills,
)


def _config(events, *, num_nodes=4, min_nodes=1, iterations=40,
            checkpoint_every=10, seed=7):
    return RunConfig.from_dict(
        {
            "name": "fault-unit",
            "seed": seed,
            "cluster": {
                "instance": "tencent",
                "num_nodes": num_nodes,
                "gpus_per_node": 2,
            },
            "comm": {"scheme": "mstopk", "density": 0.05},
            "train": {"model": "mlp-tiny", "num_samples": 256, "local_batch": 8},
            "elastic": {
                "iterations": iterations,
                "schedule": "none",
                "checkpoint_every": checkpoint_every,
                "min_nodes": min_nodes,
            },
            "faults": {"events": events},
        }
    )


def _phases(report, phase):
    return [e for e in report.faults["entries"] if e["phase"] == phase]


class TestStormRecoveryEveryScheme:
    def test_storm_composes_required_kinds(self):
        kinds = {event["kind"] for event in STORM_EVENTS}
        # >= 3 kinds composed, the unwarned crash and AZ reclaim included.
        assert {"node-crash", "az-reclaim"} <= kinds
        assert len(kinds) >= 3

    def test_every_registered_scheme_recovers(self):
        results = run_drills()
        assert [r["scheme"] for r in results] == SCHEMES.available()
        for result in results:
            assert result["injected"] == len(STORM_EVENTS), result
            assert result["recovered"] == result["injected"], result
            assert result["absorbed"] == 0, result
            assert result["corrupt_checkpoints"] >= 1, result
            assert result["lost_iterations"] > 0, result
            assert result["detect_recover_s"] > 0, result
            # Storm goodput is real but strictly below the baseline.
            assert 0 < result["storm_goodput"] < result["baseline_goodput"]

    def test_drill_scores_latency_and_goodput_vs_baseline(self):
        payload = drills_payload(schemes=["mstopk"])
        assert payload["columns"] == DRILL_COLUMNS
        (row,) = payload["rows"]
        idx = {c: i for i, c in enumerate(DRILL_COLUMNS)}
        assert 0 < row[idx["goodput_ratio"]] < 1
        assert row[idx["storm_usd_per_kiter"]] > row[idx["baseline_usd_per_kiter"]]
        assert payload["meta"]["digests"]["mstopk"] == row[idx["log_digest"]]


class TestDeterminism:
    def test_repeat_runs_byte_identical(self):
        config = drill_config("topk", storm=True)
        first, second = run(config), run(config)
        canon = lambda r: json.dumps(r.faults, sort_keys=True)  # noqa: E731
        assert canon(first) == canon(second)
        assert json.dumps(first.bench_payload(), sort_keys=True) == json.dumps(
            second.bench_payload(), sort_keys=True
        )

    def test_log_timestamps_are_virtual(self):
        report = run(drill_config("dense", storm=True))
        total = report.elastic_run.total_seconds
        for entry in report.faults["entries"]:
            assert 0 <= entry["t"] <= total + 1e-9

    def test_payload_embeds_log_and_summary(self):
        report = run(drill_config("dense", storm=True))
        meta = report.bench_payload()["meta"]
        assert meta["faults"]["summary"]["injected"] == len(STORM_EVENTS)
        assert meta["faults"]["entries"] == report.faults["entries"]
        summary = report.summary
        assert summary["fault_injections"] == len(STORM_EVENTS)
        assert summary["fault_recoveries"] == len(STORM_EVENTS)

    def test_no_faults_section_leaves_payload_unchanged(self):
        report = run(drill_config("dense", storm=False))
        assert report.faults is None
        assert "faults" not in report.bench_payload()["meta"]
        assert "fault_injections" not in report.summary


class TestInjectionEdgeCases:
    def test_crash_at_min_nodes_floor_absorbed(self):
        config = _config(
            [{"kind": "node-crash", "at": 15}], num_nodes=2, min_nodes=2
        )
        report = run(config)
        assert report.faults["summary"]["absorbed"] == 1
        assert report.faults["summary"]["recovered"] == 0
        assert report.elastic_run.rollbacks == 0

    def test_explicit_node_crash_hits_that_node(self):
        config = _config([{"kind": "node-crash", "at": 15, "node": 2}])
        report = run(config)
        (inject,) = _phases(report, "inject")
        assert inject["detail"]["nodes"] == [2]
        (recover,) = _phases(report, "recover")
        assert recover["detail"]["lost_iterations"] == 5  # rolled back to ckpt(10)

    def test_corrupt_initial_checkpoint_forces_scratch_restart(self):
        # The trainer checkpoints at iteration 0, so an early corruption
        # hits that initial snapshot; the crash that follows finds no
        # intact slot and restarts from scratch.
        config = _config(
            [
                {"kind": "checkpoint-corrupt", "at": 5},
                {"kind": "node-crash", "at": 7},
            ]
        )
        report = run(config)
        assert report.elastic_run.corrupt_checkpoints == 1
        assert report.elastic_run.lost_iterations == 7

    def test_all_checkpoints_corrupt_restarts_from_scratch(self):
        # Damage both double-buffered slots, then crash: the rebuild walks
        # the stack, rejects both via CRC, and restarts from iteration 0.
        config = _config(
            [
                {"kind": "checkpoint-corrupt", "at": 12},
                {"kind": "checkpoint-corrupt", "at": 22},
                {"kind": "node-crash", "at": 25},
            ]
        )
        report = run(config)
        assert report.elastic_run.corrupt_checkpoints == 2
        assert report.elastic_run.lost_iterations == 25
        assert report.elastic_run.useful_iterations == 40

    def test_nic_window_expires_with_recover_entry(self):
        config = _config(
            [{"kind": "nic-degrade", "at": 10, "duration": 8, "scale": 0.5}]
        )
        report = run(config)
        (recover,) = _phases(report, "recover")
        assert recover["kind"] == "nic-degrade"
        assert recover["detail"]["action"] == "bandwidth restored"
        assert recover["t"] > 0

    def test_straggler_slows_iterations_in_window(self):
        base = run(_config([], seed=3))

        slowed = run(
            _config(
                [{"kind": "straggler", "at": 10, "duration": 20, "stretch": 3.0}],
                seed=3,
            )
        )
        assert slowed.elastic_run.total_seconds > base.elastic_run.total_seconds
        assert slowed.elastic_run.useful_iterations == base.elastic_run.useful_iterations


@pytest.mark.parametrize("jobs", [2])
def test_pool_width_invariance_in_process(jobs):
    """ParallelSweeper at any width returns the serial drill bit for bit."""
    from repro.exec.sweeper import ParallelSweeper

    serial = drills_payload(schemes=["dense", "mstopk"])
    pooled = drills_payload(
        schemes=["dense", "mstopk"],
        sweeper=ParallelSweeper("process", jobs=jobs),
    )
    assert json.dumps(serial, sort_keys=True) == json.dumps(pooled, sort_keys=True)
