"""FaultLog: structured, wall-clock-free, canonically serialised."""

import numpy as np
import pytest

from repro.faults.log import PHASES, FaultLog


def _sample_log() -> FaultLog:
    log = FaultLog()
    log.append("inject", t=10.0, kind="node-crash", fault_id=0, target="run",
               nodes=[2])
    log.append("detect", t=10.0, kind="node-crash", fault_id=0, target="run")
    log.append("recover", t=14.5, kind="node-crash", fault_id=0, target="run",
               latency_s=4.5)
    return log


class TestAppend:
    def test_seq_and_rounding(self):
        log = _sample_log()
        entries = log.to_dicts()
        assert [e["seq"] for e in entries] == [0, 1, 2]
        assert entries[0]["detail"] == {"nodes": [2]}
        assert "detail" not in entries[1]

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError, match="unknown log phase"):
            FaultLog().append("explode", t=0, kind="x", fault_id=0, target="run")

    def test_phases_cover_lifecycle(self):
        assert PHASES == (
            "inject", "detect", "recover", "repair", "absorb",
            "quarantine", "probe",
        )

    def test_numpy_scalars_coerced(self):
        log = FaultLog()
        log.append("inject", t=np.float64(1.5), kind="x", fault_id=0,
                   target="run", node=np.int64(3))
        entry = log.to_dicts()[0]
        assert entry["detail"]["node"] == 3
        assert isinstance(entry["detail"]["node"], int)

    def test_non_scalar_detail_fails_loudly(self):
        with pytest.raises(TypeError, match="JSON scalars"):
            FaultLog().append("inject", t=0, kind="x", fault_id=0,
                              target="run", payload=object())

    def test_to_dicts_is_a_copy(self):
        log = _sample_log()
        log.to_dicts()[0]["detail"]["nodes"] = "mutated"
        assert log.to_dicts()[0]["detail"] == {"nodes": [2]}


class TestDigest:
    def test_digest_stable_across_instances(self):
        assert _sample_log().digest() == _sample_log().digest()
        assert len(_sample_log().digest()) == 16

    def test_digest_changes_with_content(self):
        log = _sample_log()
        other = _sample_log()
        other.append("absorb", t=20.0, kind="straggler", fault_id=1, target="run")
        assert log.digest() != other.digest()

    def test_canonical_json_is_compact_and_sorted(self):
        text = _sample_log().to_json()
        assert ": " not in text and ", " not in text
        entry = text[text.index("{"):text.index("}") + 1]
        keys = [k.split('"')[1] for k in entry.split(",")]
        assert keys == sorted(keys)


class TestScoring:
    def test_phase_counts_drop_zeroes(self):
        assert _sample_log().phase_counts() == {
            "inject": 1, "detect": 1, "recover": 1,
        }

    def test_latencies_inject_to_recover(self):
        assert _sample_log().latencies() == {0: 4.5}
        assert _sample_log().mean_latency() == 4.5

    def test_mean_latency_none_when_nothing_recovered(self):
        log = FaultLog()
        log.append("inject", t=1.0, kind="x", fault_id=0, target="run")
        assert log.mean_latency() is None
