"""CLI surface of the fault subsystem: discovery, drills, failure modes.

Every user mistake — unknown fault name, malformed ``faults.*`` --set,
corrupt plan file, faults without an elastic section — must reach the
shell as one actionable ``error:`` line and exit code 2, never a
traceback.
"""

import json
import os
import pathlib
import subprocess
import sys

from repro.api.cli import main
from repro.faults.registry import FAULTS

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
DRILL_CONFIG = REPO / "examples" / "configs" / "fault_drill.json"
GRAY_STORM_CONFIG = REPO / "examples" / "configs" / "gray_storm.json"
SMOKE_CONFIG = REPO / "examples" / "configs" / "smoke.json"


class TestDiscovery:
    def test_list_faults(self, capsys):
        assert main(["list", "faults"]) == 0
        out = capsys.readouterr().out
        for name in FAULTS.available():
            assert name in out
        # This PR's additions, by name (the loop above only proves the
        # registry and the listing agree).
        assert "gray-net" in out and "disk-slow" in out
        assert "aliases:" in out  # e.g. crash, spot-storm

    def test_list_policies_includes_fault_aware(self, capsys):
        assert main(["list", "policies"]) == 0
        out = capsys.readouterr().out
        assert "fault-aware" in out
        assert "health-aware" in out  # its alias

    def test_list_all_includes_faults_group(self, capsys):
        assert main(["list"]) == 0
        assert "faults:" in capsys.readouterr().out


class TestDrillRun:
    def test_drill_config_runs_and_passes_schema(self, capsys):
        assert main(["run", "--config", str(DRILL_CONFIG), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        faults = payload["meta"]["faults"]
        assert faults["summary"]["injected"] == 7
        assert faults["summary"]["recovered"] == 7
        # The fail-slow disk window covers two checkpoint writes, both of
        # which blow the 4 s budget and retry on the fallback slot.
        assert faults["summary"]["checkpoint_retries"] == 2
        phases = {entry["phase"] for entry in faults["entries"]}
        assert {"inject", "detect", "recover"} <= phases
        kinds = {entry["kind"] for entry in faults["entries"]}
        assert {"gray-net", "disk-slow"} <= kinds

    def test_override_adds_faults_to_plain_config(self, capsys):
        # A config with no faults section grows one entirely from --set:
        # the whole-object form for the plan, plus the elastic section the
        # error message recommends.
        assert main([
            "run", "--config", str(SMOKE_CONFIG),
            "--set", 'faults={"events":[{"kind":"crash","at":10}]}',
            "--set", "elastic.schedule=none",
        ]) == 0
        out = capsys.readouterr().out
        assert "fault_recoveries" in out

    def test_override_edits_existing_event(self, capsys):
        # Dotted list indices reach into the plan; aliases canonicalise.
        assert main([
            "run", "--config", str(DRILL_CONFIG),
            "--set", "faults.events.4.kind=crash",
            "--set", "faults.events.4.node=1",
        ]) == 0
        assert "fault_recoveries" in capsys.readouterr().out


class TestJobsWidthInvariance:
    def test_drill_json_bit_identical_across_jobs(self):
        """The ISSUE acceptance bar: --jobs 1 vs --jobs 4, byte for byte."""
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        outputs = []
        for jobs in ("1", "4"):
            proc = subprocess.run(
                [
                    sys.executable, "-m", "repro", "run",
                    "--config", str(DRILL_CONFIG), "--jobs", jobs, "--json",
                ],
                capture_output=True, text=True, timeout=300, env=env,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        digests = json.loads(outputs[0])["meta"]["faults"]["summary"]["digest"]
        assert len(digests) == 16

    def test_gray_storm_sched_bit_identical_across_jobs(self):
        """The committed gray storm: serial vs 4-worker pool, byte for byte."""
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        outputs = []
        for jobs in ("1", "4"):
            proc = subprocess.run(
                [
                    sys.executable, "-m", "repro", "sched",
                    "--config", str(GRAY_STORM_CONFIG), "--jobs", jobs, "--json",
                ],
                capture_output=True, text=True, timeout=300, env=env,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]


class TestFailureModes:
    def test_unknown_fault_name(self, capsys):
        assert main([
            "run", "--config", str(DRILL_CONFIG),
            "--set", "faults.events.0.kind=bogus",
        ]) == 2
        err = capsys.readouterr().err
        assert "unknown fault 'bogus'" in err
        assert "node-crash" in err  # the registered alternatives are listed

    def test_malformed_fault_parameter(self, capsys):
        assert main([
            "run", "--config", str(DRILL_CONFIG),
            "--set", "faults.events.0.scale=2.0",
        ]) == 2
        assert "scale must be in" in capsys.readouterr().err

    def test_unknown_jitter_distribution(self, capsys):
        assert main([
            "run", "--config", str(DRILL_CONFIG),
            "--set", "faults.events.3.jitter_dist=weird",
        ]) == 2
        err = capsys.readouterr().err
        assert "unknown jitter distribution" in err
        assert "exp" in err and "lognormal" in err  # accepted values listed

    def test_out_of_range_loss_rate(self, capsys):
        assert main([
            "run", "--config", str(DRILL_CONFIG),
            "--set", "faults.events.3.loss_rate=1.0",
        ]) == 2
        assert "loss_rate must be in [0, 1)" in capsys.readouterr().err

    def test_negative_quarantine_threshold(self, capsys):
        assert main([
            "sched", "--config", str(GRAY_STORM_CONFIG),
            "--set", "faults.quarantine_threshold=-1",
        ]) == 2
        assert "quarantine_threshold must be > 0" in capsys.readouterr().err

    def test_disk_slow_cannot_target_sched(self, capsys):
        # "disk-slow without checkpointing": the scheduler's closed form
        # has no checkpoint writes, so the kind is rejected at load time.
        assert main([
            "sched", "--config", str(GRAY_STORM_CONFIG),
            "--set", "faults.events.0.kind=disk-slow",
            "--set", "faults.events.0.stretch=4.0",
        ]) == 2
        assert "cannot target" in capsys.readouterr().err

    def test_faults_require_elastic_section(self, capsys):
        assert main([
            "run", "--config", str(SMOKE_CONFIG),
            "--set", 'faults={"events":[{"kind":"crash","at":10}]}',
        ]) == 2
        assert "elastic" in capsys.readouterr().err

    def test_corrupt_plan_file(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text("{broken json")
        config = tmp_path / "cfg.json"
        data = json.loads(DRILL_CONFIG.read_text())
        data["faults"] = {"plan": str(plan)}
        config.write_text(json.dumps(data))
        assert main(["run", "--config", str(config)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_missing_plan_file(self, capsys):
        assert main([
            "run", "--config", str(DRILL_CONFIG),
            "--set", "faults.events=[]",
            "--set", "faults.plan=/nonexistent/plan.json",
        ]) == 2
        assert "not found" in capsys.readouterr().err

    def test_failures_are_one_line_no_traceback(self, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text("[{]")
        config = tmp_path / "cfg.json"
        data = json.loads(DRILL_CONFIG.read_text())
        data["faults"] = {"plan": str(plan)}
        config.write_text(json.dumps(data))

        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        for argv in (
            ["run", "--config", str(DRILL_CONFIG),
             "--set", "faults.events.0.kind=bogus"],
            ["run", "--config", str(DRILL_CONFIG),
             "--set", "faults.events.6.fraction=7"],
            ["run", "--config", str(DRILL_CONFIG),
             "--set", "faults.events.3.jitter_dist=weird"],
            ["run", "--config", str(DRILL_CONFIG),
             "--set", "faults.events.3.loss_rate=-0.5"],
            ["sched", "--config", str(GRAY_STORM_CONFIG),
             "--set", "faults.quarantine_threshold=-1"],
            ["sched", "--config", str(GRAY_STORM_CONFIG),
             "--set", "faults.events.0.kind=disk-slow",
             "--set", "faults.events.0.stretch=4.0"],
            ["run", "--config", str(config)],
            ["sched", "--config", str(REPO / "examples" / "configs" / "multi_tenant.json"),
             "--set", "faults.events.0.kind=checkpoint-corrupt",
             "--set", "faults.events.0.at=10"],
        ):
            proc = subprocess.run(
                [sys.executable, "-m", "repro", *argv],
                capture_output=True, text=True, timeout=120, env=env,
            )
            assert proc.returncode == 2, argv
            assert "Traceback" not in proc.stderr, argv
            lines = [line for line in proc.stderr.splitlines() if line.strip()]
            assert len(lines) == 1 and lines[0].startswith("error: "), proc.stderr
