"""Fault registry + plan resolution: validation fails loudly at load time."""

import json

import pytest

from repro.api.config import FaultConfig, FaultsConfig
from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.registry import FAULT_TARGETS, FAULTS, Fault, FaultError
from repro.utils.seeding import derive_seed


class TestRegistry:
    def test_builtins_registered(self):
        assert FAULTS.available() == [
            "az-reclaim",
            "checkpoint-corrupt",
            "disk-slow",
            "gray-net",
            "nic-degrade",
            "node-crash",
            "straggler",
        ]

    def test_aliases_resolve(self):
        for alias, canonical in (
            ("crash", "node-crash"),
            ("az", "az-reclaim"),
            ("spot-storm", "az-reclaim"),
            ("nic", "nic-degrade"),
            ("nic-flap", "nic-degrade"),
            ("slow-node", "straggler"),
            ("ckpt-corrupt", "checkpoint-corrupt"),
            ("gray", "gray-net"),
            ("packet-loss", "gray-net"),
            ("slow-disk", "disk-slow"),
            ("fail-slow", "disk-slow"),
        ):
            assert FAULTS.canonical(alias) == canonical

    def test_fault_error_is_value_error(self):
        # The CLI maps ValueError to a one-line `error:` exit 2; FaultError
        # must ride that path.
        assert issubclass(FaultError, ValueError)

    def test_targets_cover_both_surfaces(self):
        assert FAULT_TARGETS == ("run", "sched")
        for name in FAULTS.available():
            targets = FAULTS.get(name)().targets
            assert targets <= set(FAULT_TARGETS) and targets

    def test_checkpoint_corrupt_is_run_only(self):
        assert FAULTS.get("checkpoint-corrupt")().targets == {"run"}

    def test_disk_slow_is_run_only(self):
        # The scheduler's closed form has no checkpoint writes to slow
        # down, so "disk-slow without checkpointing" is a load-time error.
        assert FAULTS.get("disk-slow")().targets == {"run"}

    def test_base_class_rejects_unimplemented_surfaces(self):
        event = FaultEvent(fault_id=0, kind="custom", at=1.0)
        with pytest.raises(FaultError, match="cannot target"):
            Fault().apply_run(None, event, None)
        with pytest.raises(FaultError, match="cannot target"):
            Fault().apply_sched(None, event, None)


class TestPlanResolution:
    def test_unknown_kind(self):
        faults = FaultsConfig(events=(FaultConfig(kind="bogus", at=1),))
        with pytest.raises(FaultError, match="unknown fault 'bogus'"):
            FaultPlan.from_config(faults, seed=1, target="run")

    def test_unknown_target(self):
        with pytest.raises(FaultError, match="unknown fault target"):
            FaultPlan.from_config(FaultsConfig(), seed=1, target="cluster")

    def test_target_mismatch(self):
        faults = FaultsConfig(events=(FaultConfig(kind="checkpoint-corrupt", at=1),))
        with pytest.raises(FaultError, match="cannot target 'sched'"):
            FaultPlan.from_config(faults, seed=1, target="sched")

    def test_alias_canonicalised_in_plan(self):
        faults = FaultsConfig(events=(FaultConfig(kind="crash", at=3),))
        plan = FaultPlan.from_config(faults, seed=1, target="run")
        assert plan.events[0].kind == "node-crash"
        assert plan.kinds == ["node-crash"]

    def test_repeat_expands_flap_train(self):
        faults = FaultsConfig(
            events=(
                FaultConfig(kind="nic-degrade", at=10, duration=5, scale=0.5,
                            repeat=3, period=20),
            )
        )
        plan = FaultPlan.from_config(faults, seed=1, target="run")
        assert [e.at for e in plan.events] == [10, 30, 50]
        assert [e.fault_id for e in plan.events] == [0, 1, 2]
        assert all(e.until == e.at + 5 for e in plan.events)

    def test_events_sorted_by_time_then_id(self):
        faults = FaultsConfig(
            events=(
                FaultConfig(kind="node-crash", at=50),
                FaultConfig(kind="straggler", at=10, duration=5, stretch=2.0),
            )
        )
        plan = FaultPlan.from_config(faults, seed=1, target="run")
        assert [e.at for e in plan.events] == [10, 50]
        assert [e.fault_id for e in plan.events] == [1000, 0]

    def test_seed_derived_from_run_seed_unless_pinned(self):
        derived = FaultPlan.from_config(FaultsConfig(), seed=7, target="run")
        assert derived.seed == derive_seed(7, "faults")
        pinned = FaultPlan.from_config(FaultsConfig(seed=99), seed=7, target="run")
        assert pinned.seed == 99

    def test_duration_zero_is_permanent(self):
        event = FaultEvent(fault_id=0, kind="nic-degrade", at=5.0, duration=0.0)
        assert event.until == float("inf")

    @pytest.mark.parametrize(
        "entry, message",
        [
            (FaultConfig(kind="node-crash", at=-1), "at must be >= 0"),
            (FaultConfig(kind="node-crash", at=1, duration=-2), "duration must be >= 0"),
            (FaultConfig(kind="node-crash", at=1, repeat=0), "repeat must be >= 1"),
            (FaultConfig(kind="node-crash", at=1, repeat=2), "positive period"),
            (FaultConfig(kind="node-crash", at=1, node=-3), "node must be >= 0"),
            (FaultConfig(kind="nic-degrade", at=1, scale=1.5), "scale must be in"),
            (FaultConfig(kind="straggler", at=1, stretch=0.5), "stretch must be > 1"),
            (FaultConfig(kind="az-reclaim", at=1, fraction=0.0), "fraction must be in"),
            (FaultConfig(kind="gray-net", at=1, loss_rate=1.0),
             r"loss_rate must be in \[0, 1\)"),
            (FaultConfig(kind="gray-net", at=1, loss_rate=-0.1),
             r"loss_rate must be in \[0, 1\)"),
            (FaultConfig(kind="gray-net", at=1, jitter=-0.5), "jitter must be >= 0"),
            (FaultConfig(kind="gray-net", at=1, jitter_dist="weird"),
             "unknown jitter distribution"),
            (FaultConfig(kind="disk-slow", at=1, stretch=1.0), "stretch must be > 1"),
        ],
    )
    def test_parameter_validation(self, entry, message):
        faults = FaultsConfig(events=(entry,))
        with pytest.raises(FaultError, match=message):
            FaultPlan.from_config(faults, seed=1, target="run")

    def test_checkpoint_iterations_floor(self):
        faults = FaultsConfig(checkpoint_iterations=0)
        with pytest.raises(FaultError, match="checkpoint_iterations"):
            FaultPlan.from_config(faults, seed=1, target="sched")

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"checkpoint_timeout": -1.0}, "checkpoint_timeout must be >= 0"),
            ({"quarantine_threshold": -1.0}, "quarantine_threshold must be > 0"),
            ({"quarantine_threshold": 0.0}, "quarantine_threshold must be > 0"),
            ({"health_half_life": 0.0}, "health_half_life must be > 0"),
            ({"probe_cooldown": -5.0}, "probe_cooldown must be >= 0"),
        ],
    )
    def test_health_knob_validation(self, kwargs, message):
        faults = FaultsConfig(**kwargs)
        with pytest.raises(FaultError, match=message):
            FaultPlan.from_config(faults, seed=1, target="sched")

    def test_health_knobs_reach_plan(self):
        faults = FaultsConfig(
            checkpoint_timeout=4.0,
            quarantine_threshold=1.5,
            health_half_life=120.0,
            probe_cooldown=60.0,
        )
        plan = FaultPlan.from_config(faults, seed=1, target="sched")
        assert plan.checkpoint_timeout == 4.0
        assert plan.quarantine_threshold == 1.5
        assert plan.health_half_life == 120.0
        assert plan.probe_cooldown == 60.0


class TestPlanFiles:
    def test_plan_file_loads_events(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(
            {"events": [{"kind": "crash", "at": 12, "node": 1}]}
        ))
        plan = FaultPlan.from_config(
            FaultsConfig(plan=str(path)), seed=1, target="run"
        )
        assert len(plan.events) == 1
        assert plan.events[0].kind == "node-crash"
        assert plan.events[0].node == 1

    def test_plan_file_bare_list(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps([{"kind": "straggler", "at": 4, "stretch": 3.0}]))
        plan = FaultPlan.from_config(
            FaultsConfig(plan=str(path)), seed=1, target="run"
        )
        assert plan.kinds == ["straggler"]

    def test_plan_file_missing(self):
        with pytest.raises(FaultError, match="not found"):
            FaultPlan.from_config(
                FaultsConfig(plan="/nonexistent/plan.json"), seed=1, target="run"
            )

    def test_plan_file_invalid_json(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{not json")
        with pytest.raises(FaultError, match="not valid JSON"):
            FaultPlan.from_config(
                FaultsConfig(plan=str(path)), seed=1, target="run"
            )

    def test_plan_file_unknown_keys(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"events": [{"kind": "crash", "when": 3}]}))
        with pytest.raises(FaultError, match="unknown key"):
            FaultPlan.from_config(
                FaultsConfig(plan=str(path)), seed=1, target="run"
            )

    def test_events_and_plan_mutually_exclusive(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("[]")
        faults = FaultsConfig(
            events=(FaultConfig(kind="node-crash", at=1),), plan=str(path)
        )
        with pytest.raises(FaultError, match="mutually exclusive"):
            FaultPlan.from_config(faults, seed=1, target="run")
