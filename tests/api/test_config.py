"""RunConfig: lossless serialization, strict validation, overrides."""

import json

import pytest

from repro.api import (
    ClusterConfig,
    CommConfig,
    ConfigError,
    ElasticConfig,
    RunConfig,
    TrainConfig,
    apply_overrides,
)

FULL = {
    "name": "full",
    "seed": 42,
    "cluster": {"instance": "aws", "num_nodes": 3, "gpus_per_node": 4},
    "comm": {"scheme": "gtopk", "density": 0.01, "wire_bytes": 2,
             "n_samplings": 20, "compressor": None},
    "train": {"model": "cnn", "epochs": 3, "num_samples": 128,
              "local_batch": 8, "lr": 0.1, "momentum": 0.8, "data_seed": 9},
    "elastic": {"iterations": 50, "schedule": "poisson", "rate": 0.02,
                "warned_fraction": 0.3, "rejoin_delay": 10, "min_nodes": 2,
                "checkpoint_every": 10, "compute_seconds": 0.1,
                "checkpoint_seconds": 0.2, "restart_seconds": 3.0,
                "warning_seconds": 60.0, "timing_d": 1000000, "sigma": 0.05},
}


class TestRoundTrip:
    def test_dict_round_trip_lossless(self):
        config = RunConfig.from_dict(FULL)
        assert RunConfig.from_dict(config.to_dict()) == config
        # And the dict itself carries every section verbatim.
        assert config.to_dict()["elastic"]["timing_d"] == 1000000

    def test_json_round_trip_lossless(self):
        config = RunConfig.from_dict(FULL)
        again = RunConfig.from_json(config.to_json())
        assert again == config
        assert json.loads(config.to_json()) == config.to_dict()

    def test_defaults_round_trip_without_elastic(self):
        config = RunConfig()
        assert config.elastic is None
        again = RunConfig.from_json(config.to_json())
        assert again == config
        assert "elastic" not in config.to_dict()

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "cfg.json"
        config = RunConfig.from_dict(FULL)
        path.write_text(config.to_json())
        assert RunConfig.from_file(path) == config

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            RunConfig.from_file(tmp_path / "absent.json")

    def test_invalid_json(self):
        with pytest.raises(ConfigError, match="invalid JSON"):
            RunConfig.from_json("{nope")


class TestUnknownKeys:
    @pytest.mark.parametrize(
        "data, needle",
        [
            ({"clustre": {}}, "clustre"),
            ({"cluster": {"nodes": 4}}, "nodes"),
            ({"comm": {"schema": "mstopk"}}, "schema"),
            ({"train": {"epoch": 3}}, "epoch"),
            ({"elastic": {"rates": 0.1}}, "rates"),
        ],
    )
    def test_unknown_key_raises_with_accepted_list(self, data, needle):
        with pytest.raises(ConfigError, match=needle) as err:
            RunConfig.from_dict(data)
        assert "accepted keys" in str(err.value)

    def test_section_must_be_mapping(self):
        with pytest.raises(ConfigError, match="must be a mapping"):
            RunConfig.from_dict({"comm": "mstopk"})


class TestNameValidation:
    def test_unregistered_scheme(self):
        with pytest.raises(ConfigError, match="unknown comm scheme 'warp'"):
            RunConfig.from_dict({"comm": {"scheme": "warp"}})

    def test_unregistered_model(self):
        with pytest.raises(ConfigError, match="unknown model .*registered:"):
            RunConfig.from_dict({"train": {"model": "bert-large"}})

    def test_unregistered_cluster(self):
        with pytest.raises(ConfigError, match="unknown cluster instance"):
            RunConfig.from_dict({"cluster": {"instance": "azure"}})

    def test_unregistered_compressor(self):
        with pytest.raises(ConfigError, match="unknown compressor"):
            RunConfig.from_dict({"comm": {"compressor": "zip"}})

    def test_alias_names_validate(self):
        config = RunConfig.from_dict({"comm": {"scheme": "hitopkcomm"}})
        assert config.comm.scheme == "hitopkcomm"

    def test_value_sanity(self):
        with pytest.raises(ConfigError, match="density"):
            RunConfig.from_dict({"comm": {"density": 2.0}})
        with pytest.raises(ConfigError, match="min_nodes"):
            RunConfig.from_dict(
                {"cluster": {"num_nodes": 2}, "elastic": {"min_nodes": 5}}
            )
        with pytest.raises(ConfigError, match="unknown elastic schedule"):
            RunConfig.from_dict({"elastic": {"schedule": "weibull"}})


class TestOverrides:
    def test_nested_and_top_level(self):
        config = RunConfig.from_dict(FULL)
        out = apply_overrides(
            config, ["comm.density=0.5", "seed=7", "name=renamed"]
        )
        assert out.comm.density == 0.5
        assert out.seed == 7
        assert out.name == "renamed"
        # Untouched sections survive verbatim.
        assert out.train == config.train

    def test_json_values_and_bare_strings(self):
        out = apply_overrides(RunConfig(), ["comm.scheme=dense", "train.data_seed=null"])
        assert out.comm.scheme == "dense"
        assert out.train.data_seed is None

    def test_elastic_materialised_on_demand(self):
        base = RunConfig()
        assert base.elastic is None
        out = apply_overrides(base, ["elastic.rate=0.05"])
        assert out.elastic is not None
        assert out.elastic.rate == 0.05
        # Other elastic fields get their defaults.
        assert out.elastic.schedule == ElasticConfig().schedule

    def test_bad_overrides(self):
        with pytest.raises(ConfigError, match="key=value"):
            apply_overrides(RunConfig(), ["comm.density"])
        with pytest.raises(ConfigError, match="not a section"):
            apply_overrides(RunConfig(), ["seed.depth=1"])
        with pytest.raises(ConfigError, match="unknown key"):
            apply_overrides(RunConfig(), ["comm.densty=0.1"])
        with pytest.raises(ConfigError, match="unknown comm scheme"):
            apply_overrides(RunConfig(), ["comm.scheme=warp"])


class TestDataclassDefaults:
    def test_nested_defaults(self):
        config = RunConfig()
        assert config.cluster == ClusterConfig()
        assert config.comm == CommConfig()
        assert config.train == TrainConfig()
        assert config.validate() is config
