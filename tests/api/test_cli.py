"""The ``python -m repro`` CLI: run / list / experiments."""

import json
import os
import pathlib
import subprocess
import sys

from repro.api.cli import main

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
SMOKE_CONFIG = REPO / "examples" / "configs" / "smoke.json"
SCHED_CONFIG = REPO / "examples" / "configs" / "multi_tenant.json"


class TestList:
    def test_list_schemes(self, capsys):
        assert main(["list", "schemes"]) == 0
        out = capsys.readouterr().out
        for name in ("dense", "mstopk", "gtopk", "2dtar"):
            assert name in out
        assert "aliases:" in out  # discovery shows alias names too

    def test_list_all_groups(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for header in ("schemes:", "compressors:", "models:", "clusters:",
                       "policies:", "backends:", "experiments:"):
            assert header in out
        assert "Fig. 10" in out
        assert "tencent" in out

    def test_list_policies_matches_registry(self, capsys):
        from repro.sched.policies import POLICIES

        assert main(["list", "policies"]) == 0
        out = capsys.readouterr().out
        for name in POLICIES.available():
            assert name in out

    def test_list_experiments_matches_runner(self, capsys):
        from repro.experiments.runner import EXPERIMENTS

        assert main(["list", "experiments"]) == 0
        out = capsys.readouterr().out
        for name, _ in EXPERIMENTS:
            assert name in out


class TestRun:
    def test_run_smoke_config_table(self, capsys):
        assert main(["run", "--config", str(SMOKE_CONFIG)]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "final_loss" in out

    def test_run_json_payload_passes_schema(self, capsys):
        assert main(["run", "--config", str(SMOKE_CONFIG), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["structured"] is True
        assert payload["meta"]["scheme"] == "mstopk"
        assert len(payload["rows"]) == 1
        assert len(payload["rows"][0]) == len(payload["columns"])

    def test_run_set_overrides(self, capsys):
        assert main([
            "run", "--config", str(SMOKE_CONFIG), "--json",
            "--set", "comm.scheme=dense", "--set", "name=cli-dense",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["bench"] == "run_cli-dense"
        assert payload["meta"]["scheme"] == "dense"

    def test_run_out_writes_payload(self, tmp_path, capsys):
        out_path = tmp_path / "sub" / "payload.json"
        assert main(["run", "--config", str(SMOKE_CONFIG), "--out", str(out_path)]) == 0
        assert out_path.exists()
        payload = json.loads(out_path.read_text())
        assert payload["schema_version"] == 1
        assert "payload written" in capsys.readouterr().out

    def test_run_unknown_scheme_fails_actionably(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"comm": {"scheme": "warp"}}')
        assert main(["run", "--config", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "warp" in err and "mstopk" in err

    def test_run_missing_config_fails(self, capsys):
        assert main(["run", "--config", "/nonexistent/cfg.json"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_bad_override_fails(self, capsys):
        assert main([
            "run", "--config", str(SMOKE_CONFIG), "--set", "comm.densty=0.1",
        ]) == 2
        assert "densty" in capsys.readouterr().err

    def test_dense_plus_compressor_fails_cleanly(self, capsys):
        """Build-time config mistakes exit 2 with a message, no traceback."""
        assert main([
            "run", "--config", str(SMOKE_CONFIG),
            "--set", "comm.scheme=dense", "--set", "comm.compressor=mstopk",
        ]) == 2
        assert "does not accept a compressor" in capsys.readouterr().err

    def test_malformed_set_without_equals_fails(self, capsys):
        assert main([
            "run", "--config", str(SMOKE_CONFIG), "--set", "comm.density",
        ]) == 2
        err = capsys.readouterr().err
        assert "key=value" in err

    def test_failure_is_one_line_without_traceback(self):
        """User errors reach the shell as one actionable line, no traceback."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
        for argv in (
            ["run", "--config", "/nonexistent/cfg.json"],
            ["run", "--config", str(SMOKE_CONFIG), "--set", "comm.scheme=warp"],
            ["run", "--config", str(SMOKE_CONFIG), "--set", "oops"],
            ["sched", "--config", "/nonexistent/cfg.json"],
            ["sched", "--config", str(SCHED_CONFIG), "--set", "policies.0=warp"],
        ):
            proc = subprocess.run(
                [sys.executable, "-m", "repro", *argv],
                capture_output=True, text=True, timeout=120, env=env,
            )
            assert proc.returncode == 2, argv
            assert "Traceback" not in proc.stderr, argv
            lines = [line for line in proc.stderr.splitlines() if line.strip()]
            assert len(lines) == 1 and lines[0].startswith("error: "), proc.stderr


class TestSched:
    def test_sched_table_output(self, capsys):
        assert main(["sched", "--config", str(SCHED_CONFIG)]) == 0
        out = capsys.readouterr().out
        for expected in ("bin-pack", "spread", "network-aware",
                         "resnet-prod", "contention_slowdown"):
            assert expected in out

    def test_sched_json_payload_passes_schema(self, capsys):
        assert main(["sched", "--config", str(SCHED_CONFIG), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["structured"] is True
        assert payload["bench"] == "sched_multi-tenant"
        policies = payload["meta"]["policies"]
        assert len(policies) >= 2  # the shipped scenario compares policies
        jobs = {row[payload["columns"].index("job")] for row in payload["rows"]}
        assert len(jobs) >= 3  # ... over at least three jobs
        assert len(payload["rows"]) == len(jobs) * len(policies)
        for row in payload["rows"]:
            assert len(row) == len(payload["columns"])

    def test_sched_set_overrides_list_entries(self, capsys):
        assert main([
            "sched", "--config", str(SCHED_CONFIG), "--json",
            "--set", "policies=[\"spread\"]", "--set", "jobs.0.priority=9",
            "--set", "name=cli-sched",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["bench"] == "sched_cli-sched"
        assert payload["meta"]["policies"] == ["spread"]

    def test_sched_out_writes_payload(self, tmp_path, capsys):
        out_path = tmp_path / "sub" / "sched.json"
        assert main([
            "sched", "--config", str(SCHED_CONFIG), "--out", str(out_path),
        ]) == 0
        assert out_path.exists()
        payload = json.loads(out_path.read_text())
        assert payload["schema_version"] == 1
        assert "payload written" in capsys.readouterr().out

    def test_sched_unknown_policy_fails_actionably(self, capsys):
        assert main([
            "sched", "--config", str(SCHED_CONFIG), "--set", "policies.0=warp",
        ]) == 2
        err = capsys.readouterr().err
        assert "warp" in err and "bin-pack" in err

    def test_sched_bad_list_index_fails_actionably(self, capsys):
        assert main([
            "sched", "--config", str(SCHED_CONFIG), "--set", "jobs.99.priority=1",
        ]) == 2
        assert "list index" in capsys.readouterr().err

    def test_sched_missing_config_fails(self, capsys):
        assert main(["sched", "--config", "/nonexistent/cfg.json"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_sched_unknown_job_key_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"jobs": [{"name": "a", "speed": 9}]}')
        assert main(["sched", "--config", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "speed" in err and "accepted keys" in err


class TestExperiments:
    def test_experiments_only_filter(self, capsys):
        assert main(["experiments", "--only", "Table 1"]) == 0
        out = capsys.readouterr().out
        assert "p3.16xlarge" in out

    def test_experiments_fast_flag(self, capsys):
        assert main(["experiments", "--only", "Fig. 6", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "V100" in out


class TestEntryPoint:
    def test_no_args_prints_help(self, capsys):
        assert main([]) == 2
        assert "run" in capsys.readouterr().out

    def test_python_dash_m_repro(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list", "schemes"],
            capture_output=True, text=True, timeout=120, env=env,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "mstopk" in proc.stdout

    def test_python_dash_m_repro_run(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "run", "--config", str(SMOKE_CONFIG),
             "--json"],
            capture_output=True, text=True, timeout=180, env=env,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        payload = json.loads(proc.stdout)
        assert payload["schema_version"] == 1
