"""Registries: discovery, aliases, extension, and the legacy shims."""

import numpy as np
import pytest

from repro.api import registry
from repro.api.registry import (
    CLUSTERS,
    COMPRESSORS,
    CONVERGENCE_ALGORITHMS,
    MODELS,
    SCHEMES,
    Registry,
    available,
    build_cluster,
    build_compressor,
    build_scheme,
    build_workload,
)
from repro.utils.seeding import new_rng


@pytest.fixture
def net():
    return build_cluster("tencent", 2, gpus_per_node=2)


class TestDiscovery:
    def test_available_groups(self):
        groups = available()
        assert set(groups) == {"schemes", "compressors", "models", "clusters"}
        assert "mstopk" in groups["schemes"]
        assert "mstopk" in groups["compressors"]
        assert "mlp" in groups["models"]
        assert "tencent" in groups["clusters"]

    def test_available_single_group_and_unknown(self):
        assert available("schemes") == SCHEMES.available()
        with pytest.raises(KeyError, match="unknown group"):
            available("widgets")

    def test_every_legacy_scheme_name_resolves(self):
        for name in (
            "dense", "dense-tree", "tree", "trear", "dense-ring", "ring",
            "2dtar", "torus", "dense-2dtar", "topk", "topk-sgd", "naiveag",
            "gtopk", "gtopk-sgd", "globaltopk", "mstopk", "mstopk-sgd",
            "hitopk", "hitopkcomm", "naiveag-mstopk",
        ):
            assert name in SCHEMES, name

    def test_canonical_and_aliases(self):
        assert SCHEMES.canonical("HiTopKComm") == "mstopk"
        assert SCHEMES.canonical("nope") is None
        assert "hitopk" in SCHEMES.aliases_of("mstopk")

    def test_unknown_name_error_lists_available(self, net):
        with pytest.raises(KeyError, match="available: .*mstopk"):
            build_scheme("psgd", net)
        with pytest.raises(KeyError, match="available"):
            build_compressor("lz4")
        with pytest.raises(KeyError, match="available"):
            build_workload("gpt5", num_samples=8, rng=new_rng(0))
        with pytest.raises(KeyError, match="available"):
            build_cluster("azure", 2)


class TestRegistration:
    def test_decorator_registration_and_duplicate(self):
        reg = Registry("widget")

        @reg.register("alpha", aliases=("a",))
        def build_alpha():
            return "alpha!"

        assert reg.get("a")() == "alpha!"
        assert reg.available() == ["alpha"]
        with pytest.raises(KeyError, match="already registered"):
            reg.register("alpha")(build_alpha)
        with pytest.raises(KeyError, match="already registered"):
            reg.register("beta", aliases=("a",))(build_alpha)
        # Explicit overwrite is allowed.
        reg.register("alpha", overwrite=True)(lambda: "alpha2")
        assert reg.get("alpha")() == "alpha2"

    def test_new_name_cannot_shadow_existing_alias(self):
        reg = Registry("widget")
        reg.register("alpha", aliases=("a",))(lambda: "alpha")
        with pytest.raises(KeyError, match="already registered"):
            reg.register("a")(lambda: "shadow")
        # The failed attempt left nothing behind.
        assert reg.get("a")() == "alpha"

    def test_failed_registration_is_retryable(self):
        reg = Registry("widget")
        reg.register("alpha", aliases=("x",))(lambda: 1)
        with pytest.raises(KeyError):
            reg.register("beta", aliases=("x",))(lambda: 2)
        assert "beta" not in reg  # nothing half-registered
        reg.register("beta")(lambda: 2)
        assert reg.get("beta")() == 2

    def test_custom_scheme_end_to_end(self, net):
        name = "test-reg-custom-scheme"
        if name not in SCHEMES:  # idempotent across pytest reruns in-process
            from repro.comm.dense import RingAllReduce

            @registry.register_scheme(name)
            def _build(network, **_):
                return RingAllReduce(network)

        scheme = build_scheme(name, net)
        grads = [np.full(16, float(i)) for i in range(4)]
        out = scheme.aggregate(grads).outputs[0]
        np.testing.assert_allclose(out, np.sum(grads, axis=0))


class TestSchemeBuilders:
    def test_dense_rejects_compressor(self, net):
        for name in ("dense", "dense-ring", "2dtar"):
            with pytest.raises(ValueError, match="does not accept a compressor"):
                build_scheme(name, net, compressor="mstopk")

    def test_sparse_compressor_override(self, net):
        from repro.compression.exact_topk import ExactTopK
        from repro.compression.mstopk import MSTopK

        assert isinstance(build_scheme("mstopk", net).compressor, MSTopK)
        assert isinstance(
            build_scheme("mstopk", net, compressor="exact-topk").compressor, ExactTopK
        )
        assert isinstance(build_scheme("topk", net).compressor, ExactTopK)

    def test_n_samplings_reaches_mstopk(self, net):
        scheme = build_scheme("mstopk", net, n_samplings=7)
        assert scheme.compressor.n_samplings == 7


class TestClusters:
    def test_presets_are_cloud_instances(self):
        from repro.cluster.cloud_presets import CLOUD_INSTANCES

        for name in CLOUD_INSTANCES:
            assert name in CLUSTERS
        assert CLUSTERS.get("tencent").cloud == "Tencent"
        # Instance-name aliases registered too.
        assert CLUSTERS.canonical("p3.16xlarge") == "aws"

    def test_make_cluster_resolves_via_registry(self):
        from repro.cluster.cloud_presets import make_cluster

        net = make_cluster(2, "18XLARGE320", gpus_per_node=4)
        assert net.topology.world_size == 8

    def test_membership_view_resolves_via_registry(self):
        from repro.elastic.membership import MembershipView

        view = MembershipView(2, 2, instance="c10g1.20xlarge")
        assert view.instance.cloud == "Aliyun"
        with pytest.raises(KeyError, match="available"):
            MembershipView(2, 2, instance="azure")


class TestLegacyShims:
    def test_make_scheme_warns_and_matches_registry(self, net):
        from repro.train.algorithms import make_scheme

        rng_a, rng_b = new_rng(5), new_rng(5)
        grads = [new_rng(9).normal(size=512) for _ in range(4)]
        for name in ("dense", "dense-ring", "2dtar", "topk", "gtopk",
                     "mstopk", "naiveag-mstopk"):
            with pytest.warns(DeprecationWarning, match="build_scheme"):
                old = make_scheme(name, net, density=0.1)
            new = build_scheme(name, net, density=0.1)
            assert type(old) is type(new)
            a = old.aggregate(grads, rng=rng_a)
            b = new.aggregate(grads, rng=rng_b)
            np.testing.assert_array_equal(a.outputs[0], b.outputs[0])
            assert a.time == b.time

    def test_make_scheme_unknown_name_still_keyerror(self, net):
        from repro.train.algorithms import make_scheme

        with pytest.warns(DeprecationWarning):
            with pytest.raises(KeyError):
                make_scheme("psgd", net)

    def test_training_algorithms_tuple_preserved(self):
        with pytest.warns(DeprecationWarning, match="CONVERGENCE_ALGORITHMS"):
            from repro.train.algorithms import TRAINING_ALGORITHMS

        assert TRAINING_ALGORITHMS == ("dense", "topk", "mstopk")
        assert TRAINING_ALGORITHMS == CONVERGENCE_ALGORITHMS
        for name in TRAINING_ALGORITHMS:
            assert name in SCHEMES

    def test_training_algorithms_via_package_is_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            from repro.train import TRAINING_ALGORITHMS

        assert TRAINING_ALGORITHMS == CONVERGENCE_ALGORITHMS

    def test_unknown_module_attribute_raises(self):
        import repro.train.algorithms as algorithms

        with pytest.raises(AttributeError, match="no attribute"):
            algorithms.NOPE


class TestWorkloads:
    def test_workloads_build_consistently(self):
        for name in MODELS.available():
            w = build_workload(name, num_samples=64, rng=new_rng(1))
            assert w.x.shape[0] == w.y.shape[0] > 0
            params = w.model.init_params(new_rng(2))
            assert params, name

    def test_workload_data_is_seed_deterministic(self):
        a = build_workload("mlp", num_samples=64, rng=new_rng(3))
        b = build_workload("mlp", num_samples=64, rng=new_rng(3))
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)

    def test_compressor_registry_builders(self):
        from repro.compression.mstopk import MSTopK

        c = build_compressor("mstopk", n_samplings=12)
        assert isinstance(c, MSTopK) and c.n_samplings == 12
        assert build_compressor("exact").name == build_compressor("exact-topk").name
