"""run(RunConfig) reproduces the legacy hand-wired paths bit-identically."""

import importlib.util
import pathlib

import numpy as np
import pytest

from repro.api import RunConfig, run

REPO = pathlib.Path(__file__).resolve().parent.parent.parent


def _validate_bench_payload(payload):
    spec = importlib.util.spec_from_file_location(
        "bench_conftest_for_api", REPO / "benchmarks" / "conftest.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.validate_bench_payload(payload)


def _train_config_json(scheme: str) -> str:
    return (
        '{"name": "parity-%s", "seed": 7,'
        ' "cluster": {"instance": "tencent", "num_nodes": 2, "gpus_per_node": 2},'
        ' "comm": {"scheme": "%s", "density": 0.05},'
        ' "train": {"model": "mlp", "epochs": 3, "num_samples": 256,'
        ' "local_batch": 16, "lr": 0.05, "momentum": 0.9}}'
    ) % (scheme, scheme)


def _legacy_train(scheme: str):
    """The pre-facade wiring, spelled out by hand (seed-era idiom)."""
    from repro.cluster.cloud_presets import make_cluster
    from repro.models.nn.mlp import MLPClassifier
    from repro.optim.sgd import SGD
    from repro.train.algorithms import make_scheme
    from repro.train.synthetic import make_spiral_classification, train_val_split
    from repro.train.trainer import DistributedTrainer
    from repro.utils.seeding import new_rng

    rng = new_rng(7)
    x, y = make_spiral_classification(256, num_classes=4, rng=rng)
    model = MLPClassifier(input_dim=2, hidden=(48, 48), num_classes=4)
    net = make_cluster(2, "tencent", gpus_per_node=2)
    with pytest.warns(DeprecationWarning):
        comm = make_scheme(scheme, net, density=0.05)
    trainer = DistributedTrainer(
        model, comm, optimizer=SGD(lr=0.05, momentum=0.9), seed=7
    )
    train_x, train_y, val_x, val_y = train_val_split(np.asarray(x), np.asarray(y))
    report = trainer.train(
        train_x, train_y, epochs=3, local_batch=16,
        val_x=val_x, val_y=val_y,
        evaluate=lambda p, vx, vy: model.evaluate(p, vx, vy, topk=1),
    )
    return report, trainer.params


class TestTrainParity:
    @pytest.mark.parametrize("scheme", ["dense", "mstopk"])
    def test_bit_identical_to_legacy(self, scheme):
        facade = run(RunConfig.from_json(_train_config_json(scheme)))
        legacy, legacy_params = _legacy_train(scheme)

        assert facade.training.epoch_losses == legacy.epoch_losses
        assert facade.training.val_metrics == legacy.val_metrics
        assert facade.training.comm_seconds == legacy.comm_seconds
        assert facade.training.iterations == legacy.iterations

    def test_run_is_deterministic(self):
        config = RunConfig.from_json(_train_config_json("mstopk"))
        a, b = run(config), run(config)
        assert a.summary == b.summary
        assert a.training.epoch_losses == b.training.epoch_losses

    def test_seed_changes_run(self):
        base = RunConfig.from_json(_train_config_json("mstopk"))
        other = RunConfig.from_dict({**base.to_dict(), "seed": 8})
        assert run(base).training.epoch_losses != run(other).training.epoch_losses


ELASTIC_JSON = (
    '{"name": "parity-elastic", "seed": 13,'
    ' "cluster": {"instance": "tencent", "num_nodes": 3, "gpus_per_node": 2},'
    ' "comm": {"scheme": "mstopk", "density": 0.05},'
    ' "train": {"model": "mlp-tiny", "num_samples": 256, "local_batch": 8,'
    ' "data_seed": 99},'
    ' "elastic": {"iterations": 40, "schedule": "poisson", "rate": 0.02,'
    ' "warned_fraction": 0.5, "rejoin_delay": 20, "checkpoint_every": 15,'
    ' "compute_seconds": 0.3, "checkpoint_seconds": 0.5, "restart_seconds": 5.0,'
    ' "timing_d": 25000000, "sigma": 0.1}}'
)


class TestElasticParity:
    def test_bit_identical_to_legacy_elastic(self):
        facade = run(RunConfig.from_json(ELASTIC_JSON))

        from repro.cluster.variability import VariabilityModel
        from repro.elastic.elastic_trainer import ElasticTrainer
        from repro.elastic.events import PoissonChurn
        from repro.models.nn.mlp import MLPClassifier
        from repro.optim.sgd import SGD
        from repro.train.synthetic import make_spiral_classification
        from repro.utils.seeding import new_rng

        x, y = make_spiral_classification(256, num_classes=4, rng=new_rng(99))
        trainer = ElasticTrainer(
            MLPClassifier(input_dim=2, hidden=(12,), num_classes=4),
            scheme="mstopk",
            density=0.05,
            instance="tencent",
            num_nodes=3,
            gpus_per_node=2,
            optimizer=SGD(lr=0.05, momentum=0.9),
            seed=13,
            checkpoint_every=15,
            compute_seconds=0.3,
            checkpoint_seconds=0.5,
            restart_seconds=5.0,
            timing_d=25_000_000,
            variability=VariabilityModel(sigma=0.1),
        )
        legacy = trainer.run(
            x, y, iterations=40, local_batch=8,
            schedule=PoissonChurn(0.02, warned_fraction=0.5, rejoin_delay=20),
        )

        assert facade.elastic_run.losses == legacy.losses
        assert facade.elastic_run.world_sizes == legacy.world_sizes
        assert facade.elastic_run.revocations == legacy.revocations
        assert facade.elastic_run.goodput == legacy.goodput
        assert facade.elastic_run.total_seconds == legacy.total_seconds

    def test_elastic_report_carries_cost(self):
        report = run(RunConfig.from_json(ELASTIC_JSON))
        assert report.mode == "elastic"
        assert report.cost.spot_cost > 0
        assert report.summary["goodput_it_per_s"] == report.elastic_run.goodput

    def test_elastic_honours_compressor_override(self):
        """comm.compressor must reach the elastic scheme rebuilds."""
        from repro.compression.exact_topk import ExactTopK
        from repro.compression.mstopk import MSTopK
        from repro.elastic.elastic_trainer import ElasticTrainer
        from repro.models.nn.mlp import MLPClassifier

        def make(**kwargs):
            return ElasticTrainer(
                MLPClassifier(input_dim=2, hidden=(12,), num_classes=4),
                scheme="mstopk",
                **kwargs,
            )

        assert isinstance(make().trainer.scheme.compressor, MSTopK)
        overridden = make(compressor="exact-topk")
        assert isinstance(overridden.trainer.scheme.compressor, ExactTopK)
        # And the config field actually flows through run().
        data = RunConfig.from_json(ELASTIC_JSON).to_dict()
        data["elastic"]["iterations"] = 5
        data["comm"]["compressor"] = "exact-topk"
        report = run(RunConfig.from_dict(data))
        assert report.config["comm"]["compressor"] == "exact-topk"
        assert report.summary["useful_iterations"] == 5

    def test_elastic_accepts_cluster_alias(self):
        """Instance aliases must survive the whole elastic pipeline
        (membership re-derivation + spot-cost profile lookup)."""
        data = RunConfig.from_json(ELASTIC_JSON).to_dict()
        data["cluster"]["instance"] = "p3.16xlarge"  # alias of "aws"
        data["elastic"]["iterations"] = 10
        report = run(RunConfig.from_dict(data))
        assert report.mode == "elastic"
        assert report.cost.cloud == "aws"


class TestRunReport:
    def test_bench_payload_passes_schema_gate(self):
        report = run(RunConfig.from_json(_train_config_json("mstopk")))
        payload = report.bench_payload()
        _validate_bench_payload(payload)
        assert payload["bench"] == "run_parity-mstopk"
        assert payload["meta"]["seed"] == 7
        assert len(payload["rows"]) == 1

    def test_elastic_bench_payload_passes_schema_gate(self):
        report = run(RunConfig.from_json(ELASTIC_JSON))
        _validate_bench_payload(report.bench_payload("elastic_smoke"))

    def test_report_echoes_config(self):
        config = RunConfig.from_json(_train_config_json("dense"))
        report = run(config)
        assert RunConfig.from_dict(report.config) == config
        assert report.scheme == "dense"
        assert report.model == "mlp"
        assert report.world_size == 4

    def test_format_is_human_readable(self):
        report = run(RunConfig.from_json(_train_config_json("dense")))
        text = report.format()
        assert "final_loss" in text and "parity-dense" in text
