"""Autodiff tape: every op checked against central finite differences."""

import numpy as np
import pytest

from repro.models.autodiff import (
    Tensor,
    avg_pool2d,
    conv2d,
    conv2d_cnhw,
    embedding,
    exp,
    layer_norm,
    legacy_conv_kernels,
    log,
    matmul,
    power,
    relu,
    softmax,
    softmax_cross_entropy,
    softmax_cross_entropy_workers,
    tanh,
    tensor_mean,
    tensor_sum,
)
from repro.utils.seeding import new_rng


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def check_gradient(build_loss, x: np.ndarray, atol=1e-5, rtol=1e-4):
    """Compare tape gradient against finite differences."""
    t = Tensor(x.copy(), requires_grad=True)
    loss = build_loss(t)
    loss.backward()

    def scalar_fn(arr):
        return float(build_loss(Tensor(arr)).data)

    expected = numerical_grad(scalar_fn, x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=atol, rtol=rtol)


class TestElementwise:
    def test_add_broadcast(self, rng):
        x = rng.normal(size=(3, 4))
        bias = Tensor(rng.normal(size=4))
        check_gradient(lambda t: (t + bias).sum(), x)

    def test_mul_broadcast_gradients_both_sides(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=3), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, np.broadcast_to(b.data, (2, 3)))
        np.testing.assert_allclose(b.grad, a.data.sum(axis=0))

    def test_power(self, rng):
        x = np.abs(rng.normal(size=6)) + 0.5
        check_gradient(lambda t: power(t, 3.0).sum(), x)

    def test_exp_log(self, rng):
        x = np.abs(rng.normal(size=5)) + 0.5
        check_gradient(lambda t: exp(t).sum(), x)
        check_gradient(lambda t: log(t).sum(), x)

    def test_relu_grad_zero_below(self):
        t = Tensor(np.array([-1.0, 2.0]), requires_grad=True)
        relu(t).sum().backward()
        np.testing.assert_array_equal(t.grad, [0.0, 1.0])

    def test_tanh(self, rng):
        check_gradient(lambda t: tanh(t).sum(), rng.normal(size=7))

    def test_sub_and_div(self, rng):
        x = rng.normal(size=4)
        check_gradient(lambda t: (t - 2.0).sum(), x)
        check_gradient(lambda t: (t / 2.0).sum(), x)


class TestMatmul:
    def test_2d(self, rng):
        w = Tensor(rng.normal(size=(4, 3)))
        x = rng.normal(size=(5, 4))
        check_gradient(lambda t: matmul(t, w).sum(), x)

    def test_2d_weight_gradient(self, rng):
        x = Tensor(rng.normal(size=(5, 4)))
        w = rng.normal(size=(4, 3))
        check_gradient(lambda t: matmul(x, t).sum(), w)

    def test_batched_lhs(self, rng):
        w = Tensor(rng.normal(size=(4, 3)))
        x = rng.normal(size=(2, 5, 4))
        check_gradient(lambda t: matmul(t, w).sum(), x)

    def test_batched_weight_broadcast(self, rng):
        x = Tensor(rng.normal(size=(2, 5, 4)))
        w = rng.normal(size=(4, 3))
        check_gradient(lambda t: matmul(x, t).sum(), w)

    def test_batched_both(self, rng):
        b = Tensor(rng.normal(size=(2, 4, 3)))
        a = rng.normal(size=(2, 5, 4))
        check_gradient(lambda t: matmul(t, b).sum(), a)


class TestReductionsAndShape:
    def test_sum_axis(self, rng):
        x = rng.normal(size=(3, 4))
        check_gradient(lambda t: (tensor_sum(t, axis=0) * 2.0).sum(), x)

    def test_sum_keepdims(self, rng):
        x = rng.normal(size=(3, 4))
        check_gradient(lambda t: (t * tensor_sum(t, axis=1, keepdims=True)).sum(), x)

    def test_mean_tuple_axis(self, rng):
        x = rng.normal(size=(2, 3, 4))
        check_gradient(lambda t: tensor_mean(t, axis=(1, 2)).sum(), x)

    def test_reshape_transpose(self, rng):
        x = rng.normal(size=(3, 4))
        check_gradient(lambda t: (t.reshape(12) * np.arange(12.0)).sum(), x)
        check_gradient(lambda t: (t.transpose() @ Tensor(np.ones(3))).sum(), x)

    def test_transpose_axes(self, rng):
        x = rng.normal(size=(2, 3, 4))
        check_gradient(lambda t: (t.transpose((0, 2, 1)) * 1.5).sum(), x)


class TestFusedOps:
    def test_softmax_rows_sum_to_one(self, rng):
        out = softmax(Tensor(rng.normal(size=(4, 6))))
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(4))

    def test_softmax_gradient(self, rng):
        x = rng.normal(size=(3, 5))
        coeff = rng.normal(size=(3, 5))
        check_gradient(lambda t: (softmax(t) * Tensor(coeff)).sum(), x)

    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.normal(size=(4, 3))
        labels = np.array([0, 2, 1, 1])
        loss = softmax_cross_entropy(Tensor(logits), labels)
        shifted = logits - logits.max(axis=1, keepdims=True)
        logp = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -logp[np.arange(4), labels].mean()
        assert float(loss.data) == pytest.approx(expected)

    def test_cross_entropy_gradient(self, rng):
        labels = np.array([1, 0, 2])
        x = rng.normal(size=(3, 4))
        check_gradient(lambda t: softmax_cross_entropy(t, labels), x)

    def test_cross_entropy_sequence_with_padding(self, rng):
        logits = rng.normal(size=(2, 3, 4))
        labels = np.array([[1, 2, -1], [0, -1, -1]])  # -1 = pad
        x = logits.copy()
        check_gradient(lambda t: softmax_cross_entropy(t, labels), x)
        # Padded positions must receive zero gradient.
        t = Tensor(logits, requires_grad=True)
        softmax_cross_entropy(t, labels).backward()
        np.testing.assert_array_equal(t.grad[0, 2], np.zeros(4))

    def test_layer_norm_gradient(self, rng):
        gamma = Tensor(rng.normal(size=5) + 1.0)
        beta = Tensor(rng.normal(size=5))
        x = rng.normal(size=(3, 5))
        check_gradient(
            lambda t: (layer_norm(t, gamma, beta) * 0.7).sum(), x, atol=1e-4
        )

    def test_layer_norm_param_gradients(self, rng):
        x = Tensor(rng.normal(size=(3, 5)))
        gamma_val = rng.normal(size=5) + 1.0
        beta_val = rng.normal(size=5)
        check_gradient(
            lambda t: layer_norm(x, t, Tensor(beta_val)).sum(), gamma_val
        )
        check_gradient(
            lambda t: layer_norm(x, Tensor(gamma_val), t).sum(), beta_val
        )

    def test_layer_norm_output_standardised(self, rng):
        out = layer_norm(
            Tensor(rng.normal(size=(4, 8)) * 5 + 3), Tensor(np.ones(8)), Tensor(np.zeros(8))
        )
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(4), atol=1e-9)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones(4), atol=1e-4)

    def test_embedding_gradient_scatter(self, rng):
        table_val = rng.normal(size=(6, 3))
        ids = np.array([[1, 1], [4, 0]])
        check_gradient(lambda t: (embedding(t, ids) * 2.0).sum(), table_val)


class TestConvPool:
    def test_conv2d_matches_naive(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        out = conv2d(Tensor(x), Tensor(w), stride=1, padding=1)
        # Naive direct convolution reference.
        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        expected = np.zeros((2, 4, 6, 6))
        for n in range(2):
            for o in range(4):
                for i in range(6):
                    for j in range(6):
                        expected[n, o, i, j] = np.sum(
                            padded[n, :, i : i + 3, j : j + 3] * w[o]
                        )
        np.testing.assert_allclose(out.data, expected, atol=1e-10)

    def test_conv2d_input_gradient(self, rng):
        w = Tensor(rng.normal(size=(2, 1, 3, 3)))
        x = rng.normal(size=(1, 1, 5, 5))
        check_gradient(lambda t: conv2d(t, w, padding=1).sum(), x, atol=1e-4)

    def test_conv2d_weight_gradient(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 5, 5)))
        w = rng.normal(size=(3, 2, 3, 3))
        check_gradient(lambda t: conv2d(x, t, padding=1).sum(), w, atol=1e-4)

    def test_conv2d_stride(self, rng):
        out = conv2d(
            Tensor(rng.normal(size=(1, 1, 8, 8))),
            Tensor(rng.normal(size=(1, 1, 3, 3))),
            stride=2,
            padding=1,
        )
        assert out.data.shape == (1, 1, 4, 4)

    def test_avg_pool(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        out = avg_pool2d(Tensor(x), 2)
        assert out.data.shape == (1, 2, 2, 2)
        assert out.data[0, 0, 0, 0] == pytest.approx(x[0, 0, :2, :2].mean())

    def test_avg_pool_gradient(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        check_gradient(lambda t: (avg_pool2d(t, 2) * 3.0).sum(), x)

    def test_avg_pool_kernel_one_second_consumer(self, rng):
        """kernel == 1 pooling must not adopt a read-only grad view."""
        x = Tensor(rng.normal(size=(2, 3, 4, 4)), requires_grad=True)
        out = avg_pool2d(x, 1) + x * 2.0  # x has two consumers
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.full(x.shape, 3.0))

    def test_avg_pool_indivisible_rejected(self, rng):
        with pytest.raises(ValueError):
            avg_pool2d(Tensor(rng.normal(size=(1, 1, 5, 5))), 2)


class TestVectorizedConvKernels:
    """The BLAS conv kernels match the pre-vectorisation reference."""

    @pytest.mark.parametrize(
        "n,c,h,w,oc,k,stride,pad",
        [
            (4, 3, 12, 12, 6, 3, 1, 1),
            (2, 5, 9, 11, 4, 3, 2, 0),
            (3, 2, 8, 8, 7, 5, 1, 2),
            (2, 3, 10, 10, 4, 3, 3, 1),
            (1, 1, 4, 4, 1, 1, 1, 0),
            (2, 3, 7, 9, 5, 2, 2, 1),
        ],
    )
    def test_matches_legacy_kernels(self, rng, n, c, h, w, oc, k, stride, pad):
        x_val = rng.normal(size=(n, c, h, w))
        w_val = rng.normal(size=(oc, c, k, k))
        out_h = (h + 2 * pad - k) // stride + 1
        out_w = (w + 2 * pad - k) // stride + 1
        grad = rng.normal(size=(n, oc, out_h, out_w))

        x1, w1 = Tensor(x_val, requires_grad=True), Tensor(w_val, requires_grad=True)
        out1 = conv2d(x1, w1, stride=stride, padding=pad)
        out1.backward(grad)
        with legacy_conv_kernels():
            x2 = Tensor(x_val, requires_grad=True)
            w2 = Tensor(w_val, requires_grad=True)
            out2 = conv2d(x2, w2, stride=stride, padding=pad)
            out2.backward(grad)
        np.testing.assert_allclose(out1.data, out2.data, rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(x1.grad, x2.grad, rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(w1.grad, w2.grad, rtol=1e-11, atol=1e-12)

    def test_leaf_input_gradient_skipped(self, rng):
        """A non-differentiable conv input gets no materialised grad."""
        x = Tensor(rng.normal(size=(2, 3, 6, 6)))
        w = Tensor(rng.normal(size=(4, 3, 3, 3)), requires_grad=True)
        conv2d(x, w, padding=1).sum().backward()
        assert w.grad is not None
        assert x.grad is None

    def test_chained_conv_input_gradient_flows(self, rng):
        """Interior conv inputs (required upstream) still get gradients."""
        x = Tensor(rng.normal(size=(1, 2, 6, 6)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True)
        conv2d(x, w, padding=1).sum().backward()
        assert x.grad is not None and x.grad.shape == x.data.shape

    def test_legacy_context_restores_flag(self):
        from repro.models import autodiff

        assert not autodiff._LEGACY_CONV_KERNELS
        assert not autodiff.legacy_kernels_active()
        with legacy_conv_kernels():
            assert autodiff._LEGACY_CONV_KERNELS
            assert autodiff.legacy_kernels_active()
        assert not autodiff._LEGACY_CONV_KERNELS

    @pytest.mark.parametrize(
        "n,c,h,w,oc,k,stride,pad",
        [(4, 3, 12, 12, 6, 3, 1, 1), (2, 5, 9, 11, 4, 3, 2, 0), (3, 2, 8, 8, 7, 5, 1, 2)],
    )
    def test_cnhw_matches_nchw(self, rng, n, c, h, w, oc, k, stride, pad):
        """The channel-major conv equals the NCHW conv (transposed I/O)."""
        x_val = rng.normal(size=(n, c, h, w))
        w_val = rng.normal(size=(oc, c, k, k))
        out_h = (h + 2 * pad - k) // stride + 1
        out_w = (w + 2 * pad - k) // stride + 1
        grad = rng.normal(size=(n, oc, out_h, out_w))

        x1, w1 = Tensor(x_val, requires_grad=True), Tensor(w_val, requires_grad=True)
        out1 = conv2d(x1, w1, stride=stride, padding=pad)
        out1.backward(grad)

        x2 = Tensor(x_val.transpose(1, 0, 2, 3).copy(), requires_grad=True)
        w2 = Tensor(w_val, requires_grad=True)
        out2 = conv2d_cnhw(x2, w2, stride=stride, padding=pad)
        out2.backward(grad.transpose(1, 0, 2, 3))

        np.testing.assert_allclose(
            out2.data, out1.data.transpose(1, 0, 2, 3), rtol=1e-12, atol=1e-12
        )
        np.testing.assert_allclose(
            x2.grad, x1.grad.transpose(1, 0, 2, 3), rtol=1e-11, atol=1e-12
        )
        np.testing.assert_allclose(w2.grad, w1.grad, rtol=1e-11, atol=1e-12)

    def test_cnhw_rejects_channel_mismatch(self, rng):
        # Channel-major input has 4 channel rows; the weight expects 2.
        x = Tensor(rng.normal(size=(4, 2, 6, 6)))
        w = Tensor(rng.normal(size=(3, 2, 3, 3)))
        with pytest.raises(ValueError):
            conv2d_cnhw(x, w)


class TestWorkerBlockedCrossEntropy:
    """softmax_cross_entropy_workers equals W sequential CE calls."""

    def test_matches_per_worker_cross_entropy(self, rng):
        workers, local, classes = 4, 8, 5
        logits_val = rng.normal(size=(workers * local, classes))
        labels = rng.integers(0, classes, size=workers * local)

        blocked = Tensor(logits_val, requires_grad=True)
        node, losses = softmax_cross_entropy_workers(blocked, labels, workers)
        node.backward()

        for worker in range(workers):
            rows = slice(worker * local, (worker + 1) * local)
            single = Tensor(logits_val[rows], requires_grad=True)
            loss = softmax_cross_entropy(single, labels[rows])
            loss.backward()
            assert float(loss.data) == float(losses[worker])
            np.testing.assert_array_equal(blocked.grad[rows], single.grad)

    def test_rejects_padded_labels_and_bad_shapes(self, rng):
        logits = Tensor(rng.normal(size=(8, 3)), requires_grad=True)
        with pytest.raises(ValueError):
            softmax_cross_entropy_workers(logits, np.array([0, 1, -1, 0, 1, 2, 0, 1]), 2)
        with pytest.raises(ValueError):
            softmax_cross_entropy_workers(logits, np.zeros(8, dtype=int), 3)
        with pytest.raises(ValueError):
            softmax_cross_entropy_workers(logits, np.zeros(4, dtype=int), 2)


class TestEngine:
    def test_backward_requires_scalar(self, rng):
        t = Tensor(rng.normal(size=4), requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2.0).backward()

    def test_gradient_accumulates_across_uses(self, rng):
        t = Tensor(np.array([2.0]), requires_grad=True)
        loss = (t * t).sum()  # d/dt t^2 = 2t
        loss.backward()
        np.testing.assert_allclose(t.grad, [4.0])

    def test_diamond_graph(self):
        t = Tensor(np.array([3.0]), requires_grad=True)
        a = t * 2.0
        b = t * 5.0
        (a + b).sum().backward()
        np.testing.assert_allclose(t.grad, [7.0])

    def test_no_grad_without_requires(self, rng):
        t = Tensor(rng.normal(size=3))
        out = (t * 2.0).sum()
        out.backward()
        assert t.grad is None

    def test_zero_grad(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        (t * 1.0).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_deep_chain_iterative_toposort(self):
        # 2000-deep chain: a recursive topo-sort would blow the stack.
        t = Tensor(np.array([1.0]), requires_grad=True)
        node = t
        for _ in range(2000):
            node = node + Tensor(np.array([0.0]))
        node.sum().backward()
        np.testing.assert_allclose(t.grad, [1.0])
