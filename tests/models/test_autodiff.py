"""Autodiff tape: every op checked against central finite differences."""

import numpy as np
import pytest

from repro.models.autodiff import (
    Tensor,
    avg_pool2d,
    conv2d,
    embedding,
    exp,
    layer_norm,
    log,
    matmul,
    power,
    relu,
    softmax,
    softmax_cross_entropy,
    tanh,
    tensor_mean,
    tensor_sum,
)
from repro.utils.seeding import new_rng


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def check_gradient(build_loss, x: np.ndarray, atol=1e-5, rtol=1e-4):
    """Compare tape gradient against finite differences."""
    t = Tensor(x.copy(), requires_grad=True)
    loss = build_loss(t)
    loss.backward()

    def scalar_fn(arr):
        return float(build_loss(Tensor(arr)).data)

    expected = numerical_grad(scalar_fn, x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=atol, rtol=rtol)


class TestElementwise:
    def test_add_broadcast(self, rng):
        x = rng.normal(size=(3, 4))
        bias = Tensor(rng.normal(size=4))
        check_gradient(lambda t: (t + bias).sum(), x)

    def test_mul_broadcast_gradients_both_sides(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=3), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, np.broadcast_to(b.data, (2, 3)))
        np.testing.assert_allclose(b.grad, a.data.sum(axis=0))

    def test_power(self, rng):
        x = np.abs(rng.normal(size=6)) + 0.5
        check_gradient(lambda t: power(t, 3.0).sum(), x)

    def test_exp_log(self, rng):
        x = np.abs(rng.normal(size=5)) + 0.5
        check_gradient(lambda t: exp(t).sum(), x)
        check_gradient(lambda t: log(t).sum(), x)

    def test_relu_grad_zero_below(self):
        t = Tensor(np.array([-1.0, 2.0]), requires_grad=True)
        relu(t).sum().backward()
        np.testing.assert_array_equal(t.grad, [0.0, 1.0])

    def test_tanh(self, rng):
        check_gradient(lambda t: tanh(t).sum(), rng.normal(size=7))

    def test_sub_and_div(self, rng):
        x = rng.normal(size=4)
        check_gradient(lambda t: (t - 2.0).sum(), x)
        check_gradient(lambda t: (t / 2.0).sum(), x)


class TestMatmul:
    def test_2d(self, rng):
        w = Tensor(rng.normal(size=(4, 3)))
        x = rng.normal(size=(5, 4))
        check_gradient(lambda t: matmul(t, w).sum(), x)

    def test_2d_weight_gradient(self, rng):
        x = Tensor(rng.normal(size=(5, 4)))
        w = rng.normal(size=(4, 3))
        check_gradient(lambda t: matmul(x, t).sum(), w)

    def test_batched_lhs(self, rng):
        w = Tensor(rng.normal(size=(4, 3)))
        x = rng.normal(size=(2, 5, 4))
        check_gradient(lambda t: matmul(t, w).sum(), x)

    def test_batched_weight_broadcast(self, rng):
        x = Tensor(rng.normal(size=(2, 5, 4)))
        w = rng.normal(size=(4, 3))
        check_gradient(lambda t: matmul(x, t).sum(), w)

    def test_batched_both(self, rng):
        b = Tensor(rng.normal(size=(2, 4, 3)))
        a = rng.normal(size=(2, 5, 4))
        check_gradient(lambda t: matmul(t, b).sum(), a)


class TestReductionsAndShape:
    def test_sum_axis(self, rng):
        x = rng.normal(size=(3, 4))
        check_gradient(lambda t: (tensor_sum(t, axis=0) * 2.0).sum(), x)

    def test_sum_keepdims(self, rng):
        x = rng.normal(size=(3, 4))
        check_gradient(lambda t: (t * tensor_sum(t, axis=1, keepdims=True)).sum(), x)

    def test_mean_tuple_axis(self, rng):
        x = rng.normal(size=(2, 3, 4))
        check_gradient(lambda t: tensor_mean(t, axis=(1, 2)).sum(), x)

    def test_reshape_transpose(self, rng):
        x = rng.normal(size=(3, 4))
        check_gradient(lambda t: (t.reshape(12) * np.arange(12.0)).sum(), x)
        check_gradient(lambda t: (t.transpose() @ Tensor(np.ones(3))).sum(), x)

    def test_transpose_axes(self, rng):
        x = rng.normal(size=(2, 3, 4))
        check_gradient(lambda t: (t.transpose((0, 2, 1)) * 1.5).sum(), x)


class TestFusedOps:
    def test_softmax_rows_sum_to_one(self, rng):
        out = softmax(Tensor(rng.normal(size=(4, 6))))
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(4))

    def test_softmax_gradient(self, rng):
        x = rng.normal(size=(3, 5))
        coeff = rng.normal(size=(3, 5))
        check_gradient(lambda t: (softmax(t) * Tensor(coeff)).sum(), x)

    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.normal(size=(4, 3))
        labels = np.array([0, 2, 1, 1])
        loss = softmax_cross_entropy(Tensor(logits), labels)
        shifted = logits - logits.max(axis=1, keepdims=True)
        logp = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -logp[np.arange(4), labels].mean()
        assert float(loss.data) == pytest.approx(expected)

    def test_cross_entropy_gradient(self, rng):
        labels = np.array([1, 0, 2])
        x = rng.normal(size=(3, 4))
        check_gradient(lambda t: softmax_cross_entropy(t, labels), x)

    def test_cross_entropy_sequence_with_padding(self, rng):
        logits = rng.normal(size=(2, 3, 4))
        labels = np.array([[1, 2, -1], [0, -1, -1]])  # -1 = pad
        x = logits.copy()
        check_gradient(lambda t: softmax_cross_entropy(t, labels), x)
        # Padded positions must receive zero gradient.
        t = Tensor(logits, requires_grad=True)
        softmax_cross_entropy(t, labels).backward()
        np.testing.assert_array_equal(t.grad[0, 2], np.zeros(4))

    def test_layer_norm_gradient(self, rng):
        gamma = Tensor(rng.normal(size=5) + 1.0)
        beta = Tensor(rng.normal(size=5))
        x = rng.normal(size=(3, 5))
        check_gradient(
            lambda t: (layer_norm(t, gamma, beta) * 0.7).sum(), x, atol=1e-4
        )

    def test_layer_norm_param_gradients(self, rng):
        x = Tensor(rng.normal(size=(3, 5)))
        gamma_val = rng.normal(size=5) + 1.0
        beta_val = rng.normal(size=5)
        check_gradient(
            lambda t: layer_norm(x, t, Tensor(beta_val)).sum(), gamma_val
        )
        check_gradient(
            lambda t: layer_norm(x, Tensor(gamma_val), t).sum(), beta_val
        )

    def test_layer_norm_output_standardised(self, rng):
        out = layer_norm(
            Tensor(rng.normal(size=(4, 8)) * 5 + 3), Tensor(np.ones(8)), Tensor(np.zeros(8))
        )
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(4), atol=1e-9)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones(4), atol=1e-4)

    def test_embedding_gradient_scatter(self, rng):
        table_val = rng.normal(size=(6, 3))
        ids = np.array([[1, 1], [4, 0]])
        check_gradient(lambda t: (embedding(t, ids) * 2.0).sum(), table_val)


class TestConvPool:
    def test_conv2d_matches_naive(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        out = conv2d(Tensor(x), Tensor(w), stride=1, padding=1)
        # Naive direct convolution reference.
        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        expected = np.zeros((2, 4, 6, 6))
        for n in range(2):
            for o in range(4):
                for i in range(6):
                    for j in range(6):
                        expected[n, o, i, j] = np.sum(
                            padded[n, :, i : i + 3, j : j + 3] * w[o]
                        )
        np.testing.assert_allclose(out.data, expected, atol=1e-10)

    def test_conv2d_input_gradient(self, rng):
        w = Tensor(rng.normal(size=(2, 1, 3, 3)))
        x = rng.normal(size=(1, 1, 5, 5))
        check_gradient(lambda t: conv2d(t, w, padding=1).sum(), x, atol=1e-4)

    def test_conv2d_weight_gradient(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 5, 5)))
        w = rng.normal(size=(3, 2, 3, 3))
        check_gradient(lambda t: conv2d(x, t, padding=1).sum(), w, atol=1e-4)

    def test_conv2d_stride(self, rng):
        out = conv2d(
            Tensor(rng.normal(size=(1, 1, 8, 8))),
            Tensor(rng.normal(size=(1, 1, 3, 3))),
            stride=2,
            padding=1,
        )
        assert out.data.shape == (1, 1, 4, 4)

    def test_avg_pool(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        out = avg_pool2d(Tensor(x), 2)
        assert out.data.shape == (1, 2, 2, 2)
        assert out.data[0, 0, 0, 0] == pytest.approx(x[0, 0, :2, :2].mean())

    def test_avg_pool_gradient(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        check_gradient(lambda t: (avg_pool2d(t, 2) * 3.0).sum(), x)

    def test_avg_pool_indivisible_rejected(self, rng):
        with pytest.raises(ValueError):
            avg_pool2d(Tensor(rng.normal(size=(1, 1, 5, 5))), 2)


class TestEngine:
    def test_backward_requires_scalar(self, rng):
        t = Tensor(rng.normal(size=4), requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2.0).backward()

    def test_gradient_accumulates_across_uses(self, rng):
        t = Tensor(np.array([2.0]), requires_grad=True)
        loss = (t * t).sum()  # d/dt t^2 = 2t
        loss.backward()
        np.testing.assert_allclose(t.grad, [4.0])

    def test_diamond_graph(self):
        t = Tensor(np.array([3.0]), requires_grad=True)
        a = t * 2.0
        b = t * 5.0
        (a + b).sum().backward()
        np.testing.assert_allclose(t.grad, [7.0])

    def test_no_grad_without_requires(self, rng):
        t = Tensor(rng.normal(size=3))
        out = (t * 2.0).sum()
        out.backward()
        assert t.grad is None

    def test_zero_grad(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        (t * 1.0).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_deep_chain_iterative_toposort(self):
        # 2000-deep chain: a recursive topo-sort would blow the stack.
        t = Tensor(np.array([1.0]), requires_grad=True)
        node = t
        for _ in range(2000):
            node = node + Tensor(np.array([0.0]))
        node.sum().backward()
        np.testing.assert_allclose(t.grad, [1.0])
