"""TinyResNet: residual blocks through the autodiff tape."""

import numpy as np
import pytest

from repro.models.autodiff import Tensor
from repro.models.nn.resnet_tiny import TinyResNet
from repro.optim.sgd import SGD
from repro.train.synthetic import make_synthetic_images
from repro.utils.seeding import new_rng


class TestForward:
    def test_logit_shape(self, rng):
        model = TinyResNet(width=4, num_classes=5, image_size=8)
        params = {k: Tensor(v) for k, v in model.init_params(rng).items()}
        x = Tensor(rng.normal(size=(3, 3, 8, 8)))
        assert model.logits(params, x).data.shape == (3, 5)

    def test_residual_identity_at_zero_weights(self, rng):
        # With zero block weights the blocks are relu(identity): the
        # network reduces to stem + head (skip connections pass through).
        model = TinyResNet(width=4, num_classes=3, image_size=8)
        params = model.init_params(rng)
        for name in params:
            if "block" in name:
                params[name] = np.zeros_like(params[name])
        t = {k: Tensor(v) for k, v in params.items()}
        x = Tensor(np.abs(rng.normal(size=(2, 3, 8, 8))))
        out = model.logits(t, x)
        assert np.isfinite(out.data).all()

    def test_gradients_flow_through_skip(self, rng):
        model = TinyResNet(width=4, num_classes=3, image_size=8)
        params = model.init_params(rng)
        x, y = make_synthetic_images(6, num_classes=3, image_size=8, rng=rng)
        _, grads, _ = model.loss_and_grad(params, x, y)
        for name, g in grads.items():
            assert g is not None and np.isfinite(g).all(), name
            # Every layer receives signal (residual nets don't dead-end).
            assert np.abs(g).max() > 0, name


class TestTraining:
    def test_learns_pattern_task(self, rng):
        x, y = make_synthetic_images(
            160, num_classes=3, image_size=8, noise=0.8, rng=rng
        )
        model = TinyResNet(width=6, num_classes=3, image_size=8)
        params = model.init_params(rng)
        opt = SGD(lr=0.1, momentum=0.9)
        first_loss = None
        loss = None
        steps_rng = new_rng(0)
        for _ in range(40):
            idx = steps_rng.choice(len(x), size=32, replace=False)
            loss, grads, _ = model.loss_and_grad(params, x[idx], y[idx])
            if first_loss is None:
                first_loss = loss
            opt.step(params, grads)
        assert loss < first_loss

    def test_distributed_training_with_mstopk(self, rng):
        from repro.cluster.cloud_presets import make_cluster
        from repro.train.algorithms import make_scheme
        from repro.train.trainer import DistributedTrainer

        x, y = make_synthetic_images(256, num_classes=3, image_size=8, rng=rng)
        net = make_cluster(2, "tencent", gpus_per_node=2)
        model = TinyResNet(width=4, num_classes=3, image_size=8)
        trainer = DistributedTrainer(
            model, make_scheme("mstopk", net, density=0.1),
            optimizer=SGD(lr=0.1), seed=0,
        )
        report = trainer.train(x, y, epochs=4, local_batch=8)
        assert report.epoch_losses[-1] < report.epoch_losses[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            TinyResNet(width=0)
