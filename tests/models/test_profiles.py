"""Model profiles: the inventories the paper's numbers depend on."""

import pytest

from repro.models.profiles import (
    get_profile,
    resnet50_profile,
    transformer_profile,
    vgg19_profile,
)


class TestResNet50:
    def test_exactly_161_tensors(self):
        # "the ResNet-50 model, which has 161 layers" (§4.2).
        assert resnet50_profile().num_layers == 161

    def test_parameter_count(self):
        # Standard ResNet-50: 25.557M parameters.
        params = resnet50_profile().num_params
        assert params == pytest.approx(25.56e6, rel=0.005)

    def test_conv1_and_fc_present(self):
        profile = resnet50_profile()
        assert "conv1.weight" in profile.layer_names
        assert "fc.weight" in profile.layer_names
        fc_idx = profile.layer_names.index("fc.weight")
        assert profile.layer_sizes[fc_idx] == 2048 * 1000

    def test_throughput_table(self):
        profile = resnet50_profile()
        # Table 4 single-GPU rates.
        assert profile.single_gpu_throughput(96) == 4400
        assert profile.single_gpu_throughput(224) == 1240
        # §5.5.2 baseline.
        assert profile.table3_single_gpu == 1150

    def test_unknown_resolution(self):
        with pytest.raises(KeyError):
            resnet50_profile().single_gpu_throughput(512)


class TestVGG19:
    def test_parameter_count(self):
        # VGG-19: 143.67M parameters.
        assert vgg19_profile().num_params == pytest.approx(143.67e6, rel=0.005)

    def test_tensor_count(self):
        # 16 convs + 3 fc, each with weight + bias.
        assert vgg19_profile().num_layers == 38

    def test_fc_layers_dominate(self):
        profile = vgg19_profile()
        fc0 = profile.layer_sizes[profile.layer_names.index("fc0.weight")]
        assert fc0 == 512 * 7 * 7 * 4096


class TestTransformer:
    def test_parameter_count_near_110m(self):
        # "110 million parameters for Transformer" (§5.3).
        assert transformer_profile().num_params == pytest.approx(110e6, rel=0.03)

    def test_single_gpu_rate(self):
        assert transformer_profile().table3_single_gpu == 32

    def test_lamb_kernels_heavier_than_lars(self):
        assert (
            transformer_profile().lars_kernels_per_layer
            > resnet50_profile().lars_kernels_per_layer
        )

    def test_sample_unit(self):
        assert "256 words" in transformer_profile().sample_unit


class TestRegistry:
    def test_get_profile_variants(self):
        assert get_profile("resnet50").name == "ResNet-50"
        assert get_profile("ResNet-50").name == "ResNet-50"
        assert get_profile("VGG19").name == "VGG-19"

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_profile("alexnet")

    def test_no_calibration_raises(self):
        from repro.models.profiles import ModelProfile

        empty = ModelProfile("x", ("a",), (1,))
        with pytest.raises(ValueError):
            empty.single_gpu_throughput()
