"""Trainable NumPy models: learning signal + interface contracts."""

import numpy as np
import pytest

from repro.models.nn.convnet import SmallConvNet
from repro.models.nn.mlp import MLPClassifier
from repro.models.nn.transformer import TinyTransformer, make_copy_task
from repro.optim.sgd import SGD
from repro.train.synthetic import make_spiral_classification, make_synthetic_images
from repro.utils.seeding import new_rng


def train_steps(model, params, x, y, steps=60, lr=0.1, batch=32):
    opt = SGD(lr=lr, momentum=0.9)
    losses = []
    rng = new_rng(0)
    for _ in range(steps):
        idx = rng.choice(len(x), size=min(batch, len(x)), replace=False)
        loss, grads, _ = model.loss_and_grad(params, x[idx], y[idx])
        opt.step(params, grads)
        losses.append(loss)
    return losses


class TestMLP:
    def test_param_shapes(self, rng):
        model = MLPClassifier(input_dim=2, hidden=(8, 8), num_classes=3)
        params = model.init_params(rng)
        assert params["fc0.weight"].shape == (2, 8)
        assert params["fc2.weight"].shape == (8, 3)
        assert set(params) == {
            "fc0.weight", "fc0.bias", "fc1.weight", "fc1.bias",
            "fc2.weight", "fc2.bias",
        }

    def test_training_reduces_loss(self, rng):
        x, y = make_spiral_classification(256, num_classes=3, rng=rng)
        model = MLPClassifier(input_dim=2, hidden=(24,), num_classes=3)
        params = model.init_params(rng)
        losses = train_steps(model, params, x, y)
        assert np.mean(losses[-10:]) < 0.5 * losses[0]

    def test_topk_evaluate(self, rng):
        model = MLPClassifier(input_dim=2, hidden=(4,), num_classes=4)
        params = model.init_params(rng)
        x, y = make_spiral_classification(64, num_classes=4, rng=rng)
        top1 = model.evaluate(params, x, y, topk=1)
        top4 = model.evaluate(params, x, y, topk=4)
        assert 0.0 <= top1 <= top4 <= 1.0
        assert top4 == 1.0  # top-C is always perfect

    def test_predict_shape(self, rng):
        model = MLPClassifier(input_dim=2, hidden=(4,), num_classes=3)
        params = model.init_params(rng)
        preds = model.predict(params, rng.normal(size=(10, 2)))
        assert preds.shape == (10,)
        assert preds.max() < 3

    def test_validation(self):
        with pytest.raises(ValueError):
            MLPClassifier(input_dim=0)
        with pytest.raises(ValueError):
            MLPClassifier(input_dim=2, num_classes=1)


class TestConvNet:
    def test_training_reduces_loss(self, rng):
        x, y = make_synthetic_images(192, num_classes=3, image_size=12, rng=rng)
        model = SmallConvNet(channels=(6, 8), num_classes=3, image_size=12)
        params = model.init_params(rng)
        losses = train_steps(model, params, x, y, steps=50, lr=0.1)
        assert np.mean(losses[-10:]) < 0.8 * losses[0]

    def test_gradients_for_all_params(self, rng):
        model = SmallConvNet(channels=(4, 4), num_classes=3, image_size=8)
        params = model.init_params(rng)
        x, y = make_synthetic_images(8, num_classes=3, image_size=8, rng=rng)
        _, grads, metrics = model.loss_and_grad(params, x, y)
        assert set(grads) == set(params)
        for name, g in grads.items():
            assert g.shape == params[name].shape
            assert np.isfinite(g).all()
        assert 0.0 <= metrics["accuracy"] <= 1.0

    def test_odd_image_size_rejected(self):
        with pytest.raises(ValueError):
            SmallConvNet(image_size=13)


class TestTinyTransformer:
    def test_copy_task_learnable(self, rng):
        x, y = make_copy_task(rng, num_samples=512, vocab_size=16, seq_len=8)
        model = TinyTransformer(vocab_size=16, d_model=24, d_ff=48, max_len=8)
        params = model.init_params(rng)
        losses = train_steps(model, params, x, y, steps=120, lr=0.3, batch=64)
        assert np.mean(losses[-10:]) < 0.6 * np.mean(losses[:5])

    def test_shift_task_needs_attention(self, rng):
        # y depends on the *neighbouring* token, so accuracy above chance
        # proves attention moved information across positions.
        x, y = make_copy_task(rng, num_samples=600, vocab_size=12, seq_len=6, shift=1)
        model = TinyTransformer(vocab_size=12, d_model=24, d_ff=48, max_len=6)
        params = model.init_params(rng)
        train_steps(model, params, x, y, steps=250, lr=0.3, batch=64)
        acc = model.evaluate(params, x[:200], y[:200])
        assert acc > 2.5 / 12  # comfortably above the 1/12 chance level

    def test_padding_ignored_in_loss(self, rng):
        model = TinyTransformer(vocab_size=8, d_model=8, d_ff=16, max_len=4)
        params = model.init_params(rng)
        x = rng.integers(1, 8, size=(2, 4))
        y_full = rng.integers(0, 8, size=(2, 4))
        y_pad = y_full.copy()
        y_pad[:, 2:] = -1
        loss_full, _, _ = model.loss_and_grad(params, x, y_full)
        loss_pad, _, _ = model.loss_and_grad(params, x, y_pad)
        assert loss_full != loss_pad  # padding actually changes the loss

    def test_sequence_too_long_rejected(self, rng):
        model = TinyTransformer(vocab_size=8, max_len=4)
        params = {k: v for k, v in model.init_params(rng).items()}
        from repro.models.autodiff import Tensor

        tensors = {k: Tensor(v) for k, v in params.items()}
        with pytest.raises(ValueError):
            model.logits(tensors, rng.integers(1, 8, size=(1, 6)))

    def test_copy_task_shift_validation(self, rng):
        with pytest.raises(ValueError):
            make_copy_task(rng, num_samples=4, seq_len=4, shift=4)

    def test_odd_d_model_rejected(self):
        with pytest.raises(ValueError):
            TinyTransformer(d_model=15)
