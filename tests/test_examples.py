"""Every example script must run to completion.

Examples are part of the public contract; a release whose quickstart
crashes is broken regardless of unit-test state.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable floor


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, f"{script.name} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{script.name} produced no output"


def test_quickstart_mentions_key_concepts():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert "MSTopK" in proc.stdout
    assert "HiTopKComm" in proc.stdout
