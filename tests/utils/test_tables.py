"""Table rendering for harness output."""

from repro.utils.tables import format_table, print_table


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        out = format_table(["a", "b"], [["x", 1.0], ["y", 2.5]])
        assert "a" in out and "b" in out
        assert "x" in out and "y" in out

    def test_title_rendered(self):
        out = format_table(["col"], [["v"]], title="My Table")
        assert out.startswith("My Table")

    def test_large_numbers_have_separators(self):
        out = format_table(["n"], [[133376.0]])
        assert "133,376" in out

    def test_small_floats_rendered(self):
        out = format_table(["n"], [[0.00123]])
        assert "0.00123" in out

    def test_columns_aligned(self):
        out = format_table(["name", "v"], [["long-name", 1.0], ["x", 22.0]])
        lines = out.splitlines()
        # All data lines share the same width.
        assert len(lines[-1]) == len(lines[-2])

    def test_print_table(self, capsys):
        print_table(["h"], [["row"]], title="T")
        captured = capsys.readouterr()
        assert "T" in captured.out and "row" in captured.out
