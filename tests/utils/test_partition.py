"""Partitioning invariants — these underpin every collective."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.partition import (
    chunk_bounds,
    chunk_sizes,
    flatten_tensors,
    partition_indices,
    partition_layers,
    partition_layers_balanced,
    reassemble,
    shard_slice,
    unflatten_tensors,
)


class TestChunkSizes:
    def test_exact_division(self):
        assert chunk_sizes(12, 4) == [3, 3, 3, 3]

    def test_remainder_goes_to_first_chunks(self):
        assert chunk_sizes(10, 3) == [4, 3, 3]

    def test_more_parts_than_total(self):
        assert chunk_sizes(2, 4) == [1, 1, 0, 0]

    def test_zero_total(self):
        assert chunk_sizes(0, 3) == [0, 0, 0]

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            chunk_sizes(10, 0)

    def test_negative_total(self):
        with pytest.raises(ValueError):
            chunk_sizes(-1, 2)

    @given(total=st.integers(0, 10_000), parts=st.integers(1, 64))
    def test_sizes_sum_to_total(self, total, parts):
        sizes = chunk_sizes(total, parts)
        assert sum(sizes) == total
        assert len(sizes) == parts
        # Near-equal: max - min <= 1.
        assert max(sizes) - min(sizes) <= 1


class TestChunkBounds:
    def test_bounds_cover_range(self):
        assert chunk_bounds(10, 3) == [(0, 4), (4, 7), (7, 10)]

    @given(total=st.integers(0, 5_000), parts=st.integers(1, 32))
    def test_bounds_are_contiguous_partition(self, total, parts):
        bounds = chunk_bounds(total, parts)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == total
        for (_, end), (start, _) in zip(bounds, bounds[1:]):
            assert end == start

    def test_shard_slice_matches_bounds(self):
        assert shard_slice(10, 3, 1) == slice(4, 7)

    def test_shard_slice_out_of_range(self):
        with pytest.raises(IndexError):
            shard_slice(10, 3, 3)

    def test_partition_indices_cover_all(self):
        parts = partition_indices(11, 4)
        joined = np.concatenate(parts)
        assert np.array_equal(joined, np.arange(11))


class TestPartitionLayers:
    def test_contiguous_assignment(self):
        assignment = partition_layers([10, 20, 30, 40], 2)
        assert assignment == [[0, 1], [2, 3]]

    def test_more_workers_than_layers(self):
        assignment = partition_layers([5, 5], 4)
        flat = [i for a in assignment for i in a]
        assert sorted(flat) == [0, 1]

    def test_paper_example_resnet(self):
        # 161 layers over 128 GPUs: first GPUs get 2 layers, rest get 1.
        assignment = partition_layers([1] * 161, 128)
        counts = [len(a) for a in assignment]
        assert sum(counts) == 161
        assert set(counts) == {1, 2}
        assert counts[0] == 2  # "The first GPU calculates 1 to 2 layers"

    @given(
        sizes=st.lists(st.integers(1, 1000), min_size=1, max_size=200),
        parts=st.integers(1, 64),
    )
    def test_every_layer_assigned_once(self, sizes, parts):
        assignment = partition_layers(sizes, parts)
        flat = sorted(i for a in assignment for i in a)
        assert flat == list(range(len(sizes)))

    @given(
        sizes=st.lists(st.integers(1, 1000), min_size=1, max_size=100),
        parts=st.integers(1, 16),
    )
    def test_balanced_every_layer_assigned_once(self, sizes, parts):
        assignment = partition_layers_balanced(sizes, parts)
        flat = sorted(i for a in assignment for i in a)
        assert flat == list(range(len(sizes)))

    def test_balanced_is_no_worse_than_contiguous(self):
        sizes = [1000, 1, 1, 1, 1000, 1, 1, 1]
        contiguous = partition_layers(sizes, 2)
        balanced = partition_layers_balanced(sizes, 2)
        load = lambda a: max(sum(sizes[i] for i in w) for w in a)  # noqa: E731
        assert load(balanced) <= load(contiguous)


class TestFlatten:
    @given(
        shapes=st.lists(
            st.tuples(st.integers(1, 5), st.integers(1, 5)), min_size=0, max_size=6
        )
    )
    @settings(max_examples=50)
    def test_roundtrip(self, shapes):
        rng = np.random.default_rng(0)
        tensors = [rng.normal(size=s) for s in shapes]
        flat, recorded = flatten_tensors(tensors)
        restored = unflatten_tensors(flat, recorded)
        assert len(restored) == len(tensors)
        for original, back in zip(tensors, restored):
            np.testing.assert_array_equal(original, back)

    def test_unflatten_size_mismatch(self):
        with pytest.raises(ValueError):
            unflatten_tensors(np.zeros(5), [(2, 2)])

    def test_reassemble(self):
        chunks = [np.array([1.0, 2.0]), np.array([3.0])]
        np.testing.assert_array_equal(reassemble(chunks), [1.0, 2.0, 3.0])

    def test_reassemble_empty(self):
        assert reassemble([]).size == 0
