"""VirtualClock accounting semantics."""

import pytest

from repro.utils.clock import VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_advance_returns_new_time(self):
        clock = VirtualClock()
        assert clock.advance(3.0) == 3.0

    def test_categories(self):
        clock = VirtualClock()
        clock.advance(1.0, category="io")
        clock.advance(2.0, category="compute")
        clock.advance(0.5, category="io")
        assert clock.elapsed("io") == pytest.approx(1.5)
        assert clock.elapsed("compute") == pytest.approx(2.0)
        assert clock.elapsed() == pytest.approx(3.5)

    def test_unknown_category_is_zero(self):
        assert VirtualClock().elapsed("nothing") == 0.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)

    def test_reset(self):
        clock = VirtualClock()
        clock.advance(1.0, category="x")
        clock.reset()
        assert clock.now == 0.0
        assert clock.elapsed("x") == 0.0

    def test_window_measures_inner_time(self):
        clock = VirtualClock()
        clock.advance(1.0)
        with clock.window() as window:
            clock.advance(2.5)
        assert window.duration == pytest.approx(2.5)

    def test_window_duration_live(self):
        clock = VirtualClock()
        with clock.window() as window:
            clock.advance(1.0)
            assert window.duration == pytest.approx(1.0)
            clock.advance(1.0)
        assert window.duration == pytest.approx(2.0)

    def test_snapshot_is_a_copy(self):
        clock = VirtualClock()
        clock.advance(1.0, category="io")
        snap = clock.snapshot()
        snap["io"] = 99.0
        assert clock.elapsed("io") == 1.0
