"""Determinism guarantees of the seeding helpers."""

import numpy as np
import pytest

from repro.utils.seeding import (
    check_seed,
    derive_seed,
    new_rng,
    spawn_rngs,
    worker_rngs,
)


class TestNewRng:
    def test_deterministic(self):
        a = new_rng(42).normal(size=8)
        b = new_rng(42).normal(size=8)
        np.testing.assert_array_equal(a, b)

    def test_default_seed_is_stable(self):
        a = new_rng().normal(size=4)
        b = new_rng().normal(size=4)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(new_rng(1).normal(size=8), new_rng(2).normal(size=8))


class TestSpawn:
    def test_spawn_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_spawn_streams_are_independent(self):
        rngs = spawn_rngs(0, 3)
        draws = [r.normal(size=16) for r in rngs]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_spawn_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_reproducible(self):
        a = [r.normal() for r in spawn_rngs(7, 4)]
        b = [r.normal() for r in spawn_rngs(7, 4)]
        assert a == b


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(1, "worker", 3) == derive_seed(1, "worker", 3)

    def test_path_sensitivity(self):
        assert derive_seed(1, "worker", 3) != derive_seed(1, "worker", 4)
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_worker_rngs_distinct(self):
        rngs = worker_rngs(0, 4)
        draws = {tuple(r.integers(0, 2**32, size=4)) for r in rngs}
        assert len(draws) == 4


class TestCheckSeed:
    def test_accepts_int(self):
        assert check_seed(5) == 5

    def test_accepts_numpy_int(self):
        assert check_seed(np.int64(5)) == 5

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_seed(1.5)
