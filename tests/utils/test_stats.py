"""Welford statistics vs NumPy reference."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import RunningStat, geometric_mean, summarize

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestRunningStat:
    @given(values=st.lists(finite_floats, min_size=2, max_size=200))
    def test_matches_numpy(self, values):
        stat = summarize(values)
        assert stat.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)
        assert stat.std == pytest.approx(np.std(values, ddof=1), rel=1e-6, abs=1e-5)
        assert stat.min == min(values)
        assert stat.max == max(values)

    def test_single_value(self):
        stat = summarize([3.0])
        assert stat.mean == 3.0
        assert stat.std == 0.0

    def test_empty_variance(self):
        assert RunningStat().variance == 0.0

    @given(
        a=st.lists(finite_floats, min_size=1, max_size=50),
        b=st.lists(finite_floats, min_size=1, max_size=50),
    )
    def test_merge_equals_combined(self, a, b):
        merged = summarize(a).merge(summarize(b))
        combined = summarize(a + b)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(combined.variance, rel=1e-6, abs=1e-5)

    def test_merge_with_empty(self):
        stat = summarize([1.0, 2.0])
        stat.merge(RunningStat())
        assert stat.count == 2

    def test_total(self):
        assert summarize([1.0, 2.0, 3.0]).total == pytest.approx(6.0)


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])
