"""Unit conversions and formatting."""

import pytest

from repro.utils.units import (
    BYTES_FP16,
    BYTES_FP32,
    GiB,
    MiB,
    bytes_per_sec_to_gbps,
    format_bytes,
    format_rate,
    format_seconds,
    gbps_to_bytes_per_sec,
)


class TestConversions:
    def test_25gbe(self):
        # 25 Gbps = 3.125 GB/s — the paper's inter-node link.
        assert gbps_to_bytes_per_sec(25) == pytest.approx(3.125e9)

    def test_roundtrip(self):
        assert bytes_per_sec_to_gbps(gbps_to_bytes_per_sec(32)) == pytest.approx(32)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gbps_to_bytes_per_sec(-1)
        with pytest.raises(ValueError):
            bytes_per_sec_to_gbps(-1)

    def test_wire_format_constants(self):
        assert BYTES_FP32 == 4
        assert BYTES_FP16 == 2


class TestFormatting:
    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(3 * MiB) == "3.00 MiB"
        assert format_bytes(2 * GiB) == "2.00 GiB"

    def test_format_seconds_ranges(self):
        assert "µs" in format_seconds(5e-6)
        assert "ms" in format_seconds(0.005)
        assert format_seconds(1.5) == "1.50 s"
        assert "min" in format_seconds(150)

    def test_format_seconds_zero_and_negative(self):
        assert format_seconds(0) == "0 s"
        assert format_seconds(-0.005).startswith("-")

    def test_format_rate(self):
        assert format_rate(133376) == "133,376"
        assert format_rate(678) == "678"
        assert format_rate(32.4) == "32.4"
