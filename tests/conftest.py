"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cloud_presets import make_cluster, paper_testbed
from repro.utils.seeding import new_rng


@pytest.fixture
def rng():
    """Fresh deterministic generator per test."""
    return new_rng(1234)


@pytest.fixture
def small_cluster():
    """2 nodes x 4 GPUs — the smallest cluster where the hierarchy matters."""
    return make_cluster(2, "tencent", gpus_per_node=4)


@pytest.fixture
def tiny_cluster():
    """2 nodes x 2 GPUs — for expensive functional tests."""
    return make_cluster(2, "tencent", gpus_per_node=2)


@pytest.fixture(scope="session")
def testbed():
    """The paper's 16x8 testbed (session-scoped; it is immutable)."""
    return paper_testbed()


def make_worker_grads(rng: np.random.Generator, world: int, d: int) -> list[np.ndarray]:
    """Helper used across comm/collective tests."""
    return [rng.normal(size=d) for _ in range(world)]
