"""The run-everything entry point."""

import inspect

from repro.experiments.runner import EXPERIMENTS, FAST_AWARE, main


class TestRunner:
    def test_all_experiments_registered(self):
        names = [name for name, _ in EXPERIMENTS]
        assert len(names) == 16
        for expected in ("Table 1", "Fig. 1", "Fig. 6", "Fig. 7", "Fig. 8",
                         "Fig. 9", "Fig. 10", "Table 2", "Table 3",
                         "Table 4", "Table 5", "Elastic churn",
                         "Multi-tenant sched", "Fault drills",
                         "Brain autotune"):
            assert any(expected in n for n in names), expected

    def test_only_filter_runs_one(self, capsys):
        assert main(["--only", "Table 1"]) == 0
        out = capsys.readouterr().out
        assert "p3.16xlarge" in out
        assert "HiTopKComm" not in out  # Fig. 7 was filtered out

    def test_only_filter_case_insensitive(self, capsys):
        assert main(["--only", "table 4"]) == 0
        assert "128-GPU" in capsys.readouterr().out


class TestFastFlag:
    def test_fast_aware_mains_accept_fast(self):
        by_name = dict(EXPERIMENTS)
        for name in FAST_AWARE:
            assert name in by_name, name
            params = inspect.signature(by_name[name]).parameters
            assert "fast" in params, f"{name} main() lacks a fast kwarg"
            assert params["fast"].default is False

    def test_fast_fig6_skips_cpu_measurement(self, capsys):
        assert main(["--only", "Fig. 6", "--fast"]) == 0
        out = capsys.readouterr().out
        # CPU column rendered as '-' when measurement is skipped.
        assert "V100 projected" in out
        assert "MSTopK" in out

    def test_fast_fig10_trims_epochs(self, capsys):
        from repro.experiments.fig10_convergence import FAST_EPOCHS

        assert main(["--only", "Fig. 10", "--fast"]) == 0
        out = capsys.readouterr().out
        # The per-epoch table stops at the trimmed epoch count.
        assert f"\n{FAST_EPOCHS - 1} " in out
        assert f"\n{FAST_EPOCHS} " not in out

    def test_fast_elastic_churn(self, capsys):
        assert main(["--only", "Elastic churn", "--fast"]) == 0
        assert "goodput" in capsys.readouterr().out
