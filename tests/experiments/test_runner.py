"""The run-everything entry point."""

from repro.experiments.runner import EXPERIMENTS, main


class TestRunner:
    def test_all_experiments_registered(self):
        names = [name for name, _ in EXPERIMENTS]
        assert len(names) == 13
        for expected in ("Table 1", "Fig. 1", "Fig. 6", "Fig. 7", "Fig. 8",
                         "Fig. 9", "Fig. 10", "Table 2", "Table 3",
                         "Table 4", "Table 5", "Elastic churn"):
            assert any(expected in n for n in names), expected

    def test_only_filter_runs_one(self, capsys):
        assert main(["--only", "Table 1"]) == 0
        out = capsys.readouterr().out
        assert "p3.16xlarge" in out
        assert "HiTopKComm" not in out  # Fig. 7 was filtered out

    def test_only_filter_case_insensitive(self, capsys):
        assert main(["--only", "table 4"]) == 0
        assert "128-GPU" in capsys.readouterr().out
