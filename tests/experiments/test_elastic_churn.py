"""Elastic churn harness: the qualitative story must hold at small scale."""

from repro.experiments import elastic_churn


class TestElasticChurn:
    def test_sweep_shapes_and_headline(self):
        results = elastic_churn.run(
            schemes=("dense", "mstopk"),
            rates=(0.0, 0.02),
            iterations=40,
            num_samples=256,
            checkpoint_every=10,
            sigma=0.0,
            seed=11,
        )
        assert set(results) == {
            ("dense", 0.0),
            ("dense", 0.02),
            ("mstopk", 0.0),
            ("mstopk", 0.02),
        }
        # Same churn schedule per rate across schemes.
        dense_churn, _ = results[("dense", 0.02)]
        hitopk_churn, _ = results[("mstopk", 0.02)]
        assert dense_churn.revocations == hitopk_churn.revocations
        assert dense_churn.world_sizes == hitopk_churn.world_sizes
        # Headline: the hierarchical scheme keeps its goodput advantage
        # with and without churn.
        for rate in (0.0, 0.02):
            dense_report, _ = results[("dense", rate)]
            hitopk_report, _ = results[("mstopk", rate)]
            assert hitopk_report.goodput > dense_report.goodput

    def test_small_run_completes(self):
        results = elastic_churn.run(
            schemes=("dense",),
            rates=(0.0,),
            iterations=10,
            num_samples=128,
            checkpoint_every=5,
            sigma=0.0,
        )
        assert results[("dense", 0.0)][0].useful_iterations == 10
