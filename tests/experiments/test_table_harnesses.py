"""Table harnesses (2-5)."""

import pytest

from repro.experiments import (
    table2_validation,
    table3_throughput,
    table4_resolutions,
    table5_dawnbench,
)


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        # Short run for CI; the bench uses the full settings.
        return table2_validation.run(epochs=6, num_samples=512, seed=7)

    def test_three_models(self, rows):
        assert {r.model for r in rows} == {"ResNet-50", "VGG-19", "Transformer"}

    def test_sparse_at_most_slightly_above_dense(self, rows):
        for r in rows:
            assert r.topk <= r.dense + 0.08, r.model
            assert r.mstopk <= r.dense + 0.08, r.model

    def test_everything_learns(self, rows):
        # Chance levels: 1/4 for the 4-class mlp/cnn, 1/32 for the
        # transformer's token vocabulary.  At these short CI settings we
        # only require a clear above-chance signal.
        thresholds = {"ResNet-50": 0.4, "VGG-19": 0.35, "Transformer": 0.05}
        for r in rows:
            assert r.dense > thresholds[r.model], (r.model, r.dense)

    def test_main_prints(self, capsys):
        # main() runs the full default settings; patching run is enough
        # to keep the smoke test fast.
        rows = table2_validation.run(epochs=3, num_samples=256)
        assert rows  # covered by fixture; main covered in bench


class TestTable3:
    def test_cells_count(self):
        rows = table3_throughput.run()
        assert len(rows) == 12

    def test_main_prints(self, capsys):
        table3_throughput.main()
        out = capsys.readouterr().out
        assert "MSTopK-SGD" in out and "Transformer" in out


class TestTable4:
    def test_four_phases(self):
        results = table4_resolutions.run()
        assert [r.phase.resolution for r in results] == [96, 128, 224, 288]

    def test_main_prints(self, capsys):
        table4_resolutions.main()
        assert "128-GPU" in capsys.readouterr().out


class TestTable5:
    @pytest.fixture(scope="class")
    def outcome(self):
        return table5_dawnbench.run()

    def test_record_fastest(self, outcome):
        from repro.perf.dawnbench import DAWNBENCH_LEADERBOARD

        assert outcome.record.total_seconds < min(
            e.seconds for e in DAWNBENCH_LEADERBOARD
        ) + 5

    def test_ablation_ordering(self, outcome):
        assert (
            outcome.all_sparse.total_seconds
            < outcome.record.total_seconds
            < outcome.all_dense.total_seconds
        )

    def test_main_prints(self, capsys):
        table5_dawnbench.main()
        out = capsys.readouterr().out
        assert "Alibaba" in out and "Ours" in out
