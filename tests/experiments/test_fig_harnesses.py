"""Figure harnesses: each must regenerate the paper's qualitative story."""

import pytest

from repro.experiments import (
    fig1_breakdown,
    fig6_topk_ops,
    fig7_aggregation,
    fig8_hitopk_breakdown,
    fig9_datacache,
    pto_speedup,
    table1_instances,
)


class TestTable1:
    def test_rows(self):
        rows = table1_instances.run()
        assert len(rows) == 3
        assert rows[2][0] == "Tencent"

    def test_main_prints(self, capsys):
        table1_instances.main()
        out = capsys.readouterr().out
        assert "p3.16xlarge" in out


class TestFig1:
    @pytest.fixture(scope="class")
    def bars(self):
        return {(b.scheme, b.resolution): b for b in fig1_breakdown.run()}

    def test_four_bars(self, bars):
        assert len(bars) == 4

    def test_topk_compression_exceeds_ffbp_at_224(self, bars):
        # The paper's headline Fig. 1 observation: exact top-k costs
        # ~0.239 s vs FF&BP 0.204 s.
        bar = bars[("TopK-SGD", 224)]
        assert bar.components["compression"] > bar.components["ff_bp"]

    def test_topk_shrinks_communication(self, bars):
        dense = bars[("Dense-SGD", 224)].components["communication"]
        sparse = bars[("TopK-SGD", 224)].components["communication"]
        assert sparse < dense / 2

    def test_io_and_comm_dominate_dense(self, bars):
        bar = bars[("Dense-SGD", 224)]
        io_comm = bar.components["io"] + bar.components["communication"]
        assert io_comm > 0.4 * bar.total

    def test_lars_relatively_significant_at_96(self, bars):
        # "the LARS computing time is also relatively significant
        # compared with the feed-forward and backpropagation time."
        bar = bars[("Dense-SGD", 96)]
        assert bar.components["lars"] > 0.1 * bar.components["ff_bp"]

    def test_main_prints(self, capsys):
        fig1_breakdown.main()
        assert "FF&BP" in capsys.readouterr().out


class TestFig6:
    @pytest.fixture(scope="class")
    def timings(self):
        # CPU measurement on small sizes only (CI friendly).
        return fig6_topk_ops.run(sizes=(256_000, 1_000_000), repeats=2)

    def test_gpu_projection_ordering(self, timings):
        by_key = {(t.operator, t.d): t for t in timings}
        for d in (256_000, 1_000_000):
            assert (
                by_key[("MSTopK", d)].gpu_projected
                < by_key[("DGC", d)].gpu_projected
                < by_key[("nn.topk", d)].gpu_projected
            )

    def test_cpu_mstopk_beats_naive_sort(self, timings):
        by_key = {(t.operator, t.d): t for t in timings}
        d = 1_000_000
        assert by_key[("MSTopK", d)].cpu_seconds < by_key[("nn.topk", d)].cpu_seconds

    def test_no_cpu_mode(self):
        rows = fig6_topk_ops.run(sizes=(256_000,), measure_cpu=False)
        assert all(r.cpu_seconds is None for r in rows)

    def test_main_prints(self, capsys, monkeypatch):
        monkeypatch.setattr(
            fig6_topk_ops, "SMALL_SIZES", (256_000,), raising=True
        )
        fig6_topk_ops.main()
        assert "MSTopK" in capsys.readouterr().out


class TestFig7:
    @pytest.fixture(scope="class")
    def points(self):
        return fig7_aggregation.run(sizes=(10_000_000, 100_000_000, 250_000_000))

    def test_paper_ordering_at_scale(self, points):
        by = {(p.scheme, p.d): p.seconds for p in points}
        for d in (100_000_000, 250_000_000):
            naive = by[("NaiveAG", d)]
            tree = by[("TreeAR", d)]
            torus = by[("2DTAR", d)]
            hitopk = by[("HiTopKComm", d)]
            assert hitopk < torus < tree < naive, f"ordering broken at d={d}"

    def test_hitopk_margin_is_large(self, points):
        by = {(p.scheme, p.d): p.seconds for p in points}
        d = 250_000_000
        assert by[("2DTAR", d)] / by[("HiTopKComm", d)] > 2.5

    def test_times_grow_with_size(self, points):
        by = {(p.scheme, p.d): p.seconds for p in points}
        for scheme in ("NaiveAG", "TreeAR", "2DTAR", "HiTopKComm"):
            assert by[(scheme, 250_000_000)] > by[(scheme, 10_000_000)]

    def test_main_prints(self, capsys):
        fig7_aggregation.main()
        assert "HiTopKComm" in capsys.readouterr().out


class TestFig8:
    @pytest.fixture(scope="class")
    def points(self):
        return fig8_hitopk_breakdown.run()

    def test_inter_allgather_dominates(self, points):
        # "the most time-consuming part is the inter-communication".
        for p in points:
            if p.density >= 0.01:
                inter = p.breakdown.get("inter_allgather")
                assert inter == max(p.breakdown.steps.values()), (
                    f"{p.model} rho={p.density}"
                )

    def test_mstopk_step_negligible(self, points):
        for p in points:
            assert p.breakdown.fraction("mstopk") < 0.2

    def test_total_scale_matches_paper(self, points):
        # Fig. 8a: ResNet-50 at rho=0.01 totals ~20-30 ms.
        by = {(p.model, p.density): p for p in points}
        total = by[("ResNet-50", 0.01)].breakdown.total
        assert 0.008 < total < 0.06

    def test_transformer_slower_than_resnet(self, points):
        by = {(p.model, p.density): p for p in points}
        for rho in (0.001, 0.01):
            assert (
                by[("Transformer", rho)].breakdown.total
                > by[("ResNet-50", rho)].breakdown.total
            )

    def test_main_prints(self, capsys):
        fig8_hitopk_breakdown.main()
        assert "Inter-AllGather" in capsys.readouterr().out


class TestFig9:
    def test_model_bars(self):
        naive, cached = fig9_datacache.run_model()
        # ">10x" I/O reduction and "~2x" end-to-end (paper §5.4/Fig. 9).
        assert naive.io_seconds / cached.io_seconds > 10
        assert 1.5 < naive.total / cached.total < 3.5

    def test_functional_cache_run(self):
        run = fig9_datacache.run_functional(num_samples=32, batch_size=8)
        assert run.nfs_reads == 32
        assert run.memory_hits == 32
        assert run.speedup > 10

    def test_main_prints(self, capsys):
        fig9_datacache.main()
        out = capsys.readouterr().out
        assert "DataCache" in out and "speedup" in out


class TestPTOHarness:
    @pytest.fixture(scope="class")
    def rows(self):
        return pto_speedup.run()

    def test_speedups_near_2x(self, rows):
        # §5.4: "about 2x speedups ... on both ResNet-50 and Transformer".
        for row in rows:
            assert 1.3 < row.speedup < 3.2, row.model

    def test_times_near_paper(self, rows):
        paper = pto_speedup.PAPER_PTO
        for row in rows:
            serial_paper, pto_paper = paper[row.model]
            assert row.serial_ms == pytest.approx(serial_paper, rel=0.35)
            assert row.pto_ms == pytest.approx(pto_paper, rel=0.35)

    def test_functional_equality(self, rows):
        assert all(r.functional_match for r in rows)

    def test_main_prints(self, capsys):
        pto_speedup.main()
        assert "PTO" in capsys.readouterr().out
